//! Error type for the data-model substrate.

use crate::ids::{AttrId, ClassId, Oid};
use crate::value::AttrType;
use std::fmt;

/// Errors raised by schema construction and store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A class name was defined twice.
    DuplicateClass(String),
    /// An attribute name appears twice in a class (including inherited).
    DuplicateAttribute { class: String, attr: String },
    /// Unknown class name.
    UnknownClass(String),
    /// Unknown class id.
    UnknownClassId(ClassId),
    /// Unknown attribute name for a class.
    UnknownAttribute { class: String, attr: String },
    /// Attribute id out of range for the class.
    UnknownAttributeId { class: ClassId, attr: AttrId },
    /// Superclass referenced before definition or unknown.
    UnknownSuperclass { class: String, superclass: String },
    /// Inheritance cycle detected.
    InheritanceCycle(String),
    /// Unknown object.
    UnknownObject(Oid),
    /// Value does not conform to the declared attribute type.
    TypeMismatch {
        class: String,
        attr: String,
        expected: AttrType,
    },
    /// specialize target is not a subclass of the object's current class.
    NotASubclass { from: ClassId, to: ClassId },
    /// generalize target is not a superclass of the object's current class.
    NotASuperclass { from: ClassId, to: ClassId },
    /// Operation requires an active transaction.
    NoActiveTransaction,
    /// A transaction is already active.
    TransactionActive,
    /// A store restore was handed inconsistent data (duplicate OID, OID
    /// at/above the persisted allocation counter).
    CorruptRestore(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            ModelError::DuplicateAttribute { class, attr } => {
                write!(f, "duplicate attribute `{attr}` in class `{class}`")
            }
            ModelError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            ModelError::UnknownClassId(id) => write!(f, "unknown class id {id}"),
            ModelError::UnknownAttribute { class, attr } => {
                write!(f, "class `{class}` has no attribute `{attr}`")
            }
            ModelError::UnknownAttributeId { class, attr } => {
                write!(f, "class {class} has no attribute slot {attr}")
            }
            ModelError::UnknownSuperclass { class, superclass } => {
                write!(f, "class `{class}` extends unknown class `{superclass}`")
            }
            ModelError::InheritanceCycle(n) => {
                write!(f, "inheritance cycle involving class `{n}`")
            }
            ModelError::UnknownObject(oid) => write!(f, "unknown object {oid}"),
            ModelError::TypeMismatch {
                class,
                attr,
                expected,
            } => write!(
                f,
                "value for `{class}.{attr}` does not conform to type {expected}"
            ),
            ModelError::NotASubclass { from, to } => {
                write!(f, "cannot specialize: {to} is not a subclass of {from}")
            }
            ModelError::NotASuperclass { from, to } => {
                write!(f, "cannot generalize: {to} is not a superclass of {from}")
            }
            ModelError::NoActiveTransaction => write!(f, "no active transaction"),
            ModelError::TransactionActive => write!(f, "a transaction is already active"),
            ModelError::CorruptRestore(what) => write!(f, "corrupt restore data: {what}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::UnknownClass("stock".into()).to_string(),
            "unknown class `stock`"
        );
        assert_eq!(
            ModelError::UnknownObject(Oid(3)).to_string(),
            "unknown object o3"
        );
        let e = ModelError::TypeMismatch {
            class: "stock".into(),
            attr: "quantity".into(),
            expected: AttrType::Integer,
        };
        assert!(e.to_string().contains("stock.quantity"));
        assert!(e.to_string().contains("integer"));
    }
}
