//! Observability for the Chimera runtime: lock-cheap latency
//! histograms, hot-path stage timing, a postmortem trace ring, and
//! wire-ready metrics snapshots.
//!
//! The paper's detection engine is now wrapped in a production-shaped
//! stack — sharded scheduling, group-commit durability, fault
//! injection — and counts alone can no longer answer the operator
//! questions that stack raises ("*where* does durable lose its 3–4×?",
//! "what happened right before that home got poisoned?"). This crate
//! is the measurement substrate, built hand-rolled (no external
//! dependencies) around three pieces:
//!
//! - **[`Histogram`]** — fixed 64-bucket power-of-two nanosecond
//!   latency histograms. Recording is one `Instant` delta plus one
//!   relaxed `fetch_add`; count, p50/p90/p99 and max are derived at
//!   read time (merge-on-read), bucket-granular by construction.
//! - **[`Telemetry`]** — the per-worker-sharded recorder handle:
//!   counters, gauges, stage histograms and trace rings, one bank per
//!   worker so hot-path increments never contend. [`Telemetry::off`]
//!   is the zero-cost mode: every call is one `None` check, and the
//!   clock is never read.
//! - **[`TraceRing`]** — a fixed-capacity lock-free flight recorder of
//!   compact [`TraceEvent`]s (job claimed/demoted, home poisoned,
//!   connection reaped, ...), drained oldest-first with honest
//!   wrap-loss accounting.
//!
//! [`MetricsSnapshot`] is the read side: the full registry (histogram
//! buckets included) plus the drained trace tail, as plain data —
//! the runtime exposes it in-process via `Runtime::telemetry()`, the
//! net layer ships it over the wire (protocol v5 `MetricsSnapshot`
//! request), and [`MetricsSnapshot::render_text`] renders the
//! Prometheus-style text exposition.

mod hist;
mod recorder;
mod trace;

pub use hist::{bucket_ceil, bucket_floor, bucket_of, HistSnapshot, Histogram, BUCKETS};
pub use recorder::{
    Counter, Gauge, MetricsSnapshot, Stage, Telemetry, COUNTERS, GAUGES, STAGES,
};
pub use trace::{TraceEvent, TraceKind, TraceRing, TRACE_CAPACITY};

// Compile-time guarantees: the handle and its data cross threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Telemetry>();
    assert_send_sync::<Histogram>();
    assert_send_sync::<TraceRing>();
    assert_send_sync::<MetricsSnapshot>();
};
