//! The request/response vocabulary and its binary codec.
//!
//! One frame carries exactly one message; a connection is a strict
//! request → response(s) alternation driven by the client, with exactly
//! one response per request (so a client may pipeline requests and read
//! the responses back in order). The vocabulary mirrors the runtime's
//! surface:
//!
//! | request | response |
//! |---------|----------|
//! | [`Request::Hello`] | [`Response::HelloAck`] |
//! | [`Request::DefineTriggers`] | [`Response::TriggersDefined`] / [`Response::Error`] |
//! | [`Request::SubmitBlock`] | [`Response::JobDone`] (the per-job completion) |
//! | [`Request::Flush`] | [`Response::FlushDone`] |
//! | [`Request::Stats`] | [`Response::StatsReply`] |
//! | [`Request::WithTenantQuery`] | [`Response::TenantReply`] |
//! | [`Request::MetricsSnapshot`] | [`Response::MetricsReply`] |
//! | [`Request::Shutdown`] | [`Response::ShutdownAck`] |
//!
//! Every message round-trips bit-exactly (`encode` then `decode` is the
//! identity; `tests/wire_roundtrip.rs` proves it on arbitrary messages)
//! and decoding arbitrary bytes returns a typed error, never panics.
//!
//! Version 2 additions (all frame-compatible — the length-prefixed
//! framing is untouched): `Hello`/`HelloAck` negotiate a durability
//! level via *optional trailing* fields, `StatsReply` appends the
//! storage-layer counters the same way, `TriggersDefined` reports one
//! [`TriggerOutcome`] per declaration instead of a bare count, and
//! [`Response::Busy`] is the server's typed refusal when its
//! accepted-connection cap is reached.

use crate::wire::{
    put_bool, put_i64, put_str, put_u32, put_u64, put_u8, Reader, WireError,
};
use chimera_exec::Op;
use chimera_model::{AttrId, ClassId, Oid, TotalF64, Value};
use chimera_runtime::{Job, JobOutcome, JobReply, RuntimeStats, StorageMode};
use chimera_telemetry::{HistSnapshot, MetricsSnapshot, TraceEvent, TraceKind};

// ------------------------------------------------------------------- jobs

/// One external occurrence of a [`WireJob::RaiseExternal`] batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalEvent {
    /// Raw class id (the channel namespace).
    pub class: u32,
    /// Channel number.
    pub channel: u32,
    /// Raw object id carried by the occurrence.
    pub oid: u64,
}

/// The wire form of a tenant job — [`chimera_runtime::Job`] minus the
/// test-only gate, with raw ids instead of newtypes (the server converts
/// and the tenant engine validates).
#[derive(Debug, Clone, PartialEq)]
pub enum WireJob {
    /// `Engine::begin`.
    Begin,
    /// `Engine::exec_block`: one non-interruptible transaction line.
    ExecBlock(Vec<WireOp>),
    /// `Engine::raise_external`: a block of external occurrences.
    RaiseExternal(Vec<ExternalEvent>),
    /// `Engine::commit`.
    Commit,
    /// `Engine::rollback`.
    Rollback,
}

impl WireJob {
    /// Into the runtime's job form.
    pub fn into_job(self) -> Job {
        match self {
            WireJob::Begin => Job::Begin,
            WireJob::ExecBlock(ops) => {
                Job::ExecBlock(ops.into_iter().map(WireOp::into_op).collect())
            }
            WireJob::RaiseExternal(evs) => Job::RaiseExternal(
                evs.into_iter()
                    .map(|e| (ClassId(e.class), e.channel, Oid(e.oid)))
                    .collect(),
            ),
            WireJob::Commit => Job::Commit,
            WireJob::Rollback => Job::Rollback,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WireJob::Begin => put_u8(buf, 0),
            WireJob::ExecBlock(ops) => {
                put_u8(buf, 1);
                put_u32(buf, ops.len() as u32);
                for op in ops {
                    op.encode(buf);
                }
            }
            WireJob::RaiseExternal(evs) => {
                put_u8(buf, 2);
                put_u32(buf, evs.len() as u32);
                for e in evs {
                    put_u32(buf, e.class);
                    put_u32(buf, e.channel);
                    put_u64(buf, e.oid);
                }
            }
            WireJob::Commit => put_u8(buf, 3),
            WireJob::Rollback => put_u8(buf, 4),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireJob, WireError> {
        Ok(match r.u8()? {
            0 => WireJob::Begin,
            1 => {
                // smallest op encoding: Select = tag + class + deep
                let n = r.count_of(6)?;
                let mut ops = Vec::with_capacity(n);
                for _ in 0..n {
                    ops.push(WireOp::decode(r)?);
                }
                WireJob::ExecBlock(ops)
            }
            2 => {
                // an external event is exactly 16 bytes
                let n = r.count_of(16)?;
                let mut evs = Vec::with_capacity(n);
                for _ in 0..n {
                    evs.push(ExternalEvent {
                        class: r.u32()?,
                        channel: r.u32()?,
                        oid: r.u64()?,
                    });
                }
                WireJob::RaiseExternal(evs)
            }
            3 => WireJob::Commit,
            4 => WireJob::Rollback,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// The wire form of one [`chimera_exec::Op`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Create an object.
    Create {
        /// Raw class id.
        class: u32,
        /// `(raw attr id, value)` initializers.
        inits: Vec<(u32, Value)>,
    },
    /// Modify an attribute.
    Modify {
        /// Raw object id.
        oid: u64,
        /// Raw attribute id.
        attr: u32,
        /// New value.
        value: Value,
    },
    /// Delete an object.
    Delete {
        /// Raw object id.
        oid: u64,
    },
    /// Migrate to a subclass.
    Specialize {
        /// Raw object id.
        oid: u64,
        /// Raw destination class id.
        class: u32,
    },
    /// Migrate to a superclass.
    Generalize {
        /// Raw object id.
        oid: u64,
        /// Raw destination class id.
        class: u32,
    },
    /// Query a class extent.
    Select {
        /// Raw class id.
        class: u32,
        /// Include subclasses?
        deep: bool,
    },
}

impl WireOp {
    /// Into the engine's op form.
    pub fn into_op(self) -> Op {
        match self {
            WireOp::Create { class, inits } => Op::Create {
                class: ClassId(class),
                inits: inits
                    .into_iter()
                    .map(|(a, v)| (AttrId(a), v))
                    .collect(),
            },
            WireOp::Modify { oid, attr, value } => Op::Modify {
                oid: Oid(oid),
                attr: AttrId(attr),
                value,
            },
            WireOp::Delete { oid } => Op::Delete { oid: Oid(oid) },
            WireOp::Specialize { oid, class } => Op::Specialize {
                oid: Oid(oid),
                class: ClassId(class),
            },
            WireOp::Generalize { oid, class } => Op::Generalize {
                oid: Oid(oid),
                class: ClassId(class),
            },
            WireOp::Select { class, deep } => Op::Select {
                class: ClassId(class),
                deep,
            },
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WireOp::Create { class, inits } => {
                put_u8(buf, 0);
                put_u32(buf, *class);
                put_u32(buf, inits.len() as u32);
                for (attr, value) in inits {
                    put_u32(buf, *attr);
                    encode_value(buf, value);
                }
            }
            WireOp::Modify { oid, attr, value } => {
                put_u8(buf, 1);
                put_u64(buf, *oid);
                put_u32(buf, *attr);
                encode_value(buf, value);
            }
            WireOp::Delete { oid } => {
                put_u8(buf, 2);
                put_u64(buf, *oid);
            }
            WireOp::Specialize { oid, class } => {
                put_u8(buf, 3);
                put_u64(buf, *oid);
                put_u32(buf, *class);
            }
            WireOp::Generalize { oid, class } => {
                put_u8(buf, 4);
                put_u64(buf, *oid);
                put_u32(buf, *class);
            }
            WireOp::Select { class, deep } => {
                put_u8(buf, 5);
                put_u32(buf, *class);
                put_bool(buf, *deep);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireOp, WireError> {
        Ok(match r.u8()? {
            0 => {
                let class = r.u32()?;
                // smallest initializer: attr id + a Null value tag
                let n = r.count_of(5)?;
                let mut inits = Vec::with_capacity(n);
                for _ in 0..n {
                    let attr = r.u32()?;
                    inits.push((attr, decode_value(r)?));
                }
                WireOp::Create { class, inits }
            }
            1 => WireOp::Modify {
                oid: r.u64()?,
                attr: r.u32()?,
                value: decode_value(r)?,
            },
            2 => WireOp::Delete { oid: r.u64()? },
            3 => WireOp::Specialize {
                oid: r.u64()?,
                class: r.u32()?,
            },
            4 => WireOp::Generalize {
                oid: r.u64()?,
                class: r.u32()?,
            },
            5 => WireOp::Select {
                class: r.u32()?,
                deep: r.bool()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Values travel by the repo-wide bitwise float policy: a float is its
/// `TotalF64` bit pattern, so the round trip is exact for every payload
/// including NaNs and signed zeros.
fn encode_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(buf, 0),
        Value::Int(i) => {
            put_u8(buf, 1);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            put_u8(buf, 2);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            put_u8(buf, 3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            put_u8(buf, 4);
            put_bool(buf, *b);
        }
        Value::Time(t) => {
            put_u8(buf, 5);
            put_u64(buf, *t);
        }
        Value::Ref(oid) => {
            put_u8(buf, 6);
            put_u64(buf, oid.0);
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Int(r.i64()?),
        2 => Value::Float(TotalF64::from_bits(r.u64()?)),
        3 => Value::Str(r.str()?),
        4 => Value::Bool(r.bool()?),
        5 => Value::Time(r.u64()?),
        6 => Value::Ref(Oid(r.u64()?)),
        t => return Err(WireError::BadTag(t)),
    })
}

// ------------------------------------------------------------- durability

/// The durability level of a server's runtime, on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireDurability {
    /// No storage layer: tenant state dies with the process.
    InMemory,
    /// Durable with one fsync per job.
    PerJob,
    /// Durable with one fsync per drained queue batch (group commit).
    GroupCommit,
}

impl WireDurability {
    /// The wire form of a runtime's configured [`StorageMode`].
    pub fn of_storage(storage: &StorageMode) -> WireDurability {
        match storage {
            StorageMode::InMemory => WireDurability::InMemory,
            StorageMode::Durable(cfg) if cfg.group_commit => WireDurability::GroupCommit,
            StorageMode::Durable(_) => WireDurability::PerJob,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_u8(
            buf,
            match self {
                WireDurability::InMemory => 0,
                WireDurability::PerJob => 1,
                WireDurability::GroupCommit => 2,
            },
        );
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireDurability, WireError> {
        Ok(match r.u8()? {
            0 => WireDurability::InMemory,
            1 => WireDurability::PerJob,
            2 => WireDurability::GroupCommit,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

impl std::fmt::Display for WireDurability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WireDurability::InMemory => "in-memory",
            WireDurability::PerJob => "durable (per-job fsync)",
            WireDurability::GroupCommit => "durable (group commit)",
        })
    }
}

// --------------------------------------------------------------- requests

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens every connection: version check + client identification.
    Hello {
        /// The client's [`crate::wire::PROTOCOL_VERSION`].
        version: u32,
        /// Free-form client name (diagnostics only).
        client: String,
        /// Durability level the client *requires*, if any: the server
        /// refuses the handshake when its runtime provides a different
        /// one. Encoded as an optional trailing field — a version-1
        /// client simply omits it and the server accepts it as `None`.
        durability: Option<WireDurability>,
    },
    /// Install tenant-local triggers from concrete §2–§3 trigger syntax,
    /// parsed server-side against the runtime schema.
    DefineTriggers {
        /// Raw tenant id.
        tenant: u64,
        /// `define … trigger … end` source text.
        source: String,
    },
    /// Submit one job (block) for a tenant; answered with the job's
    /// completion notification once the tenant's shard retires it.
    SubmitBlock {
        /// Raw tenant id.
        tenant: u64,
        /// The job.
        job: WireJob,
    },
    /// Runtime-wide flush barrier.
    Flush,
    /// Aggregate runtime stats.
    Stats,
    /// Inspect one tenant's engine.
    WithTenantQuery {
        /// Raw tenant id.
        tenant: u64,
        /// What to read.
        query: TenantQuery,
    },
    /// Stop the server (flushes first; the runtime itself survives).
    Shutdown,
    /// The full telemetry registry — counters, gauges, latency
    /// histograms (buckets included) and the drained trace tail —
    /// answered with [`Response::MetricsReply`] (version 5). On a
    /// server whose runtime has telemetry disabled the reply carries
    /// `enabled = false` and empty series, never an error: polling a
    /// metrics endpoint must be safe against configuration.
    MetricsSnapshot,
}

const REQ_HELLO: u8 = 0x01;
const REQ_DEFINE: u8 = 0x02;
const REQ_SUBMIT: u8 = 0x03;
const REQ_FLUSH: u8 = 0x04;
const REQ_STATS: u8 = 0x05;
const REQ_QUERY: u8 = 0x06;
const REQ_SHUTDOWN: u8 = 0x07;
const REQ_METRICS: u8 = 0x08;

impl Request {
    /// Encode into a fresh payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Request::Hello {
                version,
                client,
                durability,
            } => {
                put_u8(&mut buf, REQ_HELLO);
                put_u32(&mut buf, *version);
                put_str(&mut buf, client);
                if let Some(d) = durability {
                    d.encode(&mut buf);
                }
            }
            Request::DefineTriggers { tenant, source } => {
                put_u8(&mut buf, REQ_DEFINE);
                put_u64(&mut buf, *tenant);
                put_str(&mut buf, source);
            }
            Request::SubmitBlock { tenant, job } => {
                put_u8(&mut buf, REQ_SUBMIT);
                put_u64(&mut buf, *tenant);
                job.encode(&mut buf);
            }
            Request::Flush => put_u8(&mut buf, REQ_FLUSH),
            Request::Stats => put_u8(&mut buf, REQ_STATS),
            Request::WithTenantQuery { tenant, query } => {
                put_u8(&mut buf, REQ_QUERY);
                put_u64(&mut buf, *tenant);
                query.encode(&mut buf);
            }
            Request::Shutdown => put_u8(&mut buf, REQ_SHUTDOWN),
            Request::MetricsSnapshot => put_u8(&mut buf, REQ_METRICS),
        }
        buf
    }

    /// Decode one full payload (trailing bytes are an error).
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            REQ_HELLO => Request::Hello {
                version: r.u32()?,
                client: r.str()?,
                // optional trailing field: absent from version-1 clients
                durability: if r.remaining() > 0 {
                    Some(WireDurability::decode(&mut r)?)
                } else {
                    None
                },
            },
            REQ_DEFINE => Request::DefineTriggers {
                tenant: r.u64()?,
                source: r.str()?,
            },
            REQ_SUBMIT => Request::SubmitBlock {
                tenant: r.u64()?,
                job: WireJob::decode(&mut r)?,
            },
            REQ_FLUSH => Request::Flush,
            REQ_STATS => Request::Stats,
            REQ_QUERY => Request::WithTenantQuery {
                tenant: r.u64()?,
                query: TenantQuery::decode(&mut r)?,
            },
            REQ_SHUTDOWN => Request::Shutdown,
            REQ_METRICS => Request::MetricsSnapshot,
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(req)
    }
}

/// What [`Request::WithTenantQuery`] can read from a tenant engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantQuery {
    /// Sorted extent of a class (raw class id).
    Extent {
        /// Raw class id.
        class: u32,
    },
    /// Event Base length (occurrences stored).
    EventLogLen,
    /// The tenant's job-error bookkeeping.
    Errors,
    /// The tenant engine's work counters.
    EngineStats,
}

impl TenantQuery {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            TenantQuery::Extent { class } => {
                put_u8(buf, 0);
                put_u32(buf, *class);
            }
            TenantQuery::EventLogLen => put_u8(buf, 1),
            TenantQuery::Errors => put_u8(buf, 2),
            TenantQuery::EngineStats => put_u8(buf, 3),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<TenantQuery, WireError> {
        Ok(match r.u8()? {
            0 => TenantQuery::Extent { class: r.u32()? },
            1 => TenantQuery::EventLogLen,
            2 => TenantQuery::Errors,
            3 => TenantQuery::EngineStats,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

// -------------------------------------------------------------- responses

/// Sentinel `job` id in a [`Response::JobDone`] whose submission was
/// rejected at submit time (shed queue, dead worker): no runtime job id
/// exists for it, but the completion still arrives in request order
/// with the tenant attached.
pub const JOB_REJECTED: u64 = u64::MAX;

/// Sentinel `job` id in a client-synthesized [`crate::client::JobDone`]
/// for a submission orphaned by a connection loss: the request may or
/// may not have reached the server, so no runtime job id is known. The
/// outcome is always [`WireOutcome::Disconnected`]. (Client-side only —
/// a server never sends this id.)
pub const JOB_DISCONNECTED: u64 = u64::MAX - 1;

/// How one job ended, on the wire — [`chimera_runtime::JobOutcome`] with
/// the summary flattened in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireOutcome {
    /// Success, with the job's trigger-firing summary.
    Done {
        /// Occurrences the job appended.
        events: u64,
        /// Rules considered while reacting to the job.
        considerations: u64,
        /// Rule actions executed while reacting to the job.
        executions: u64,
    },
    /// The engine rejected the job.
    Error {
        /// The engine error message.
        message: String,
    },
    /// The job panicked; the tenant's engine was discarded.
    Panicked,
    /// The job ran in memory but its home shard's durability is
    /// poisoned, so it was **not** made durable (version 4; the typed
    /// degraded-service answer — never a hang, never a silent drop).
    RefusedDurability {
        /// Why durability was refused.
        message: String,
    },
    /// The connection died while this submission was in flight; the job
    /// may or may not have run (at-most-once). Synthesized by the
    /// *client* on reconnect for orphaned submissions — a server never
    /// sends it, but it is a first-class encodable outcome so the wire
    /// vocabulary stays total (version 4).
    Disconnected,
}

impl WireOutcome {
    /// Did the job succeed?
    pub fn is_done(&self) -> bool {
        matches!(self, WireOutcome::Done { .. })
    }
}

impl From<JobOutcome> for WireOutcome {
    fn from(o: JobOutcome) -> Self {
        match o {
            JobOutcome::Done(s) => WireOutcome::Done {
                events: s.events,
                considerations: s.considerations,
                executions: s.executions,
            },
            JobOutcome::Error(message) => WireOutcome::Error { message },
            JobOutcome::Panicked => WireOutcome::Panicked,
            JobOutcome::RefusedDurability(message) => WireOutcome::RefusedDurability { message },
        }
    }
}

/// One home shard's slice of the runtime counters, on the wire — the
/// flat mirror of [`chimera_runtime::ShardStats`]. Exactly 7 `u64`s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field-for-field mirror of ShardStats
pub struct WireShardStats {
    pub jobs_submitted: u64,
    pub jobs_executed: u64,
    pub steals: u64,
    pub jobs_shed: u64,
    pub submits_blocked: u64,
    pub queue_depth: u64,
    pub tenants: u64,
}

impl From<chimera_runtime::ShardStats> for WireShardStats {
    fn from(s: chimera_runtime::ShardStats) -> Self {
        WireShardStats {
            jobs_submitted: s.jobs_submitted,
            jobs_executed: s.jobs_executed,
            steals: s.steals,
            jobs_shed: s.jobs_shed,
            submits_blocked: s.submits_blocked,
            queue_depth: s.queue_depth,
            tenants: s.tenants,
        }
    }
}

/// The flat wire form of [`RuntimeStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field-for-field mirror of RuntimeStats
pub struct WireStats {
    pub shards: u32,
    pub tenants: u64,
    pub jobs_submitted: u64,
    pub jobs_processed: u64,
    pub jobs_shed: u64,
    pub submits_blocked: u64,
    pub job_errors: u64,
    pub job_panics: u64,
    pub blocks: u64,
    pub events: u64,
    pub considerations: u64,
    pub executions: u64,
    pub commits: u64,
    pub rollbacks: u64,
    // storage-layer counters, appended in version 2 as optional trailing
    // fields: a version-1 peer's StatsReply decodes with them zeroed
    pub wal_appends: u64,
    pub wal_syncs: u64,
    pub snapshots: u64,
    pub tenants_recovered: u64,
    pub jobs_replayed: u64,
    // scheduler + server counters, appended in version 3 the same way:
    // a version-2 peer's reply decodes with zeros / empty breakdown
    pub steals: u64,
    pub ready_queue_depth: u64,
    /// Reads the server deferred because a connection hit its
    /// bytes-in-flight budget (server-wide; not in [`RuntimeStats`] —
    /// the server owns this counter and splices it in).
    pub net_reads_throttled: u64,
    pub per_shard: Vec<WireShardStats>,
    // robustness counters, appended in version 4 the same way: a
    // version-3 peer's reply decodes with them zeroed
    pub store_retries: u64,
    /// Live gauge of poisoned home shards (see
    /// [`chimera_runtime::RuntimeStats::shards_poisoned`]).
    pub shards_poisoned: u64,
    /// Connections the server reaped on an expired handshake or read
    /// deadline (server-wide; the server owns and splices this in).
    pub net_conns_reaped: u64,
    // lifecycle counters, appended in version 6 the same way: a
    // version-5 (or earlier) peer's reply decodes with them zeroed
    /// Tenant engines evicted to the durable store to stay inside the
    /// residency budget (see [`chimera_runtime::RuntimeStats::evictions`]).
    pub evictions: u64,
    /// Evicted tenants rebuilt in RAM on their next claimed job (see
    /// [`chimera_runtime::RuntimeStats::rehydrations`]).
    pub rehydrations: u64,
    /// Live gauge of tenant engines currently resident in RAM (see
    /// [`chimera_runtime::RuntimeStats::tenants_resident`]).
    pub tenants_resident: u64,
}

impl From<RuntimeStats> for WireStats {
    fn from(s: RuntimeStats) -> Self {
        WireStats {
            shards: s.shards as u32,
            tenants: s.tenants as u64,
            jobs_submitted: s.jobs_submitted,
            jobs_processed: s.jobs_processed,
            jobs_shed: s.jobs_shed,
            submits_blocked: s.submits_blocked,
            job_errors: s.job_errors,
            job_panics: s.job_panics,
            blocks: s.engine.blocks,
            events: s.engine.events,
            considerations: s.engine.considerations,
            executions: s.engine.executions,
            commits: s.engine.commits,
            rollbacks: s.engine.rollbacks,
            wal_appends: s.wal_appends,
            wal_syncs: s.wal_syncs,
            snapshots: s.snapshots,
            tenants_recovered: s.tenants_recovered,
            jobs_replayed: s.jobs_replayed,
            steals: s.steals,
            ready_queue_depth: s.ready_queue_depth,
            net_reads_throttled: 0,
            per_shard: s.per_shard.into_iter().map(WireShardStats::from).collect(),
            store_retries: s.store_retries,
            shards_poisoned: s.shards_poisoned,
            net_conns_reaped: 0,
            evictions: s.evictions,
            rehydrations: s.rehydrations,
            tenants_resident: s.tenants_resident,
        }
    }
}

/// How one declaration of a [`Request::DefineTriggers`] batch fared.
/// The whole batch is answered with one outcome per declaration, in
/// source order — a failed declaration no longer hides the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriggerOutcome {
    /// The trigger's declared name.
    pub name: String,
    /// `None` if the trigger was installed; the rejection reason
    /// (lowering error, engine refusal, runtime error) otherwise.
    pub error: Option<String>,
}

impl TriggerOutcome {
    /// Was this trigger installed?
    pub fn is_defined(&self) -> bool {
        self.error.is_none()
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        put_str(buf, &self.name);
        match &self.error {
            Some(msg) => {
                put_bool(buf, true);
                put_str(buf, msg);
            }
            None => put_bool(buf, false),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<TriggerOutcome, WireError> {
        let name = r.str()?;
        let error = if r.bool()? { Some(r.str()?) } else { None };
        Ok(TriggerOutcome { name, error })
    }
}

/// What [`Response::TenantReply`] carries back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TenantReply {
    /// The tenant has never submitted a job (no engine exists).
    NoSuchTenant,
    /// Sorted class extent, raw oids.
    Extent(Vec<u64>),
    /// Event Base length.
    EventLogLen(u64),
    /// Job-error count and last message.
    Errors {
        /// Errored jobs so far.
        count: u64,
        /// Most recent error message, if any.
        last: Option<String>,
    },
    /// Engine work counters.
    EngineStats {
        /// Blocks executed.
        blocks: u64,
        /// Occurrences appended.
        events: u64,
        /// Rules considered.
        considerations: u64,
        /// Actions executed.
        executions: u64,
        /// Commits.
        commits: u64,
        /// Rollbacks.
        rollbacks: u64,
    },
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answers [`Request::Hello`].
    HelloAck {
        /// The server's protocol version.
        version: u32,
        /// Server name (diagnostics only).
        server: String,
        /// Runtime shard count.
        shards: u32,
        /// The runtime's effective durability level. Optional trailing
        /// field: `None` only when decoding a version-1 server's ack.
        durability: Option<WireDurability>,
    },
    /// Answers [`Request::SubmitBlock`]: the per-job completion
    /// notification, delivered once the tenant's shard retired the job.
    /// A job the runtime refused to *accept* (shed queue, dead worker)
    /// is answered in the same shape — outcome `Error` and the
    /// [`JOB_REJECTED`] sentinel for `job` — so pipelined clients keep
    /// exact submission↔completion accounting even across rejections.
    JobDone {
        /// Runtime-wide job id, or [`JOB_REJECTED`] if never accepted.
        job: u64,
        /// The tenant the job ran (or was addressed to run) for.
        tenant: u64,
        /// How it ended (success carries the trigger-firing summary).
        outcome: WireOutcome,
    },
    /// Answers [`Request::DefineTriggers`] when the source parsed: one
    /// outcome per declaration, in source order. Declarations that
    /// failed to lower or were refused by the engine carry their error;
    /// the others were installed regardless (no first-failure-wins).
    TriggersDefined {
        /// Per-declaration outcomes.
        outcomes: Vec<TriggerOutcome>,
    },
    /// Answers [`Request::Flush`].
    FlushDone,
    /// Answers [`Request::Stats`].
    StatsReply(WireStats),
    /// Answers [`Request::WithTenantQuery`].
    TenantReply(TenantReply),
    /// Answers [`Request::MetricsSnapshot`] with the server runtime's
    /// full telemetry registry (version 5). The trace tail is encoded
    /// as an *optional trailing block* — omitted entirely when there
    /// are no traces — so the rest of the registry decodes the same
    /// way whether or not a trace section follows it.
    MetricsReply(MetricsSnapshot),
    /// Answers [`Request::Shutdown`].
    ShutdownAck,
    /// Any request that could not be served (decode failure, parse
    /// error, shed job, dead worker, ...).
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// The server's accepted-connection cap is reached: the one and only
    /// frame on a refused connection, sent before it is closed. Typed —
    /// not an [`Response::Error`] — so clients can distinguish "retry
    /// later" from a protocol failure.
    Busy {
        /// Connections currently accepted.
        active: u32,
        /// The server's connection cap.
        limit: u32,
    },
}

const RESP_HELLO_ACK: u8 = 0x81;
const RESP_JOB_DONE: u8 = 0x82;
const RESP_TRIGGERS: u8 = 0x83;
const RESP_FLUSH_DONE: u8 = 0x84;
const RESP_STATS: u8 = 0x85;
const RESP_TENANT: u8 = 0x86;
const RESP_SHUTDOWN_ACK: u8 = 0x87;
const RESP_ERROR: u8 = 0x88;
const RESP_BUSY: u8 = 0x8A;
const RESP_METRICS: u8 = 0x8B;

/// Encode one telemetry registry snapshot. Layout: `enabled` flag, the
/// counter / gauge / histogram series (each a counted vector), then —
/// only when non-empty — the trace tail as a counted vector of
/// fixed-width 33-byte events.
fn encode_metrics(buf: &mut Vec<u8>, m: &MetricsSnapshot) {
    put_bool(buf, m.enabled);
    put_u32(buf, m.counters.len() as u32);
    for (name, v) in &m.counters {
        put_str(buf, name);
        put_u64(buf, *v);
    }
    put_u32(buf, m.gauges.len() as u32);
    for (name, v) in &m.gauges {
        put_str(buf, name);
        put_i64(buf, *v);
    }
    put_u32(buf, m.hists.len() as u32);
    for h in &m.hists {
        put_str(buf, &h.name);
        put_u32(buf, h.buckets.len() as u32);
        for b in &h.buckets {
            put_u64(buf, *b);
        }
    }
    // Optional trailing block. An *empty* tail is omitted (not encoded
    // as a zero count) so every truncation of this message either fails
    // to decode or re-encodes bit-exactly — the invariant
    // `tests/wire_roundtrip.rs` holds every message to.
    if !m.traces.is_empty() {
        put_u32(buf, m.traces.len() as u32);
        for ev in &m.traces {
            put_u64(buf, ev.seq);
            put_u64(buf, ev.at_ns);
            put_u8(buf, ev.kind as u8);
            put_u64(buf, ev.a);
            put_u64(buf, ev.b);
        }
    }
}

/// Decode the [`encode_metrics`] layout.
fn decode_metrics(r: &mut Reader<'_>) -> Result<MetricsSnapshot, WireError> {
    let enabled = r.bool()?;
    // smallest named series element: empty name (4) + u64/i64 value (8)
    let n = r.count_of(12)?;
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        counters.push((name, r.u64()?));
    }
    let n = r.count_of(12)?;
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        gauges.push((name, r.i64()?));
    }
    // smallest histogram: empty name (4) + zero bucket count (4)
    let n = r.count_of(8)?;
    let mut hists = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        let nb = r.count_of(8)?;
        let mut buckets = Vec::with_capacity(nb);
        for _ in 0..nb {
            buckets.push(r.u64()?);
        }
        hists.push(HistSnapshot { name, buckets });
    }
    let mut traces = Vec::new();
    if r.remaining() > 0 {
        // a trace event is exactly 33 bytes
        let n = r.count_of(33)?;
        traces.reserve(n);
        for _ in 0..n {
            let seq = r.u64()?;
            let at_ns = r.u64()?;
            let kind = r.u8()?;
            let kind = TraceKind::from_u8(kind).ok_or(WireError::BadTag(kind))?;
            traces.push(TraceEvent {
                seq,
                at_ns,
                kind,
                a: r.u64()?,
                b: r.u64()?,
            });
        }
    }
    Ok(MetricsSnapshot {
        enabled,
        counters,
        gauges,
        hists,
        traces,
    })
}

impl Response {
    /// The completion notification for one [`JobReply`].
    pub fn job_done(reply: JobReply) -> Response {
        Response::JobDone {
            job: reply.job.0,
            tenant: reply.tenant.0,
            outcome: reply.outcome.into(),
        }
    }

    /// Encode into a fresh payload buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16);
        match self {
            Response::HelloAck {
                version,
                server,
                shards,
                durability,
            } => {
                put_u8(&mut buf, RESP_HELLO_ACK);
                put_u32(&mut buf, *version);
                put_str(&mut buf, server);
                put_u32(&mut buf, *shards);
                if let Some(d) = durability {
                    d.encode(&mut buf);
                }
            }
            Response::JobDone {
                job,
                tenant,
                outcome,
            } => {
                put_u8(&mut buf, RESP_JOB_DONE);
                put_u64(&mut buf, *job);
                put_u64(&mut buf, *tenant);
                match outcome {
                    WireOutcome::Done {
                        events,
                        considerations,
                        executions,
                    } => {
                        put_u8(&mut buf, 0);
                        put_u64(&mut buf, *events);
                        put_u64(&mut buf, *considerations);
                        put_u64(&mut buf, *executions);
                    }
                    WireOutcome::Error { message } => {
                        put_u8(&mut buf, 1);
                        put_str(&mut buf, message);
                    }
                    WireOutcome::Panicked => put_u8(&mut buf, 2),
                    WireOutcome::RefusedDurability { message } => {
                        put_u8(&mut buf, 3);
                        put_str(&mut buf, message);
                    }
                    WireOutcome::Disconnected => put_u8(&mut buf, 4),
                }
            }
            Response::TriggersDefined { outcomes } => {
                put_u8(&mut buf, RESP_TRIGGERS);
                put_u32(&mut buf, outcomes.len() as u32);
                for o in outcomes {
                    o.encode(&mut buf);
                }
            }
            Response::FlushDone => put_u8(&mut buf, RESP_FLUSH_DONE),
            Response::StatsReply(s) => {
                put_u8(&mut buf, RESP_STATS);
                put_u32(&mut buf, s.shards);
                for v in [
                    s.tenants,
                    s.jobs_submitted,
                    s.jobs_processed,
                    s.jobs_shed,
                    s.submits_blocked,
                    s.job_errors,
                    s.job_panics,
                    s.blocks,
                    s.events,
                    s.considerations,
                    s.executions,
                    s.commits,
                    s.rollbacks,
                    // version-2 trailing fields (storage layer)
                    s.wal_appends,
                    s.wal_syncs,
                    s.snapshots,
                    s.tenants_recovered,
                    s.jobs_replayed,
                    // version-3 trailing fields (scheduler + server)
                    s.steals,
                    s.ready_queue_depth,
                    s.net_reads_throttled,
                ] {
                    put_u64(&mut buf, v);
                }
                put_u32(&mut buf, s.per_shard.len() as u32);
                for shard in &s.per_shard {
                    for v in [
                        shard.jobs_submitted,
                        shard.jobs_executed,
                        shard.steals,
                        shard.jobs_shed,
                        shard.submits_blocked,
                        shard.queue_depth,
                        shard.tenants,
                    ] {
                        put_u64(&mut buf, v);
                    }
                }
                // version-4 trailing fields (robustness)
                for v in [s.store_retries, s.shards_poisoned, s.net_conns_reaped] {
                    put_u64(&mut buf, v);
                }
                // version-6 trailing fields (tenant lifecycle); version
                // 5 added no StatsReply fields, so this is the fourth
                // optional block
                for v in [s.evictions, s.rehydrations, s.tenants_resident] {
                    put_u64(&mut buf, v);
                }
            }
            Response::TenantReply(t) => {
                put_u8(&mut buf, RESP_TENANT);
                match t {
                    TenantReply::NoSuchTenant => put_u8(&mut buf, 0),
                    TenantReply::Extent(oids) => {
                        put_u8(&mut buf, 1);
                        put_u32(&mut buf, oids.len() as u32);
                        for oid in oids {
                            put_u64(&mut buf, *oid);
                        }
                    }
                    TenantReply::EventLogLen(n) => {
                        put_u8(&mut buf, 2);
                        put_u64(&mut buf, *n);
                    }
                    TenantReply::Errors { count, last } => {
                        put_u8(&mut buf, 3);
                        put_u64(&mut buf, *count);
                        match last {
                            Some(msg) => {
                                put_bool(&mut buf, true);
                                put_str(&mut buf, msg);
                            }
                            None => put_bool(&mut buf, false),
                        }
                    }
                    TenantReply::EngineStats {
                        blocks,
                        events,
                        considerations,
                        executions,
                        commits,
                        rollbacks,
                    } => {
                        put_u8(&mut buf, 4);
                        for v in [blocks, events, considerations, executions, commits, rollbacks]
                        {
                            put_u64(&mut buf, *v);
                        }
                    }
                }
            }
            Response::MetricsReply(m) => {
                put_u8(&mut buf, RESP_METRICS);
                encode_metrics(&mut buf, m);
            }
            Response::ShutdownAck => put_u8(&mut buf, RESP_SHUTDOWN_ACK),
            Response::Error { message } => {
                put_u8(&mut buf, RESP_ERROR);
                put_str(&mut buf, message);
            }
            Response::Busy { active, limit } => {
                put_u8(&mut buf, RESP_BUSY);
                put_u32(&mut buf, *active);
                put_u32(&mut buf, *limit);
            }
        }
        buf
    }

    /// Decode one full payload (trailing bytes are an error).
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            RESP_HELLO_ACK => Response::HelloAck {
                version: r.u32()?,
                server: r.str()?,
                shards: r.u32()?,
                // optional trailing field: absent from version-1 servers
                durability: if r.remaining() > 0 {
                    Some(WireDurability::decode(&mut r)?)
                } else {
                    None
                },
            },
            RESP_JOB_DONE => {
                let job = r.u64()?;
                let tenant = r.u64()?;
                let outcome = match r.u8()? {
                    0 => WireOutcome::Done {
                        events: r.u64()?,
                        considerations: r.u64()?,
                        executions: r.u64()?,
                    },
                    1 => WireOutcome::Error { message: r.str()? },
                    2 => WireOutcome::Panicked,
                    3 => WireOutcome::RefusedDurability { message: r.str()? },
                    4 => WireOutcome::Disconnected,
                    t => return Err(WireError::BadTag(t)),
                };
                Response::JobDone {
                    job,
                    tenant,
                    outcome,
                }
            }
            RESP_TRIGGERS => {
                // smallest outcome: empty name (4) + error flag (1)
                let n = r.count_of(5)?;
                let mut outcomes = Vec::with_capacity(n);
                for _ in 0..n {
                    outcomes.push(TriggerOutcome::decode(&mut r)?);
                }
                Response::TriggersDefined { outcomes }
            }
            RESP_FLUSH_DONE => Response::FlushDone,
            RESP_STATS => {
                let mut s = WireStats {
                    shards: r.u32()?,
                    tenants: r.u64()?,
                    jobs_submitted: r.u64()?,
                    jobs_processed: r.u64()?,
                    jobs_shed: r.u64()?,
                    submits_blocked: r.u64()?,
                    job_errors: r.u64()?,
                    job_panics: r.u64()?,
                    blocks: r.u64()?,
                    events: r.u64()?,
                    considerations: r.u64()?,
                    executions: r.u64()?,
                    commits: r.u64()?,
                    rollbacks: r.u64()?,
                    ..WireStats::default()
                };
                // version-2 trailing fields: zero when a version-1
                // server sent the reply
                if r.remaining() > 0 {
                    s.wal_appends = r.u64()?;
                    s.wal_syncs = r.u64()?;
                    s.snapshots = r.u64()?;
                    s.tenants_recovered = r.u64()?;
                    s.jobs_replayed = r.u64()?;
                }
                // version-3 trailing fields: zeros / empty breakdown
                // when a version-2 server sent the reply
                if r.remaining() > 0 {
                    s.steals = r.u64()?;
                    s.ready_queue_depth = r.u64()?;
                    s.net_reads_throttled = r.u64()?;
                    // one per-shard entry is exactly 7 u64s
                    let n = r.count_of(56)?;
                    let mut per_shard = Vec::with_capacity(n);
                    for _ in 0..n {
                        per_shard.push(WireShardStats {
                            jobs_submitted: r.u64()?,
                            jobs_executed: r.u64()?,
                            steals: r.u64()?,
                            jobs_shed: r.u64()?,
                            submits_blocked: r.u64()?,
                            queue_depth: r.u64()?,
                            tenants: r.u64()?,
                        });
                    }
                    s.per_shard = per_shard;
                }
                // version-4 trailing fields: zeros when a version-3
                // server sent the reply
                if r.remaining() > 0 {
                    s.store_retries = r.u64()?;
                    s.shards_poisoned = r.u64()?;
                    s.net_conns_reaped = r.u64()?;
                }
                // version-6 trailing fields: zeros when a version-5 (or
                // earlier) server sent the reply
                if r.remaining() > 0 {
                    s.evictions = r.u64()?;
                    s.rehydrations = r.u64()?;
                    s.tenants_resident = r.u64()?;
                }
                Response::StatsReply(s)
            }
            RESP_TENANT => {
                let reply = match r.u8()? {
                    0 => TenantReply::NoSuchTenant,
                    1 => {
                        // an oid is exactly 8 bytes
                        let n = r.count_of(8)?;
                        let mut oids = Vec::with_capacity(n);
                        for _ in 0..n {
                            oids.push(r.u64()?);
                        }
                        TenantReply::Extent(oids)
                    }
                    2 => TenantReply::EventLogLen(r.u64()?),
                    3 => {
                        let count = r.u64()?;
                        let last = if r.bool()? { Some(r.str()?) } else { None };
                        TenantReply::Errors { count, last }
                    }
                    4 => TenantReply::EngineStats {
                        blocks: r.u64()?,
                        events: r.u64()?,
                        considerations: r.u64()?,
                        executions: r.u64()?,
                        commits: r.u64()?,
                        rollbacks: r.u64()?,
                    },
                    t => return Err(WireError::BadTag(t)),
                };
                Response::TenantReply(reply)
            }
            RESP_METRICS => Response::MetricsReply(decode_metrics(&mut r)?),
            RESP_SHUTDOWN_ACK => Response::ShutdownAck,
            RESP_ERROR => Response::Error { message: r.str()? },
            RESP_BUSY => Response::Busy {
                active: r.u32()?,
                limit: r.u32()?,
            },
            t => return Err(WireError::BadTag(t)),
        };
        r.finish()?;
        Ok(resp)
    }
}
