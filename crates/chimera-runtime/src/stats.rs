//! Aggregated runtime counters.

use chimera_exec::EngineStats;
use chimera_rules::table::SupportStats;

/// A point-in-time aggregate over every shard and tenant engine of a
/// [`crate::Runtime`]: admission-pool accounting (submitted / processed /
/// shed / blocked), scheduler activity (steals, staged depth), job
/// failures, the per-home-shard breakdown, and the summed engine +
/// trigger-support work counters. Obtained from [`crate::Runtime::stats`];
/// exact when the runtime is quiesced (after [`crate::Runtime::flush`]),
/// a live snapshot otherwise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Shards (= worker threads = home shards) in the runtime.
    pub shards: usize,
    /// Tenants the runtime holds state for: resident engines *plus*
    /// evicted tenants parked as snapshots.
    pub tenants: usize,
    /// Tenants with an engine in RAM right now (live gauge; at most the
    /// configured [`chimera_lifecycle::LifecycleConfig`] residency cap,
    /// modulo in-flight claims).
    pub tenants_resident: u64,
    /// Cold tenant engines snapshotted to their home store and dropped
    /// from RAM (lifetime count).
    pub evictions: u64,
    /// Evicted tenants rebuilt in RAM at claim time (lifetime count).
    pub rehydrations: u64,
    /// Jobs admitted into the pool (shed submissions are not counted).
    pub jobs_submitted: u64,
    /// Jobs fully processed by a worker.
    pub jobs_processed: u64,
    /// Jobs rejected by the [`crate::Backpressure::Shed`] policy because
    /// the tenant's home shard was at capacity.
    pub jobs_shed: u64,
    /// Submissions that found the home shard full and had to wait under
    /// the [`crate::Backpressure::Block`] policy.
    pub submits_blocked: u64,
    /// Claims in which a worker ran a tenant homed on a *different*
    /// shard ([`crate::Scheduler::LoadAware`] work stealing; always zero
    /// under [`crate::Scheduler::Pinned`] outside the shutdown drain).
    pub steals: u64,
    /// Jobs currently staged in the admission pool (admitted, not yet
    /// claimed by any worker), summed over the home shards. A live
    /// gauge, not a monotone counter; zero when quiesced.
    pub ready_queue_depth: u64,
    /// Jobs whose engine operation returned an error (recorded per
    /// tenant; the job still counts as processed).
    pub job_errors: u64,
    /// Worker-side panics while processing a job (the tenant's engine is
    /// discarded; the runtime keeps serving every other tenant).
    pub job_panics: u64,
    /// Job records appended to the shards' job logs (durable storage
    /// only; zero on in-memory runtimes).
    pub wal_appends: u64,
    /// fsyncs the shards' stores issued. Under group commit this counts
    /// *batches*, so `wal_appends / wal_syncs` is the achieved group
    /// size.
    pub wal_syncs: u64,
    /// Cumulative wall-clock nanoseconds the stores spent inside fsync,
    /// summed over the shards — `wal_sync_nanos / wal_syncs` is the mean
    /// fsync cost the group commit amortizes across each batch.
    pub wal_sync_nanos: u64,
    /// Shard snapshots written (periodic job-log compaction).
    pub snapshots: u64,
    /// Tenants rebuilt from shard snapshots at startup.
    pub tenants_recovered: u64,
    /// Logged jobs replayed on top of snapshots at startup.
    pub jobs_replayed: u64,
    /// Transient store faults absorbed by the bounded retry loop instead
    /// of poisoning a home (summed over the shards).
    pub store_retries: u64,
    /// Home shards whose durability is currently *poisoned* (a store
    /// fault beyond the retry budget): their tenants get typed
    /// [`crate::JobOutcome::RefusedDurability`] answers until
    /// [`crate::Runtime::reopen_shard_store`] repairs them. A live
    /// gauge, not a monotone counter.
    pub shards_poisoned: u64,
    /// Per-home-shard breakdown of the pool and worker counters — the
    /// view that makes hot-tenant skew *observable*: a hot home shows a
    /// high `jobs_submitted` while (under load-aware scheduling) the
    /// other workers' `jobs_executed`/`steals` show who actually ran the
    /// work. Indexed by shard; `per_shard.len() == shards`.
    pub per_shard: Vec<ShardStats>,
    /// Engine work counters, summed over every tenant engine.
    pub engine: EngineStats,
    /// Trigger-support counters, summed over every tenant engine.
    pub support: SupportStats,
}

/// One home shard's slice of the runtime counters. Submission-side
/// numbers (`jobs_submitted`, `jobs_shed`, `submits_blocked`,
/// `queue_depth`, `tenants`) are per *home* — the shard the tenant hashes
/// to; execution-side numbers (`jobs_executed`, `steals`) are per
/// *worker* — the thread with the same index. Under
/// [`crate::Scheduler::Pinned`] the two coincide; under
/// [`crate::Scheduler::LoadAware`] their divergence is the skew being
/// absorbed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Jobs admitted with this shard as their tenant's home.
    pub jobs_submitted: u64,
    /// Jobs executed by this shard's worker thread (own + stolen).
    pub jobs_executed: u64,
    /// Claims in which this worker ran a tenant homed elsewhere.
    pub steals: u64,
    /// Jobs shed against this home's capacity.
    pub jobs_shed: u64,
    /// Blocked submissions against this home's capacity.
    pub submits_blocked: u64,
    /// Jobs currently staged against this home (live gauge).
    pub queue_depth: u64,
    /// Live tenant engines homed on this shard.
    pub tenants: u64,
    /// Transient store faults this home's retry loop absorbed.
    pub store_retries: u64,
    /// Whether this home's durability is currently poisoned.
    pub poisoned: bool,
}

impl RuntimeStats {
    /// Fold one tenant engine's counters into the aggregate.
    pub(crate) fn add_engine(&mut self, e: EngineStats) {
        self.engine.blocks += e.blocks;
        self.engine.events += e.events;
        self.engine.considerations += e.considerations;
        self.engine.executions += e.executions;
        self.engine.commits += e.commits;
        self.engine.rollbacks += e.rollbacks;
    }

    /// Fold one tenant engine's trigger-support counters in.
    pub(crate) fn add_support(&mut self, s: SupportStats) {
        self.support.rules_checked += s.rules_checked;
        self.support.skipped_by_filter += s.skipped_by_filter;
        self.support.ts_probes += s.ts_probes;
        self.support.probe_memo_hits += s.probe_memo_hits;
        self.support.check_rounds += s.check_rounds;
        self.support.probe_sets_built += s.probe_sets_built;
    }
}
