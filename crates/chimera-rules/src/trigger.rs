//! Trigger definitions, rule state, and the §4.4 triggering predicate.
//!
//! ```text
//! T(r, t)  ⟺  R ≠ ∅  ∧  ∃ t' ∈ (r_t0, t] : ts(rE, t') > 0
//! ```
//!
//! where `R` is the set of occurrences more recent than the rule's last
//! consideration `r_t0`, and `rE` the triggering event expression. The
//! `R ≠ ∅` guard keeps the system *reactive* rather than active: a rule
//! triggered by pure negation does not fire in the absence of any new
//! event occurrence.
//!
//! Because logical time is discrete and the activity of every expression
//! is constant between consecutive event stamps, the existential over
//! `t'` reduces to probing a finite instant set: every event stamp in the
//! window, the instant right after each stamp, and the window's endpoints
//! ([`probe_instants`]).

use crate::action::ActionStmt;
use crate::condition::Condition;
use crate::modes::{ConsumptionMode, CouplingMode};
use chimera_calculus::{ts_logical, EventExpr, PlanEval, RelevanceFilter};
use chimera_events::{EventBase, Timestamp, Window};
use chimera_model::ClassId;

/// An immutable trigger definition.
#[derive(Debug, Clone)]
pub struct TriggerDef {
    /// Rule name (unique in the rule table).
    pub name: String,
    /// Targeted class, if any (§2: a targeted rule considers only events
    /// regarding that class — enforced at definition time by the engine).
    pub target: Option<ClassId>,
    /// The triggering event expression.
    pub events: EventExpr,
    /// Condition evaluated at consideration.
    pub condition: Condition,
    /// Set-oriented action statements.
    pub actions: Vec<ActionStmt>,
    /// E-C coupling mode.
    pub coupling: CouplingMode,
    /// Event consumption mode.
    pub consumption: ConsumptionMode,
    /// User priority: higher considered first; ties broken by definition
    /// order (the paper's partial order made total and deterministic).
    pub priority: i32,
}

impl TriggerDef {
    /// Minimal trigger: immediate, consuming, priority 0, empty condition.
    pub fn new(name: impl Into<String>, events: EventExpr) -> Self {
        TriggerDef {
            name: name.into(),
            target: None,
            events,
            condition: Condition::always(),
            actions: Vec::new(),
            coupling: CouplingMode::Immediate,
            consumption: ConsumptionMode::Consuming,
            priority: 0,
        }
    }
}

/// Mutable runtime state of a rule (§5: the `triggered` flag and the two
/// per-rule timestamps).
#[derive(Debug, Clone)]
pub struct RuleState {
    /// Is the rule currently triggered?
    pub triggered: bool,
    /// Instant of the last consideration (`t0` before any).
    pub last_consideration: Timestamp,
    /// Lower bound of the condition's observation window: the last
    /// consideration for consuming rules, the transaction start for
    /// preserving rules.
    pub last_consumption: Timestamp,
    /// Instant up to which the trigger support has already checked this
    /// rule (incremental checking; never observable in the semantics).
    pub checked_upto: Timestamp,
    /// Has some probed instant `t'` in the current triggering window had
    /// `ts > 0`? The §4.4 existential is sticky until consideration; the
    /// rule is triggered as soon as a witness exists *and* `R ≠ ∅`.
    pub witness: bool,
    /// The §5.1 static-optimization filter for the rule's expression.
    pub filter: RelevanceFilter,
    /// The compiled evaluation plan for the rule's event expression plus
    /// its reusable scratchpad — the engine evaluates `ts` probes through
    /// this instead of re-interpreting the AST (see [`chimera_calculus::plan`]).
    pub plan: PlanEval,
}

impl RuleState {
    /// Fresh state at transaction start. The event expression must be
    /// valid (rule tables validate at definition time).
    pub fn new(def: &TriggerDef, txn_start: Timestamp) -> Self {
        RuleState {
            triggered: false,
            last_consideration: txn_start,
            last_consumption: txn_start,
            checked_upto: txn_start,
            witness: false,
            filter: RelevanceFilter::new(&def.events),
            plan: PlanEval::compile(&def.events)
                .expect("rule event expressions are validated at definition time"),
        }
    }

    /// The triggering window `(last_consideration, now]`.
    pub fn trigger_window(&self, now: Timestamp) -> Window {
        Window::new(self.last_consideration, now)
    }

    /// The condition window `(last_consumption, now]` (§3.3).
    pub fn condition_window(&self, now: Timestamp) -> Window {
        Window::new(self.last_consumption, now)
    }

    /// Reset in place for a new transaction starting at `start`. The
    /// compiled plan and the relevance filter derive only from the rule
    /// definition and are reused as-is — the former per-transaction
    /// recompilation was pure waste, and the plan's scratchpad revalidates
    /// itself against the event base's `(uid, epoch)` key anyway.
    pub fn reset(&mut self, start: Timestamp) {
        self.triggered = false;
        self.last_consideration = start;
        self.last_consumption = start;
        self.checked_upto = start;
        self.witness = false;
    }

    /// Record a consideration at `now`: detrigger and advance stamps
    /// according to the consumption mode.
    pub fn considered(&mut self, def: &TriggerDef, now: Timestamp) {
        self.triggered = false;
        self.witness = false;
        self.last_consideration = now;
        self.checked_upto = now;
        if def.consumption == ConsumptionMode::Consuming {
            self.last_consumption = now;
        }
    }
}

/// The finite probe set equivalent to `∃ t' ∈ (after, now]`: each event
/// stamp in the interval, the successor of each stamp, the interval's
/// first instant and `now`. (Activity is constant between stamps, so one
/// witness per sign-region suffices.)
pub fn probe_instants(eb: &EventBase, after: Timestamp, now: Timestamp) -> Vec<Timestamp> {
    let mut probes = Vec::new();
    probe_instants_into(eb, after, now, &mut probes);
    probes
}

/// [`probe_instants`] into a caller-owned buffer, so the Trigger Support's
/// steady-state block path can reuse one allocation per round instead of
/// growing a fresh vector per block. The buffer is cleared first.
pub fn probe_instants_into(
    eb: &EventBase,
    after: Timestamp,
    now: Timestamp,
    probes: &mut Vec<Timestamp>,
) {
    probes.clear();
    if now <= after {
        return;
    }
    // Built in ascending order: every in-window stamp is >= after+1, each
    // successor interleaves monotonically with the next stamp, and `now`
    // bounds them all — so one dedup pass suffices, no sort.
    probes.push(Timestamp(after.raw() + 1));
    for e in eb.slice(Window::new(after, now)) {
        probes.push(e.ts);
        if e.ts < now {
            probes.push(e.ts.next());
        }
    }
    probes.push(now);
    debug_assert!(probes.windows(2).all(|p| p[0] <= p[1]));
    probes.dedup();
}

/// The §4.4 triggering predicate `T(r, t)`, evaluated from scratch.
///
/// `R` is the window `(state.last_consideration, now]`; the rule is
/// triggered iff `R` is non-empty and `ts` of the rule's expression is
/// positive at some instant of `R`.
pub fn is_triggered(def: &TriggerDef, state: &RuleState, eb: &EventBase, now: Timestamp) -> bool {
    let w = state.trigger_window(now);
    if !eb.any_in(w) {
        return false; // R = ∅: the system stays reactive (§4.4)
    }
    probe_instants(eb, state.last_consideration, now)
        .into_iter()
        .any(|t| ts_logical(&def.events, eb, w, t).is_active())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_events::EventType;
    use chimera_model::Oid;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    fn fresh(def: &TriggerDef) -> RuleState {
        RuleState::new(def, Timestamp::ZERO)
    }

    #[test]
    fn simple_rule_triggers_on_event() {
        let def = TriggerDef::new("r", p(0));
        let mut eb = EventBase::new();
        let st = fresh(&def);
        assert!(!is_triggered(&def, &st, &eb, eb.now()));
        eb.append(et(0), Oid(1));
        assert!(is_triggered(&def, &st, &eb, eb.now()));
    }

    #[test]
    fn unrelated_event_does_not_trigger() {
        let def = TriggerDef::new("r", p(0));
        let mut eb = EventBase::new();
        eb.append(et(1), Oid(1));
        let st = fresh(&def);
        assert!(!is_triggered(&def, &st, &eb, eb.now()));
    }

    /// §4.4: a rule on pure negation needs a non-empty window — the
    /// reactivity guard.
    #[test]
    fn negation_rule_requires_nonempty_window() {
        let def = TriggerDef::new("r", p(0).not());
        let mut eb = EventBase::new();
        let st = fresh(&def);
        // nothing happened: not triggered despite ts(-A) being "positive"
        eb.tick();
        assert!(!is_triggered(&def, &st, &eb, eb.now()));
        // an unrelated event arrives: now R ≠ ∅ and A is absent → triggered
        eb.append(et(1), Oid(1));
        assert!(is_triggered(&def, &st, &eb, eb.now()));
        // but if A itself arrives: not triggered
        let mut eb2 = EventBase::new();
        eb2.append(et(0), Oid(1));
        assert!(!is_triggered(&def, &fresh(&def), &eb2, eb2.now()));
    }

    /// The existential over t': a transiently-active expression still
    /// triggers even if inactive at `now`.
    #[test]
    fn transient_activation_is_caught() {
        // rule on B + (-A): B arrives (active), then A arrives (inactive).
        let def = TriggerDef::new("r", p(1).and(p(0).not()));
        let mut eb = EventBase::new();
        eb.append(et(1), Oid(1)); // t1: B → active at t1
        eb.append(et(0), Oid(1)); // t2: A → inactive from t2 on
        let st = fresh(&def);
        let w = st.trigger_window(eb.now());
        assert!(!ts_logical(&def.events, &eb, w, eb.now()).is_active());
        assert!(is_triggered(&def, &st, &eb, eb.now()));
    }

    #[test]
    fn consideration_detriggers_and_consumes() {
        let def = TriggerDef::new("r", p(0));
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        let mut st = fresh(&def);
        assert!(is_triggered(&def, &st, &eb, eb.now()));
        st.considered(&def, eb.now());
        // old occurrence lost its triggering capability (§2)
        eb.tick();
        assert!(!is_triggered(&def, &st, &eb, eb.now()));
        // a new occurrence re-triggers
        eb.append(et(0), Oid(2));
        assert!(is_triggered(&def, &st, &eb, eb.now()));
    }

    #[test]
    fn consumption_mode_affects_condition_window_only() {
        let consuming = TriggerDef::new("c", p(0));
        let preserving = {
            let mut d = TriggerDef::new("p", p(0));
            d.consumption = ConsumptionMode::Preserving;
            d
        };
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        let mut cs = fresh(&consuming);
        let mut ps = fresh(&preserving);
        let now = eb.now();
        cs.considered(&consuming, now);
        ps.considered(&preserving, now);
        // trigger windows both advance
        assert_eq!(cs.trigger_window(now).after, now);
        assert_eq!(ps.trigger_window(now).after, now);
        // condition window: consuming advances, preserving stays at start
        assert_eq!(cs.condition_window(now).after, now);
        assert_eq!(ps.condition_window(now).after, Timestamp::ZERO);
    }

    #[test]
    fn probe_instants_cover_gaps_and_stamps() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(3));
        eb.append_at(et(0), Oid(1), Timestamp(7));
        let probes = probe_instants(&eb, Timestamp::ZERO, Timestamp(9));
        // first instant, both stamps, both successors, now
        assert_eq!(
            probes,
            vec![
                Timestamp(1),
                Timestamp(3),
                Timestamp(4),
                Timestamp(7),
                Timestamp(8),
                Timestamp(9)
            ]
        );
        assert!(probe_instants(&eb, Timestamp(9), Timestamp(9)).is_empty());
    }

    #[test]
    fn instance_expression_triggering() {
        // same-object sequence: create <= modify
        let def = TriggerDef::new("r", p(0).iprec(p(1)));
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        eb.append(et(1), Oid(2)); // different object
        let st = fresh(&def);
        assert!(!is_triggered(&def, &st, &eb, eb.now()));
        eb.append(et(1), Oid(1)); // same object now
        assert!(is_triggered(&def, &st, &eb, eb.now()));
    }

    #[test]
    fn trigger_def_builder_defaults() {
        let def = TriggerDef::new("r", p(0));
        assert_eq!(def.coupling, CouplingMode::Immediate);
        assert_eq!(def.consumption, ConsumptionMode::Consuming);
        assert_eq!(def.priority, 0);
        assert!(def.target.is_none());
        assert!(def.actions.is_empty());
    }
}
