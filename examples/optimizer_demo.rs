//! §5.1 static optimization, demonstrated: derive the variation set `V(E)`
//! for the paper's worked expression and show the Trigger Support skipping
//! irrelevant arrivals.
//!
//! ```sh
//! cargo run --example optimizer_demo
//! ```

use chimera::calculus::{EventExpr, RelevanceFilter, VariationSet};
use chimera::events::{EventBase, EventType, Timestamp};
use chimera::model::{AttrDef, AttrType, ClassId, Oid, SchemaBuilder};
use chimera::rules::{RuleTable, TriggerDef, TriggerSupport};

fn main() {
    // Name three primitive event types A, B, C over a small schema so the
    // variation sets print readably.
    let mut b = SchemaBuilder::new();
    b.class("a_class", None, vec![AttrDef::new("x", AttrType::Integer)])
        .unwrap();
    b.class("b_class", None, vec![]).unwrap();
    b.class("c_class", None, vec![]).unwrap();
    let schema = b.build();
    let a = EventExpr::prim(EventType::create(ClassId(0)));
    let bb = EventExpr::prim(EventType::create(ClassId(1)));
    let c = EventExpr::prim(EventType::create(ClassId(2)));

    // the §5.1 worked expression:
    // E = ((A , B) < (C + (-A))) , ((A += C) ,= (-=(B <= A)))
    let part1 = a.clone().or(bb.clone()).prec(c.clone().and(a.clone().not()));
    let part2 = a
        .clone()
        .iand(c.clone())
        .ior(bb.clone().iprec(a.clone()).inot());
    let e = part1.or(part2);
    e.validate().unwrap();

    println!("E = {}", e.render(&schema));
    let vs = VariationSet::for_expr(&e);
    println!("V(E) = {}", vs.render(&schema));
    println!("        (the paper's §5.1 example: {{ΔA, ΔB, Δ+C}})\n");

    // show the filter at work inside the trigger support
    let filter = RelevanceFilter::new(&e);
    for (name, ty) in [
        ("A", EventType::create(ClassId(0))),
        ("B", EventType::create(ClassId(1))),
        ("C", EventType::create(ClassId(2))),
        ("D (unrelated)", EventType::delete(ClassId(0))),
    ] {
        println!(
            "arrival of {name:<14} -> recompute ts? {}",
            filter.needs_recheck(&[ty], false)
        );
    }

    // measure skips over a synthetic run: a rule on A + C (conjunction),
    // fed a stream that is 99% irrelevant D arrivals. Triggered rules are
    // considered right away so the support keeps checking.
    let rule_expr = a.clone().and(c.clone());
    println!(
        "\nskip measurement: rule on {} over a 99%-irrelevant stream",
        rule_expr.render(&schema)
    );
    let mut table = RuleTable::new();
    table
        .define(TriggerDef::new("r", rule_expr), Timestamp::ZERO)
        .unwrap();
    let mut support = TriggerSupport::optimized();
    let mut eb = EventBase::new();
    let mut firings = 0u32;
    for i in 0..1000u64 {
        let ty = match i % 200 {
            0 => EventType::create(ClassId(0)),   // A — relevant
            100 => EventType::create(ClassId(2)), // C — relevant
            _ => EventType::delete(ClassId(0)),   // D — irrelevant
        };
        eb.append(ty, Oid(1 + i % 10));
        support.check(&mut table, &eb, eb.now());
        if table.state("r").unwrap().triggered {
            firings += 1;
            table.mark_considered("r", eb.now()).unwrap();
        }
    }
    let s = support.stats;
    println!("after 1000 arrivals (1% relevant):");
    println!("  rules checked          {}", s.rules_checked);
    println!("  skipped by V(E) filter {}", s.skipped_by_filter);
    println!("  ts probes evaluated    {}", s.ts_probes);
    println!("  rule firings           {firings}");
    let skip_ratio = s.skipped_by_filter as f64 / s.rules_checked as f64;
    println!("  skip ratio             {:.1}%", skip_ratio * 100.0);
    assert!(skip_ratio > 0.9, "the filter should skip almost everything");
}
