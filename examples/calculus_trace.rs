//! Regenerates the paper's definitional figures as console output:
//!
//! * Fig. 1 — the operator table;
//! * Fig. 3 — the sample Event Base;
//! * Fig. 4 — the event attribute functions;
//! * §3.1     — the worked operator timelines;
//! * Fig. 5 — the `ts` traces proving De Morgan
//!   (`-(-A , -B) ≡ A + B`) over an A/B/C history.
//!
//! ```sh
//! cargo run --example calculus_trace
//! ```

use chimera::calculus::{ts_logical, EventExpr, FIG1_OPERATORS};
use chimera::events::{fig3_event_base, EventId, EventType, Timestamp, Window};
use chimera::events::fig3::render_fig3_table;
use chimera::model::{ClassId, Oid};
use chimera::events::EventBase;

fn main() {
    fig1();
    fig3_and_4();
    section31_timelines();
    fig5_de_morgan();
}

fn fig1() {
    println!("Fig. 1 — composition operators (decreasing priority)\n");
    println!("{:<14} {:<18} {:<14} dimension", "operator", "instance-oriented", "set-oriented");
    for op in FIG1_OPERATORS {
        println!(
            "{:<14} {:<18} {:<14} {}",
            op.name, op.instance_symbol, op.set_symbol, op.dimension
        );
    }
    println!();
}

fn fig3_and_4() {
    let (schema, eb) = fig3_event_base();
    println!("Fig. 3 — sample Event Base\n");
    println!("{}", render_fig3_table(&schema, &eb));
    println!("Fig. 4 — event attribute functions\n");
    for eid in [1u64, 2, 5, 7] {
        let e = eb.get(EventId(eid)).unwrap();
        println!(
            "type({}) = {:<25} obj({}) = {:<4} timestamp({}) = {:<4} event_on_class({}) = {}",
            e.eid,
            e.ty.render(&schema),
            e.eid,
            e.obj().to_string(),
            e.eid,
            e.timestamp().to_string(),
            e.eid,
            schema.class_name(e.event_on_class()),
        );
    }
    println!();
}

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

fn trace(label: &str, expr: &EventExpr, eb: &EventBase, upto: u64) {
    let w = Window::from_origin(Timestamp(upto));
    print!("{label:<24}");
    for t in 1..=upto {
        print!("{:>5}", ts_logical(expr, eb, w, Timestamp(t)).raw());
    }
    println!();
}

fn section31_timelines() {
    println!("§3.1 — worked set-oriented timelines");
    println!("history: create@t1, create@t5, modify@t9 (A = create, B = modify)\n");
    let mut eb = EventBase::new();
    eb.append_at(et(0), Oid(1), Timestamp(1));
    eb.append_at(et(0), Oid(2), Timestamp(5));
    eb.append_at(et(1), Oid(1), Timestamp(9));
    eb.tick();
    let a = EventExpr::prim(et(0));
    let b = EventExpr::prim(et(1));
    print!("{:<24}", "t");
    for t in 1..=10 {
        print!("{t:>5}");
    }
    println!();
    trace("ts(A)", &a, &eb, 10);
    trace("ts(B)", &b, &eb, 10);
    trace("ts(A , B)", &a.clone().or(b.clone()), &eb, 10);
    trace("ts(A + B)", &a.clone().and(b.clone()), &eb, 10);
    trace("ts(-A)", &a.clone().not(), &eb, 10);
    trace("ts(A < B)", &a.clone().prec(b.clone()), &eb, 10);
    println!();
}

fn fig5_de_morgan() {
    println!("Fig. 5 — De Morgan: ts(-(-A , -B)) ≡ ts(A + B)");
    println!("history: C@1 A@2 C@3 B@4 A@5 B@6 C@7\n");
    let mut eb = EventBase::new();
    eb.append_at(et(2), Oid(1), Timestamp(1));
    eb.append_at(et(0), Oid(1), Timestamp(2));
    eb.append_at(et(2), Oid(2), Timestamp(3));
    eb.append_at(et(1), Oid(1), Timestamp(4));
    eb.append_at(et(0), Oid(3), Timestamp(5));
    eb.append_at(et(1), Oid(2), Timestamp(6));
    eb.append_at(et(2), Oid(1), Timestamp(7));
    let a = EventExpr::prim(et(0));
    let b = EventExpr::prim(et(1));
    print!("{:<24}", "t");
    for t in 1..=7 {
        print!("{t:>5}");
    }
    println!();
    trace("ts(A)", &a, &eb, 7);
    trace("ts(B)", &b, &eb, 7);
    trace("ts(-A)", &a.clone().not(), &eb, 7);
    trace("ts(-B)", &b.clone().not(), &eb, 7);
    trace("ts(-A , -B)", &a.clone().not().or(b.clone().not()), &eb, 7);
    let lhs = a.clone().not().or(b.clone().not()).not();
    let rhs = a.clone().and(b.clone());
    trace("ts(-(-A , -B))", &lhs, &eb, 7);
    trace("ts(A + B)", &rhs, &eb, 7);
    // and assert it, as the paper's graphical proof does visually
    let w = Window::from_origin(Timestamp(7));
    for t in 1..=7 {
        assert_eq!(
            ts_logical(&lhs, &eb, w, Timestamp(t)),
            ts_logical(&rhs, &eb, w, Timestamp(t))
        );
    }
    println!("\nok: the two bottom rows are identical at every instant.");
}
