//! PERF-11 — what durable tenants cost under runtime traffic.
//!
//! `persist.rs` prices the durable *single* engine (one fsync per
//! commit, no concurrency). This bench prices the PR-6 tentpole: the
//! sharded runtime with a per-shard [`StateStore`] underneath the job
//! loop, where a whole drained queue batch rides one fsync (group
//! commit). Three storage modes over the same ingestion session:
//!
//! * `in_memory`   — PR-4 baseline, no store.
//! * `per_job`     — durable, `group_commit: false`: one sync per job
//!   group even when the queue drained many (the pathological policy).
//! * `group_commit` — durable, default policy: the drained batch is
//!   staged and fsynced once.
//!
//! Crossed with the block size (1 / 16 / 256 external events per
//! submitted job) so the sync cost is visible both where it dominates
//! (tiny jobs) and where it amortizes (big blocks). Submission is
//! fire-and-forget into a deep queue (`queue_capacity: 256`) with one
//! `flush` at the end — the shape group commit is designed for.
//!
//! The self-reported acceptance criterion (printed in measure mode):
//! at 256-event blocks, `group_commit` throughput must land within 5×
//! of `in_memory`. WAL directories live under the OS temp dir, which on
//! this host is a real (virtual) disk, not tmpfs — the durable path is
//! bandwidth-bound there (~100–200 MB/s effective with `fdatasync`),
//! which is exactly why the job log's binary record format matters:
//! bytes per event is the durable-throughput ratio. Single passes see
//! multi-ms fsync jitter, so the acceptance line times the best of
//! three passes per mode.

use chimera_events::EventType;
use chimera_model::{AttrDef, AttrType, ClassId, Oid, Schema, SchemaBuilder};
use chimera_runtime::{
    DurabilityConfig, Job, Runtime, RuntimeConfig, StorageMode, TenantId,
};
use chimera_rules::TriggerDef;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("qty", AttrType::Integer)])
        .unwrap();
    b.build()
}

/// The house throughput workload (same rule shapes as `parallel.rs` /
/// `static_opt.rs`): 100 conjunction/precedence rules over 16
/// "rule-only" external channels. Durability cost is only meaningful
/// relative to real detection work — against an empty rule table the
/// in-memory baseline degenerates to a raw log append and any storage
/// layer looks arbitrarily expensive.
fn rules(schema: &Schema) -> Vec<TriggerDef> {
    use chimera_calculus::EventExpr;
    let item = schema.class_by_name("item").unwrap();
    let p = |n: u32| EventExpr::prim(EventType::external(item, n));
    (0..100usize)
        .map(|i| {
            let a = 1000 + (i as u32 % 16);
            let b = 1000 + ((i as u32 + 7) % 16);
            let expr = if i % 2 == 0 { p(a).and(p(b)) } else { p(a).prec(p(b)) };
            TriggerDef::new(format!("r{i}"), expr)
        })
        .collect()
}

fn storage(mode: &str, tag: &str) -> (StorageMode, Option<PathBuf>) {
    match mode {
        "in_memory" => (StorageMode::InMemory, None),
        _ => {
            let dir = std::env::temp_dir().join(format!(
                "chimera-bench-durability-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let mut cfg = DurabilityConfig::new(&dir);
            cfg.group_commit = mode == "group_commit";
            (StorageMode::Durable(cfg), Some(dir))
        }
    }
}

/// One ingestion session: 4 tenants × `blocks` jobs of `per_block`
/// external events each, fire-and-forget, one flush. Returns events fed.
fn run_session(
    schema: &Schema,
    defs: &[TriggerDef],
    mode: &str,
    tag: &str,
    per_block: usize,
    events_per_tenant: usize,
) -> u64 {
    const TENANTS: u64 = 4;
    let blocks = (events_per_tenant / per_block) as u64;
    let item = schema.class_by_name("item").unwrap();
    let (storage, dir) = storage(mode, tag);
    let rt = Runtime::new(
        schema.clone(),
        defs.to_vec(),
        RuntimeConfig {
            shards: 2,
            queue_capacity: 256,
            storage,
            ..Default::default()
        },
    )
    .unwrap();
    let mut k = 0x5EEDu64;
    for _ in 0..blocks {
        for t in 0..TENANTS {
            let events: Vec<(ClassId, u32, Oid)> = (0..per_block)
                .map(|_| {
                    k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    // ~50% of events on channels the rules listen to
                    // (the static_opt mid relevance point)
                    let ch = if (k >> 33) % 100 < 50 {
                        1000 + ((k >> 13) % 16) as u32
                    } else {
                        ((k >> 13) % 16) as u32
                    };
                    (item, ch, Oid((k >> 7) % 32 + 1))
                })
                .collect();
            rt.submit(TenantId(t), Job::RaiseExternal(events)).unwrap();
        }
    }
    rt.flush().unwrap();
    let stats = rt.shutdown();
    if let Some(dir) = dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    assert_eq!(stats.jobs_processed, blocks * TENANTS);
    blocks * TENANTS * per_block as u64
}

fn bench_durability(crit: &mut Criterion) {
    let schema = schema();
    let defs = rules(&schema);
    let mut group = crit.benchmark_group("durability");
    group.sample_size(10);
    for per_block in [1usize, 16, 256] {
        group.throughput(Throughput::Elements(8192));
        for mode in ["in_memory", "per_job", "group_commit"] {
            group.bench_with_input(
                BenchmarkId::new(mode, per_block),
                &per_block,
                |b, &n| {
                    b.iter(|| black_box(run_session(&schema, &defs, mode, "crit", n, 2048)))
                },
            );
        }
    }
    group.finish();
}

/// The acceptance line: durable group commit within 5× of in-memory at
/// 256-event blocks.
fn report_acceptance(c: &mut Criterion) {
    let _ = c;
    let schema = schema();
    let defs = rules(&schema);
    if !measure_mode() {
        // still cover the durable path once in test mode
        black_box(run_session(&schema, &defs, "group_commit", "smoke", 256, 2048));
        return;
    }
    let time = |mode: &str| {
        // warm-up pass, then best of three timed passes: single passes
        // are exposed to multi-ms fsync jitter on the host disk
        run_session(&schema, &defs, mode, "accept-warm", 256, 65536);
        (0..3)
            .map(|_| {
                let start = Instant::now();
                let events = run_session(&schema, &defs, mode, "accept", 256, 65536);
                (events as f64) / start.elapsed().as_secs_f64()
            })
            .fold(0.0f64, f64::max)
    };
    let memory = time("in_memory");
    let group = time("group_commit");
    let ratio = memory / group;
    println!(
        "durability acceptance: in_memory {:.0} ev/s, group_commit {:.0} ev/s, \
         slowdown {ratio:.2}x (bar: <= 5x at 256-event blocks)",
        memory, group
    );
}

criterion_group!(benches, bench_durability, report_acceptance);
criterion_main!(benches);
