//! Event-Condition coupling and event-consumption modes (§2).

use std::fmt;

/// When a triggered rule is considered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CouplingMode {
    /// Considered as soon as possible after the end of the
    /// non-interruptible block that generated the triggering occurrence.
    #[default]
    Immediate,
    /// Suspended until the `commit` command.
    Deferred,
}

/// Which event occurrences the rule's condition can observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConsumptionMode {
    /// Only occurrences more recent than the last consideration.
    #[default]
    Consuming,
    /// All occurrences since the beginning of the transaction.
    Preserving,
}

impl fmt::Display for CouplingMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CouplingMode::Immediate => write!(f, "immediate"),
            CouplingMode::Deferred => write!(f, "deferred"),
        }
    }
}

impl fmt::Display for ConsumptionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConsumptionMode::Consuming => write!(f, "consuming"),
            ConsumptionMode::Preserving => write!(f, "preserving"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_chimera() {
        assert_eq!(CouplingMode::default(), CouplingMode::Immediate);
        assert_eq!(ConsumptionMode::default(), ConsumptionMode::Consuming);
    }

    #[test]
    fn displays() {
        assert_eq!(CouplingMode::Deferred.to_string(), "deferred");
        assert_eq!(ConsumptionMode::Preserving.to_string(), "preserving");
    }
}
