//! PERF-12 — what watching the runtime costs.
//!
//! The PR-9 tentpole threads a telemetry recorder through every
//! pipeline stage (queue wait, append, execute, commit, reply). The
//! whole design budget rests on two claims, priced here:
//!
//! * **off is free** — `Telemetry::off()` is a `None` branch: no
//!   registry, no `Instant` reads, no atomics. A runtime built with the
//!   default `telemetry: false` must be indistinguishable from the
//!   PR-8 baseline (≤ 1%, i.e. inside run-to-run noise).
//! * **on is cheap** — recording is one `Instant` read plus one relaxed
//!   `fetch_add` into a per-worker shard, no locks anywhere. On the
//!   house ingestion workload (4 tenants × 256-arrival blocks through
//!   the 100-rule table, the same session `durability.rs` prices) the
//!   fully-instrumented runtime must stay within **5%** of the
//!   off-mode runtime.
//!
//! The criterion group prices both modes plus the raw recorder
//! primitives (`record` / `count` / `trace`, on and off); the
//! acceptance pass (measure mode only) times full sessions — best of
//! five per mode, interleaved to decorrelate host drift — and
//! **asserts** the on/off ratio ≤ 1.05, so a regression fails the
//! bench sweep instead of rotting quietly.

use chimera_events::EventType;
use chimera_model::{AttrDef, AttrType, ClassId, Oid, Schema, SchemaBuilder};
use chimera_runtime::{Job, Runtime, RuntimeConfig, TenantId};
use chimera_rules::TriggerDef;
use chimera_telemetry::{Counter, Stage, Telemetry, TraceKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("qty", AttrType::Integer)])
        .unwrap();
    b.build()
}

/// The house throughput workload (same shapes as `durability.rs`):
/// 100 conjunction/precedence rules over 16 external channels.
fn rules(schema: &Schema) -> Vec<TriggerDef> {
    use chimera_calculus::EventExpr;
    let item = schema.class_by_name("item").unwrap();
    let p = |n: u32| EventExpr::prim(EventType::external(item, n));
    (0..100usize)
        .map(|i| {
            let a = 1000 + (i as u32 % 16);
            let b = 1000 + ((i as u32 + 7) % 16);
            let expr = if i % 2 == 0 { p(a).and(p(b)) } else { p(a).prec(p(b)) };
            TriggerDef::new(format!("r{i}"), expr)
        })
        .collect()
}

/// One ingestion session: 4 tenants × `blocks` jobs of 256 external
/// events each, fire-and-forget, one flush. In-memory storage — the
/// point is the recorder's marginal cost, not the disk's.
fn run_session(
    schema: &Schema,
    defs: &[TriggerDef],
    telemetry: bool,
    events_per_tenant: usize,
) -> u64 {
    const TENANTS: u64 = 4;
    const PER_BLOCK: usize = 256;
    let blocks = (events_per_tenant / PER_BLOCK) as u64;
    let item = schema.class_by_name("item").unwrap();
    let rt = Runtime::new(
        schema.clone(),
        defs.to_vec(),
        RuntimeConfig {
            shards: 2,
            queue_capacity: 256,
            telemetry,
            ..Default::default()
        },
    )
    .unwrap();
    let mut k = 0x5EEDu64;
    for _ in 0..blocks {
        for t in 0..TENANTS {
            let events: Vec<(ClassId, u32, Oid)> = (0..PER_BLOCK)
                .map(|_| {
                    k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let ch = if (k >> 33) % 100 < 50 {
                        1000 + ((k >> 13) % 16) as u32
                    } else {
                        ((k >> 13) % 16) as u32
                    };
                    (item, ch, Oid((k >> 7) % 32 + 1))
                })
                .collect();
            rt.submit(TenantId(t), Job::RaiseExternal(events)).unwrap();
        }
    }
    rt.flush().unwrap();
    if telemetry {
        // sanity: the instrumented run actually recorded the stages
        let m = rt.telemetry().snapshot();
        assert!(m.enabled && m.hist("execute").unwrap().count() > 0);
    }
    let stats = rt.shutdown();
    assert_eq!(stats.jobs_processed, blocks * TENANTS);
    blocks * TENANTS * PER_BLOCK as u64
}

fn bench_sessions(crit: &mut Criterion) {
    let schema = schema();
    let defs = rules(&schema);
    let mut group = crit.benchmark_group("telemetry");
    group.sample_size(10);
    group.throughput(Throughput::Elements(2048));
    for (name, on) in [("off", false), ("on", true)] {
        group.bench_with_input(BenchmarkId::new("session", name), &on, |b, &on| {
            b.iter(|| black_box(run_session(&schema, &defs, on, 2048)))
        });
    }
    group.finish();
}

/// The raw primitives, priced per call: a stage record (one `Instant`
/// read at the call site + one at record time + one relaxed
/// `fetch_add`), a counter bump, a trace-ring push — each against its
/// off-mode twin (a `None` check).
fn bench_primitives(crit: &mut Criterion) {
    let on = Telemetry::new(4);
    let off = Telemetry::off();
    let mut group = crit.benchmark_group("telemetry_primitives");
    for (name, tel) in [("on", &on), ("off", &off)] {
        group.bench_with_input(BenchmarkId::new("record", name), tel, |b, tel| {
            b.iter(|| {
                let t = tel.start();
                tel.record_since(black_box(1), Stage::Execute, t);
            })
        });
        group.bench_with_input(BenchmarkId::new("count", name), tel, |b, tel| {
            b.iter(|| tel.count(black_box(2), Counter::Batches, 1))
        });
        group.bench_with_input(BenchmarkId::new("trace", name), tel, |b, tel| {
            b.iter(|| tel.trace(black_box(3), TraceKind::JobClaimed, 7, 1))
        });
    }
    group.finish();
    black_box(on.snapshot());
}

/// The acceptance line (the PR-9 bar): the instrumented runtime within
/// 5% of off-mode on the 256-arrival block session. Asserted, not just
/// printed — interleaved best-of-five per mode soaks up host drift.
fn report_acceptance(c: &mut Criterion) {
    let _ = c;
    let schema = schema();
    let defs = rules(&schema);
    if !measure_mode() {
        // test mode: still cover both paths once
        black_box(run_session(&schema, &defs, false, 1024));
        black_box(run_session(&schema, &defs, true, 1024));
        return;
    }
    const EVENTS: usize = 131072;
    let pass = |on: bool| {
        let start = Instant::now();
        let events = run_session(&schema, &defs, on, EVENTS);
        (events as f64) / start.elapsed().as_secs_f64()
    };
    // warm-up, then interleave the timed passes
    pass(false);
    pass(true);
    let (mut best_off, mut best_on) = (0.0f64, 0.0f64);
    for _ in 0..5 {
        best_off = best_off.max(pass(false));
        best_on = best_on.max(pass(true));
    }
    let ratio = best_off / best_on;
    println!(
        "telemetry acceptance: off {best_off:.0} ev/s, on {best_on:.0} ev/s, \
         overhead {:.2}% (bar: <= 5% at 256-arrival blocks; off-mode is the \
         None branch, within noise of the pre-telemetry baseline)",
        (ratio - 1.0) * 100.0
    );
    assert!(
        ratio <= 1.05,
        "telemetry-on overhead {:.2}% exceeds the 5% budget",
        (ratio - 1.0) * 100.0
    );
}

criterion_group!(benches, bench_sessions, bench_primitives, report_acceptance);
criterion_main!(benches);
