//! # chimera-lang
//!
//! A concrete syntax for Chimera with the paper's composite-event
//! operators, close to the examples in §2–§3:
//!
//! ```text
//! define class stock
//!   attributes quantity: integer,
//!              max_quantity: integer default 100
//! end
//!
//! define immediate trigger checkStockQty for stock
//!   events   create ,= modify(quantity)
//!   condition stock(S), occurred(create, S),
//!             S.quantity > S.max_quantity
//!   actions  modify(S.quantity, S.max_quantity)
//! end
//! ```
//!
//! Event expressions use the Fig. 1 operator symbols — set-oriented
//! `,` `+` `-` `<` and instance-oriented `,=` `+=` `-=` `<=` — with the
//! paper's priorities (instance over set; negation over conjunction/
//! precedence over disjunction). Transaction scripts (`begin`, `let x =
//! create …`, `modify x.attr = …`, `{ … }` blocks, `commit`) drive the
//! engine through the facade crate's interpreter.
//!
//! The crate provides a lexer with positions, a recursive-descent parser
//! producing `chimera-rules`/`chimera-calculus` ASTs, and a pretty-printer
//! whose output round-trips through the parser (property-tested).

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod token;

pub use ast::{AttrSpec, ClassDecl, Item, Program, ScriptStmt, TriggerDecl};
pub use error::ParseError;
pub use lexer::lex;
pub use parser::{parse_event_expr, parse_program, parse_trigger_decls, Parser};
pub use pretty::{print_class, print_event_expr, print_trigger};
pub use token::{Span, Token, TokenKind};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, ParseError>;
