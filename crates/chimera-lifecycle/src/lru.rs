//! The intrusive residency LRU: tenant recency ordering in O(1) per
//! operation, no allocation once the slab is warm.
//!
//! A doubly-linked list threaded through a slab (`Vec<Node>` + free
//! list) with a `HashMap` from tenant id to slot. The hot end is where
//! [`ResidencyLru::touch`] moves a tenant; eviction scans from the cold
//! end with [`ResidencyLru::coldest`] — non-destructive, because the
//! runtime may *refuse* to evict a candidate (mid-transaction, staged
//! jobs, poisoned home, store fault) and must be able to move on to the
//! next-coldest without losing the first's position.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    tenant: u64,
    home: usize,
    bytes: u64,
    prev: usize, // towards the hot end
    next: usize, // towards the cold end
}

/// Recency order over resident tenants, coldest-first eviction order.
#[derive(Debug, Default)]
pub struct ResidencyLru {
    nodes: Vec<Node>,
    free: Vec<usize>,
    index: HashMap<u64, usize>,
    hot: usize,
    cold: usize,
    total_bytes: u64,
}

impl ResidencyLru {
    /// An empty LRU.
    pub fn new() -> Self {
        ResidencyLru {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            hot: NIL,
            cold: NIL,
            total_bytes: 0,
        }
    }

    /// Resident tenants tracked.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Nothing tracked?
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Sum of every tracked tenant's approximate bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Is this tenant tracked?
    pub fn contains(&self, tenant: u64) -> bool {
        self.index.contains_key(&tenant)
    }

    /// Mark `tenant` most-recently-active (inserting it if new) and
    /// refresh its home shard and approximate size.
    pub fn touch(&mut self, tenant: u64, home: usize, bytes: u64) {
        if let Some(&slot) = self.index.get(&tenant) {
            self.total_bytes = self.total_bytes - self.nodes[slot].bytes + bytes;
            self.nodes[slot].bytes = bytes;
            self.nodes[slot].home = home;
            if self.hot != slot {
                self.unlink(slot);
                self.link_hot(slot);
            }
            return;
        }
        let node = Node {
            tenant,
            home,
            bytes,
            prev: NIL,
            next: NIL,
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = node;
                slot
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.index.insert(tenant, slot);
        self.total_bytes += bytes;
        self.link_hot(slot);
    }

    /// Stop tracking `tenant` (it was evicted, or left the registry some
    /// other way). Returns whether it was tracked.
    pub fn remove(&mut self, tenant: u64) -> bool {
        let Some(slot) = self.index.remove(&tenant) else {
            return false;
        };
        self.total_bytes -= self.nodes[slot].bytes;
        self.unlink(slot);
        self.free.push(slot);
        true
    }

    /// Up to `limit` eviction candidates, coldest first, without
    /// removing anything: `(tenant, home)` pairs. The caller removes the
    /// ones it actually evicts.
    pub fn coldest(&self, limit: usize) -> Vec<(u64, usize)> {
        let mut out = Vec::with_capacity(limit.min(self.len()));
        let mut at = self.cold;
        while at != NIL && out.len() < limit {
            let n = &self.nodes[at];
            out.push((n.tenant, n.home));
            at = n.prev;
        }
        out
    }

    /// Remove and return the single coldest entry.
    pub fn pop_coldest(&mut self) -> Option<(u64, usize)> {
        let slot = self.cold;
        if slot == NIL {
            return None;
        }
        let (tenant, home) = (self.nodes[slot].tenant, self.nodes[slot].home);
        self.remove(tenant);
        Some((tenant, home))
    }

    fn link_hot(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.hot;
        if self.hot != NIL {
            self.nodes[self.hot].prev = slot;
        }
        self.hot = slot;
        if self.cold == NIL {
            self.cold = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let Node { prev, next, .. } = self.nodes[slot];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.hot = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.cold = prev;
        }
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn touch_orders_cold_to_hot() {
        let mut lru = ResidencyLru::new();
        for t in [1u64, 2, 3] {
            lru.touch(t, 0, 10);
        }
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.total_bytes(), 30);
        assert_eq!(lru.coldest(8), vec![(1, 0), (2, 0), (3, 0)]);
        lru.touch(1, 2, 99); // re-touch moves to hot, refreshes payload
        assert_eq!(lru.coldest(8), vec![(2, 0), (3, 0), (1, 2)]);
        assert_eq!(lru.total_bytes(), 10 + 10 + 99);
        assert_eq!(lru.coldest(1), vec![(2, 0)]);
    }

    #[test]
    fn remove_and_pop() {
        let mut lru = ResidencyLru::new();
        for t in 0..5u64 {
            lru.touch(t, t as usize, 1);
        }
        assert!(lru.remove(2));
        assert!(!lru.remove(2), "double remove is a no-op");
        assert_eq!(lru.pop_coldest(), Some((0, 0)));
        assert_eq!(lru.coldest(8), vec![(1, 1), (3, 3), (4, 4)]);
        assert_eq!(lru.total_bytes(), 3);
        // slab slots are reused
        lru.touch(9, 9, 1);
        assert_eq!(lru.coldest(8), vec![(1, 1), (3, 3), (4, 4), (9, 9)]);
    }

    #[test]
    fn empty_edge_cases() {
        let mut lru = ResidencyLru::new();
        assert!(lru.is_empty());
        assert_eq!(lru.pop_coldest(), None);
        assert!(lru.coldest(4).is_empty());
        assert!(!lru.remove(7));
        lru.touch(7, 1, 5);
        assert_eq!(lru.pop_coldest(), Some((7, 1)));
        assert!(lru.is_empty());
        assert_eq!(lru.total_bytes(), 0);
    }

    /// Model check against the obvious Vec-backed LRU: same recency
    /// order, same membership, same byte totals, under random
    /// touch/remove/pop interleavings.
    #[derive(Debug, Clone)]
    enum Op {
        Touch(u64, usize, u64),
        Remove(u64),
        Pop,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u64..12, 0usize..4, 0u64..100).prop_map(|(t, h, b)| Op::Touch(t, h, b)),
            (0u64..12).prop_map(Op::Remove),
            Just(Op::Pop),
        ]
    }

    proptest! {
        #[test]
        fn matches_vec_model(ops in prop::collection::vec(op(), 0..200)) {
            let mut lru = ResidencyLru::new();
            // model: cold end at index 0, hot end at the back
            let mut model: Vec<(u64, usize, u64)> = Vec::new();
            for op in ops {
                match op {
                    Op::Touch(t, h, b) => {
                        lru.touch(t, h, b);
                        model.retain(|e| e.0 != t);
                        model.push((t, h, b));
                    }
                    Op::Remove(t) => {
                        let was = model.iter().any(|e| e.0 == t);
                        model.retain(|e| e.0 != t);
                        prop_assert_eq!(lru.remove(t), was);
                    }
                    Op::Pop => {
                        let want = if model.is_empty() {
                            None
                        } else {
                            let e = model.remove(0);
                            Some((e.0, e.1))
                        };
                        prop_assert_eq!(lru.pop_coldest(), want);
                    }
                }
                prop_assert_eq!(lru.len(), model.len());
                prop_assert_eq!(lru.total_bytes(), model.iter().map(|e| e.2).sum::<u64>());
                let want: Vec<(u64, usize)> = model.iter().map(|e| (e.0, e.1)).collect();
                prop_assert_eq!(lru.coldest(usize::MAX), want);
            }
        }
    }
}
