//! Recordable, replayable operation traces.
//!
//! Traces use symbolic handles (dense indexes assigned at creation) so a
//! recorded run can be replayed into a fresh engine, where OIDs may
//! differ. Replay is deterministic; the integration suite uses it to
//! assert that two engines fed the same trace reach identical states.

use chimera_exec::{Engine, Op, Result};
use chimera_model::{Oid, Value};

/// A trace operation over symbolic object handles.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// Begin a transaction.
    Begin,
    /// Commit.
    Commit,
    /// Rollback.
    Rollback,
    /// Create an object of a class; the new object gets the next handle.
    Create {
        /// Class name.
        class: String,
        /// Attribute initializers by name.
        inits: Vec<(String, Value)>,
    },
    /// Modify an attribute of a handle.
    Modify {
        /// Creation handle.
        handle: usize,
        /// Attribute name.
        attr: String,
        /// New value.
        value: Value,
    },
    /// Delete a handle's object.
    Delete {
        /// Creation handle.
        handle: usize,
    },
}

/// An operation trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Operations in order.
    pub ops: Vec<TraceOp>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Append an operation.
    pub fn push(&mut self, op: TraceOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Replay into an engine; each operation is its own block. Returns the
    /// handle → OID mapping.
    pub fn replay(&self, engine: &mut Engine) -> Result<Vec<Oid>> {
        let mut handles: Vec<Oid> = Vec::new();
        for op in &self.ops {
            match op {
                TraceOp::Begin => engine.begin()?,
                TraceOp::Commit => engine.commit()?,
                TraceOp::Rollback => engine.rollback()?,
                TraceOp::Create { class, inits } => {
                    let schema = engine.schema();
                    let cid = schema.class_by_name(class).map_err(chimera_exec::ExecError::Model)?;
                    let mut resolved = Vec::with_capacity(inits.len());
                    for (name, v) in inits {
                        let aid = schema
                            .attr_by_name(cid, name)
                            .map_err(chimera_exec::ExecError::Model)?;
                        resolved.push((aid, v.clone()));
                    }
                    let occs = engine.exec_block(&[Op::Create {
                        class: cid,
                        inits: resolved,
                    }])?;
                    handles.push(occs[0].oid);
                }
                TraceOp::Modify {
                    handle,
                    attr,
                    value,
                } => {
                    let oid = handles[*handle];
                    let class = engine.get_object(oid)?.class;
                    let aid = engine
                        .schema()
                        .attr_by_name(class, attr)
                        .map_err(chimera_exec::ExecError::Model)?;
                    engine.exec_block(&[Op::Modify {
                        oid,
                        attr: aid,
                        value: value.clone(),
                    }])?;
                }
                TraceOp::Delete { handle } => {
                    let oid = handles[*handle];
                    engine.exec_block(&[Op::Delete { oid }])?;
                }
            }
        }
        Ok(handles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stock::{stock_schema, stock_triggers};

    fn engine() -> Engine {
        let mut e = Engine::new(stock_schema());
        for def in stock_triggers(e.schema()) {
            e.define_trigger(def).unwrap();
        }
        e
    }

    fn sample_trace() -> Trace {
        let mut t = Trace::new();
        t.push(TraceOp::Begin)
            .push(TraceOp::Create {
                class: "stock".into(),
                inits: vec![("quantity".into(), Value::Int(500))],
            })
            .push(TraceOp::Modify {
                handle: 0,
                attr: "quantity".into(),
                value: Value::Int(3),
            })
            .push(TraceOp::Commit);
        t
    }

    #[test]
    fn replay_drives_rules() {
        let mut e = engine();
        let handles = sample_trace().replay(&mut e).unwrap();
        // checkStockQty clamped 500 → 100, then the explicit modify set 3,
        // and reorder created a stockOrder (3 < min_quantity 10).
        assert_eq!(e.read_attr(handles[0], "quantity").unwrap(), Value::Int(3));
        let order_class = e.schema().class_by_name("stockOrder").unwrap();
        let orders = e.extent(order_class);
        assert_eq!(orders.len(), 1);
        assert_eq!(
            e.read_attr(orders[0], "del_quantity").unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn replay_is_deterministic_across_engines() {
        let t = sample_trace();
        let mut e1 = engine();
        let mut e2 = engine();
        let h1 = t.replay(&mut e1).unwrap();
        let h2 = t.replay(&mut e2).unwrap();
        assert_eq!(e1.stats(), e2.stats());
        assert_eq!(
            e1.read_attr(h1[0], "min_quantity").unwrap(),
            e2.read_attr(h2[0], "min_quantity").unwrap()
        );
    }

    #[test]
    fn rollback_in_trace() {
        let mut t = Trace::new();
        t.push(TraceOp::Begin)
            .push(TraceOp::Create {
                class: "stock".into(),
                inits: vec![],
            })
            .push(TraceOp::Rollback);
        let mut e = engine();
        t.replay(&mut e).unwrap();
        let stock = e.schema().class_by_name("stock").unwrap();
        assert!(e.extent(stock).is_empty());
    }

    #[test]
    fn delete_via_handle() {
        let mut t = sample_trace();
        // remove the trailing commit, delete, then commit
        t.ops.pop();
        t.push(TraceOp::Delete { handle: 0 }).push(TraceOp::Commit);
        let mut e = engine();
        t.replay(&mut e).unwrap();
        let stock = e.schema().class_by_name("stock").unwrap();
        assert!(e.extent(stock).is_empty());
    }
}
