//! The blocking client: a handshaked TCP connection with request
//! pipelining for submissions.
//!
//! Responses arrive in strict request order (the server guarantees one
//! response per request), so the client keeps the tenant of every
//! outstanding [`Request::SubmitBlock`] in a FIFO: [`Client::submit`]
//! fires without waiting (bounded by [`PIPELINE_WINDOW`] — the oldest
//! completion is drained when the window fills), [`Client::drain`]
//! collects every outstanding completion, and the synchronous calls
//! (`stats`, `flush`, queries) drain first so their response is the
//! next frame on the stream.
//!
//! ## Reconnect (version 4)
//!
//! With a [`ReconnectPolicy`] configured, a dead connection is not the
//! end of the session: every in-flight submission is resolved as a
//! *typed* [`WireOutcome::Disconnected`] completion (job id
//! [`JOB_DISCONNECTED`] — the job may or may not have run; it is never
//! resubmitted, so delivery is **at-most-once with explicit loss**),
//! then the client redials with capped exponential backoff plus
//! deterministic jitter, re-runs the handshake, and replays every
//! previously acknowledged `DefineTriggers` batch so the session's
//! trigger vocabulary survives the reconnect. Without a policy the
//! client behaves exactly as before: the first transport error is
//! surfaced and the client is done.

use crate::proto::{
    Request, Response, TenantQuery, TenantReply, TriggerOutcome, WireDurability, WireJob,
    WireOutcome, WireStats, JOB_DISCONNECTED,
};
use crate::wire::{read_frame, write_frame, WireError, MAX_FRAME, PROTOCOL_VERSION};
use chimera_telemetry::{MetricsSnapshot, Stage, Telemetry};
use std::collections::VecDeque;
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Outstanding pipelined submissions before [`Client::submit`] drains
/// the oldest completion. Keeps the socket's send buffer comfortably
/// unfilled (requests are small) so a non-reading writer cannot
/// deadlock against a non-writing reader.
pub const PIPELINE_WINDOW: usize = 32;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Transport/codec failure.
    Wire(WireError),
    /// The server answered [`Response::Error`].
    Remote(String),
    /// The server answered, but with the wrong response kind.
    Unexpected(String),
    /// The server closed the connection mid-conversation.
    Closed,
    /// The server refused the connection: its accepted-connection cap
    /// is reached. Retry later — nothing about the request was wrong.
    Busy {
        /// Connections the server had accepted.
        active: u32,
        /// The server's connection cap.
        limit: u32,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Wire(e) => write!(f, "{e}"),
            NetError::Remote(msg) => write!(f, "server error: {msg}"),
            NetError::Unexpected(what) => write!(f, "unexpected response: {what}"),
            NetError::Closed => write!(f, "server closed the connection"),
            NetError::Busy { active, limit } => {
                write!(f, "server busy: {active} of {limit} connections in use")
            }
        }
    }
}

impl std::error::Error for NetError {}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Wire(WireError::from(e))
    }
}

/// Does this error mean the *connection* is gone (as opposed to a
/// well-formed refusal on a healthy stream)? Only these trigger the
/// orphan-and-reconnect path.
fn is_conn_fatal(e: &NetError) -> bool {
    matches!(
        e,
        NetError::Closed
            | NetError::Wire(WireError::Io(_))
            | NetError::Wire(WireError::TimedOut)
            | NetError::Wire(WireError::Truncated)
    )
}

/// Redial behavior after a lost connection (see the module docs).
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Redial attempts before the original error is surfaced.
    pub max_attempts: u32,
    /// First backoff; doubles per attempt.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Seed for the deterministic jitter added to each backoff (up to
    /// half the backoff), so a fleet of clients with distinct seeds
    /// does not redial in lockstep — and a test with a fixed seed
    /// replays the exact same schedule.
    pub jitter_seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        ReconnectPolicy {
            max_attempts: 6,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            jitter_seed: 0,
        }
    }
}

/// Client knobs ([`Client::connect_config`]).
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Name announced in `Hello`.
    pub name: String,
    /// Per-frame payload bound for both directions.
    pub max_frame: usize,
    /// Fail the handshake unless the server provides exactly this
    /// durability level (a client about to stream irreplaceable events
    /// can insist on group commit before sending anything).
    pub require_durability: Option<WireDurability>,
    /// TCP connect deadline per resolved address; `None` blocks.
    pub connect_timeout: Option<Duration>,
    /// Socket deadline for any single response read (and any send): a
    /// server that goes quiet mid-conversation turns into a typed
    /// timeout — and, with a reconnect policy, into `Disconnected`
    /// completions — instead of an unbounded hang. `None` waits
    /// forever.
    pub request_timeout: Option<Duration>,
    /// Redial after a lost connection; `None` (the default) keeps the
    /// classic fail-fast behavior.
    pub reconnect: Option<ReconnectPolicy>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            name: "chimera-client".into(),
            max_frame: MAX_FRAME,
            require_durability: None,
            connect_timeout: Some(Duration::from_secs(10)),
            request_timeout: None,
            reconnect: None,
        }
    }
}

/// SplitMix64 finalizer — the house mixing function; drives the
/// deterministic reconnect jitter.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One job's completion, as the client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobDone {
    /// Runtime-wide job id ([`JOB_DISCONNECTED`] for a submission
    /// orphaned by a lost connection — no server id is known for it).
    pub job: u64,
    /// The tenant the job ran for.
    pub tenant: u64,
    /// How it ended.
    pub outcome: crate::proto::WireOutcome,
}

/// One live handshaked connection's moving parts, replaced wholesale on
/// reconnect.
struct Wire {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    server: String,
    shards: u32,
    durability: Option<WireDurability>,
}

/// Dial, apply the socket deadlines, and run the handshake — raw, so
/// reconnects cannot recurse into the client's own error handling.
fn establish(addrs: &[SocketAddr], config: &ClientConfig) -> Result<Wire, NetError> {
    let mut last: Option<std::io::Error> = None;
    let mut stream = None;
    for addr in addrs {
        let dialed = match config.connect_timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match dialed {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(e) => last = Some(e),
        }
    }
    let Some(stream) = stream else {
        return Err(last.map(NetError::from).unwrap_or_else(|| {
            NetError::Unexpected("address resolved to no socket addresses".into())
        }));
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(config.request_timeout).ok();
    stream.set_write_timeout(config.request_timeout).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let hello = Request::Hello {
        version: PROTOCOL_VERSION,
        client: config.name.clone(),
        durability: config.require_durability,
    };
    write_frame(&mut writer, &hello.encode())?;
    writer.flush()?;
    let payload = read_frame(&mut reader, config.max_frame)?.ok_or(NetError::Closed)?;
    match Response::decode(&payload)? {
        Response::HelloAck {
            server,
            shards,
            durability,
            ..
        } => Ok(Wire {
            reader,
            writer,
            server,
            shards,
            durability,
        }),
        Response::Busy { active, limit } => Err(NetError::Busy { active, limit }),
        Response::Error { message } => Err(NetError::Remote(message)),
        other => Err(NetError::Unexpected(format!("{other:?}"))),
    }
}

/// A blocking protocol client.
pub struct Client {
    wire: Wire,
    config: ClientConfig,
    /// The resolved dial targets, kept for reconnects.
    addrs: Vec<SocketAddr>,
    /// Tenant of each outstanding SubmitBlock whose JobDone is still
    /// unread from the socket, in request order.
    pending: VecDeque<u64>,
    /// Completions read off the socket (to unblock a synchronous call)
    /// but not yet delivered to the caller. No completion is ever
    /// silently dropped: [`Client::recv_job_done`] and
    /// [`Client::drain`] serve these first, oldest first.
    buffered: VecDeque<JobDone>,
    /// Acknowledged DefineTriggers batches, replayed after a reconnect
    /// (recorded only when a reconnect policy is configured).
    trigger_replay: Vec<(u64, String)>,
    /// Successful reconnects.
    reconnects: u64,
    /// In-flight submissions resolved as [`WireOutcome::Disconnected`].
    orphaned: u64,
    /// Monotone ordinal driving the jitter stream across reconnects.
    backoffs: u64,
    /// The client's own (local, single-shard) recorder: every
    /// synchronous call's send → response latency lands in its
    /// [`Stage::ClientRequest`] histogram. Always on — one `Instant`
    /// read and one relaxed `fetch_add` per call is noise next to a
    /// network round trip.
    tel: Telemetry,
}

impl Client {
    /// Connect and handshake with the default frame bound.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        Client::connect_config(addr, ClientConfig::default())
    }

    /// Connect, announcing `name`, with an explicit frame bound.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        name: &str,
        max_frame: usize,
    ) -> Result<Client, NetError> {
        Client::connect_config(
            addr,
            ClientConfig {
                name: name.into(),
                max_frame,
                ..ClientConfig::default()
            },
        )
    }

    /// Connect, *requiring* a durability level: the handshake fails with
    /// [`NetError::Remote`] unless the server's runtime provides exactly
    /// `durability` (a client about to stream irreplaceable events can
    /// insist on group commit before sending anything).
    pub fn connect_requiring(
        addr: impl ToSocketAddrs,
        name: &str,
        durability: WireDurability,
    ) -> Result<Client, NetError> {
        Client::connect_config(
            addr,
            ClientConfig {
                name: name.into(),
                require_durability: Some(durability),
                ..ClientConfig::default()
            },
        )
    }

    /// Connect with the full knob set ([`ClientConfig`]).
    pub fn connect_config(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, NetError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let wire = establish(&addrs, &config)?;
        Ok(Client {
            wire,
            config,
            addrs,
            pending: VecDeque::new(),
            buffered: VecDeque::new(),
            trigger_replay: Vec::new(),
            reconnects: 0,
            orphaned: 0,
            backoffs: 0,
            tel: Telemetry::new(1),
        })
    }

    /// The server's announced name.
    pub fn server_name(&self) -> &str {
        &self.wire.server
    }

    /// The server runtime's shard count.
    pub fn shards(&self) -> u32 {
        self.wire.shards
    }

    /// The durability level the server announced in its ack (`None`
    /// only when talking to a version-1 server that predates it).
    pub fn server_durability(&self) -> Option<WireDurability> {
        self.wire.durability
    }

    /// Completions not yet delivered to the caller (unread from the
    /// socket plus buffered by a synchronous call).
    pub fn outstanding(&self) -> usize {
        self.pending.len() + self.buffered.len()
    }

    /// Successful reconnects over this client's lifetime.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// In-flight submissions resolved as [`WireOutcome::Disconnected`]
    /// across every lost connection.
    pub fn orphaned(&self) -> u64 {
        self.orphaned
    }

    // ------------------------------------------------------- raw plumbing

    fn send(&mut self, req: &Request) -> Result<(), NetError> {
        write_frame(&mut self.wire.writer, &req.encode())?;
        self.wire.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, NetError> {
        let payload =
            read_frame(&mut self.wire.reader, self.config.max_frame)?.ok_or(NetError::Closed)?;
        Ok(Response::decode(&payload)?)
    }

    /// React to an error from the socket: if it is connection-fatal and
    /// a reconnect policy is configured, resolve every in-flight
    /// submission as a typed [`WireOutcome::Disconnected`] completion
    /// and redial; otherwise surface the error unchanged.
    fn recover(&mut self, e: NetError) -> Result<(), NetError> {
        if self.config.reconnect.is_none() || !is_conn_fatal(&e) {
            return Err(e);
        }
        self.orphan_pending();
        self.reconnect()
    }

    /// Every in-flight submission becomes a buffered `Disconnected`
    /// completion (oldest first, keeping delivery order): the job may
    /// or may not have run server-side, and it is never resubmitted.
    fn orphan_pending(&mut self) {
        while let Some(tenant) = self.pending.pop_front() {
            self.orphaned += 1;
            self.buffered.push_back(JobDone {
                job: JOB_DISCONNECTED,
                tenant,
                outcome: WireOutcome::Disconnected,
            });
        }
    }

    /// Redial with capped exponential backoff + seeded jitter, re-run
    /// the handshake, and replay the session's trigger definitions.
    fn reconnect(&mut self) -> Result<(), NetError> {
        let policy = self
            .config
            .reconnect
            .clone()
            .expect("recover() checked the policy");
        let mut last = NetError::Closed;
        for attempt in 0..policy.max_attempts {
            let backoff = policy
                .base
                .saturating_mul(1u32 << attempt.min(20))
                .min(policy.cap);
            let jitter_range = backoff.as_millis() as u64 / 2 + 1;
            let jitter = mix(policy.jitter_seed.wrapping_add(self.backoffs)) % jitter_range;
            self.backoffs += 1;
            std::thread::sleep(backoff + Duration::from_millis(jitter));
            match establish(&self.addrs, &self.config) {
                Ok(wire) => {
                    self.wire = wire;
                    self.reconnects += 1;
                    match self.replay_triggers() {
                        Ok(()) => return Ok(()),
                        // the fresh connection died mid-replay: another
                        // attempt (the budget bounds this)
                        Err(e) => last = e,
                    }
                }
                // a handshake *refusal* (version or durability
                // mismatch) cannot heal by redialing
                Err(e @ NetError::Remote(_)) => return Err(e),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Re-run every acknowledged `DefineTriggers` batch on a fresh
    /// connection, so the session's installed triggers survive it.
    fn replay_triggers(&mut self) -> Result<(), NetError> {
        for (tenant, source) in self.trigger_replay.clone() {
            self.send(&Request::DefineTriggers { tenant, source })?;
            match self.recv()? {
                Response::TriggersDefined { .. } => {}
                Response::Error { message } => return Err(NetError::Remote(message)),
                other => return Err(NetError::Unexpected(format!("{other:?}"))),
            }
        }
        Ok(())
    }

    /// Read one completion off the socket into `buffered` (or, on a
    /// lost connection with a reconnect policy, orphan everything
    /// in-flight into `buffered`). Either way, on `Ok` the buffer has
    /// grown by at least one completion.
    fn pump_one(&mut self) -> Result<(), NetError> {
        debug_assert!(!self.pending.is_empty(), "no submission outstanding");
        match self.recv() {
            Ok(Response::JobDone {
                job,
                tenant,
                outcome,
            }) => {
                self.pending.pop_front();
                self.buffered.push_back(JobDone {
                    job,
                    tenant,
                    outcome,
                });
                Ok(())
            }
            Ok(Response::Error { message }) => {
                self.pending.pop_front();
                Err(NetError::Remote(message))
            }
            Ok(other) => {
                self.pending.pop_front();
                Err(NetError::Unexpected(format!("{other:?}")))
            }
            Err(e) => self.recover(e),
        }
    }

    /// Send one request and read *its* response. Outstanding completions
    /// are read off the socket first (stream order) and buffered for the
    /// caller to collect later — never dropped. On a lost connection
    /// with a reconnect policy, an *idempotent* request is retried
    /// exactly once on the fresh connection; a non-idempotent one
    /// (`DefineTriggers`) is never blindly resent — the connection may
    /// have died after the server processed it, and a duplicate run
    /// would surface bogus already-defined refusals (and double-record
    /// the batch for replay). The session still heals (in-flight
    /// submissions resolve, acknowledged triggers replay), but the
    /// caller gets the transport error and decides for itself.
    fn call(&mut self, req: Request) -> Result<Response, NetError> {
        while !self.pending.is_empty() {
            self.pump_one()?;
        }
        // request latency as this caller experiences it: send → response,
        // a reconnect-and-retry episode included
        let started = self.tel.start();
        let result = match self.send(&req).and_then(|()| self.recv()) {
            Ok(resp) => Ok(resp),
            Err(e) => {
                let retryable = !matches!(req, Request::DefineTriggers { .. });
                self.recover(e.clone())?;
                if !retryable {
                    return Err(e);
                }
                self.send(&req)?;
                self.recv()
            }
        };
        self.tel.record_since(0, Stage::ClientRequest, started);
        result
    }

    // -------------------------------------------------------- submissions

    /// Pipeline one job: fire the request without waiting for its
    /// completion. When [`PIPELINE_WINDOW`] submissions are in flight,
    /// the oldest completion is drained (and returned) to make room.
    pub fn submit(
        &mut self,
        tenant: u64,
        job: WireJob,
    ) -> Result<Option<JobDone>, NetError> {
        let drained = if self.pending.len() >= PIPELINE_WINDOW {
            // read one off the socket to shrink the in-flight window,
            // and hand the caller the *oldest* undelivered completion
            self.pump_one()?;
            self.buffered.pop_front()
        } else {
            None
        };
        self.send_job(tenant, job)?;
        Ok(drained)
    }

    /// Submit one job and wait for its completion. Any older buffered
    /// completions stay buffered (collect them with [`Client::drain`]).
    pub fn submit_wait(&mut self, tenant: u64, job: WireJob) -> Result<JobDone, NetError> {
        while !self.pending.is_empty() {
            self.pump_one()?;
        }
        self.send_job(tenant, job)?;
        if !self.pending.is_empty() {
            self.pump_one()?;
        }
        // the newest buffered completion is this job's — either its
        // real outcome or its Disconnected resolution
        self.buffered
            .pop_back()
            .ok_or_else(|| NetError::Unexpected("completion vanished".into()))
    }

    /// Fire one SubmitBlock. A failed send with a reconnect policy
    /// orphans the job — the bytes may have partially left, so
    /// resubmitting could double-run it — and takes the reconnect path
    /// like any other lost connection. Without one (or when the error
    /// is not connection-fatal) the error surfaces with *nothing*
    /// recorded as pending: no recovery will resolve the slot, so
    /// counting it would wedge a later [`Client::drain`] waiting on a
    /// completion the server will never send.
    fn send_job(&mut self, tenant: u64, job: WireJob) -> Result<(), NetError> {
        match self.send(&Request::SubmitBlock { tenant, job }) {
            Ok(()) => {
                self.pending.push_back(tenant);
                Ok(())
            }
            Err(e) => {
                if self.config.reconnect.is_none() || !is_conn_fatal(&e) {
                    return Err(e);
                }
                self.pending.push_back(tenant);
                self.recover(e)
            }
        }
    }

    /// The oldest outstanding completion: buffered first, then the
    /// socket. Errs immediately if nothing is outstanding (a blocking
    /// read would otherwise hang forever on a server with nothing to
    /// say).
    pub fn recv_job_done(&mut self) -> Result<JobDone, NetError> {
        if let Some(done) = self.buffered.pop_front() {
            return Ok(done);
        }
        if self.pending.is_empty() {
            return Err(NetError::Unexpected(
                "no submission outstanding: nothing to receive".into(),
            ));
        }
        self.pump_one()?;
        self.buffered
            .pop_front()
            .ok_or_else(|| NetError::Unexpected("completion vanished".into()))
    }

    /// Drain every outstanding completion, oldest first.
    pub fn drain(&mut self) -> Result<Vec<JobDone>, NetError> {
        let mut done = Vec::with_capacity(self.outstanding());
        while self.outstanding() > 0 {
            done.push(self.recv_job_done()?);
        }
        Ok(done)
    }

    // ---------------------------------------------- job conveniences

    /// `submit(tenant, WireJob::Begin)`.
    pub fn begin(&mut self, tenant: u64) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::Begin)
    }
    /// `submit(tenant, WireJob::ExecBlock(ops))`.
    pub fn exec_block(
        &mut self,
        tenant: u64,
        ops: Vec<crate::proto::WireOp>,
    ) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::ExecBlock(ops))
    }
    /// `submit(tenant, WireJob::RaiseExternal(events))`.
    pub fn raise_external(
        &mut self,
        tenant: u64,
        events: Vec<crate::proto::ExternalEvent>,
    ) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::RaiseExternal(events))
    }
    /// `submit(tenant, WireJob::Commit)`.
    pub fn commit(&mut self, tenant: u64) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::Commit)
    }
    /// `submit(tenant, WireJob::Rollback)`.
    pub fn rollback(&mut self, tenant: u64) -> Result<Option<JobDone>, NetError> {
        self.submit(tenant, WireJob::Rollback)
    }

    // --------------------------------------------------- synchronous calls

    /// Install tenant-local triggers from `define trigger` source text.
    /// Every declaration in the source is attempted; the returned
    /// outcomes (one per declaration, in source order) say which were
    /// installed and why the others were refused. `Err` is reserved for
    /// transport failures and unparseable source. Under a reconnect
    /// policy, acknowledged batches are recorded and replayed on every
    /// reconnect — but a batch whose connection died before the ack is
    /// *not* resent (the server may already have run it): the transport
    /// error surfaces and the caller decides whether to resubmit.
    pub fn define_triggers(
        &mut self,
        tenant: u64,
        source: &str,
    ) -> Result<Vec<TriggerOutcome>, NetError> {
        match self.call(Request::DefineTriggers {
            tenant,
            source: source.into(),
        })? {
            Response::TriggersDefined { outcomes } => {
                if self.config.reconnect.is_some() {
                    self.trigger_replay.push((tenant, source.to_string()));
                }
                Ok(outcomes)
            }
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Runtime-wide flush barrier.
    pub fn flush(&mut self) -> Result<(), NetError> {
        match self.call(Request::Flush)? {
            Response::FlushDone => Ok(()),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Aggregate runtime stats.
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        match self.call(Request::Stats)? {
            Response::StatsReply(s) => Ok(s),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The server runtime's full telemetry registry — counters, gauges,
    /// latency histograms (buckets included) and the drained trace tail
    /// (version 5). A server with telemetry disabled answers with
    /// `enabled = false` and empty series, not an error.
    pub fn metrics_snapshot(&mut self) -> Result<MetricsSnapshot, NetError> {
        match self.call(Request::MetricsSnapshot)? {
            Response::MetricsReply(m) => Ok(m),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// The client's own recorder: the [`Stage::ClientRequest`] histogram
    /// of every synchronous call's send → response latency. Snapshot it
    /// with [`chimera_telemetry::Telemetry::snapshot`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Inspect one tenant's engine.
    pub fn tenant_query(
        &mut self,
        tenant: u64,
        query: TenantQuery,
    ) -> Result<TenantReply, NetError> {
        match self.call(Request::WithTenantQuery { tenant, query })? {
            Response::TenantReply(reply) => Ok(reply),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to stop (flushes the runtime first). The
    /// connection is closed by the server afterwards.
    pub fn shutdown_server(&mut self) -> Result<(), NetError> {
        match self.call(Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(NetError::Unexpected(format!("{other:?}"))),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("server", &self.wire.server)
            .field("shards", &self.wire.shards)
            .field("pending", &self.pending.len())
            .field("reconnects", &self.reconnects)
            .finish_non_exhaustive()
    }
}
