//! Logical time.
//!
//! The paper's semantics only needs a totally ordered time domain in which
//! every event occurrence has a distinct stamp. A strictly monotonic
//! logical clock provides that and makes every run reproducible.

use std::fmt;

/// A logical timestamp. `Timestamp(0)` is reserved as the pre-transaction
/// origin (`t0`), so event stamps are always ≥ 1 and the signed `ts` values
/// of the calculus are never 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The pre-transaction origin.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The signed value used by the calculus' `ts` function (always > 0).
    #[inline]
    pub fn as_signed(self) -> i64 {
        self.0 as i64
    }

    /// Successor stamp.
    #[inline]
    pub fn next(self) -> Timestamp {
        Timestamp(self.0 + 1)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Strictly monotonic stamp allocator.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    last: Timestamp,
}

impl LogicalClock {
    /// Clock positioned at the origin; the first tick yields `t1`.
    pub fn new() -> Self {
        LogicalClock {
            last: Timestamp::ZERO,
        }
    }

    /// Allocate the next stamp.
    pub fn tick(&mut self) -> Timestamp {
        self.last = self.last.next();
        self.last
    }

    /// The most recently allocated stamp (`t0` if none).
    pub fn now(&self) -> Timestamp {
        self.last
    }

    /// Advance the clock to at least `to` (used when replaying scripted
    /// histories with explicit stamps). Returns the new `now`.
    pub fn advance_to(&mut self, to: Timestamp) -> Timestamp {
        if to > self.last {
            self.last = to;
        }
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_ticks() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        let a = c.tick();
        let b = c.tick();
        assert_eq!(a, Timestamp(1));
        assert_eq!(b, Timestamp(2));
        assert!(a < b);
        assert_eq!(c.now(), b);
    }

    #[test]
    fn advance_never_regresses() {
        let mut c = LogicalClock::new();
        c.advance_to(Timestamp(10));
        assert_eq!(c.now(), Timestamp(10));
        c.advance_to(Timestamp(5));
        assert_eq!(c.now(), Timestamp(10));
        assert_eq!(c.tick(), Timestamp(11));
    }

    #[test]
    fn signed_projection() {
        assert_eq!(Timestamp(7).as_signed(), 7);
        assert_eq!(Timestamp::ZERO.as_signed(), 0);
    }

    #[test]
    fn display() {
        assert_eq!(Timestamp(3).to_string(), "t3");
    }
}
