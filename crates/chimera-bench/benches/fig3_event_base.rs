//! FIG3/FIG4 — the Event Base: reconstructs the paper's Fig. 3 table
//! (printed once for EXPERIMENTS.md) and measures the EB operations the
//! §5 implementation depends on: append, most-recent-stamp lookup
//! (Occurred-Events tree leaf), window slicing and per-object lookup.

use chimera_bench::{et, history};
use chimera_events::fig3::{fig3_event_base, render_fig3_table};
use chimera_events::{Timestamp, Window};
use chimera_model::Oid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn print_fig3_once() {
    let (schema, eb) = fig3_event_base();
    println!("\n=== Fig. 3 reconstruction ===");
    println!("{}", render_fig3_table(&schema, &eb));
}

fn bench_append(c: &mut Criterion) {
    print_fig3_once();
    let mut g = c.benchmark_group("eb_append");
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eb = chimera_events::EventBase::new();
                for i in 0..n {
                    eb.append(et((i % 8) as u32), Oid(1 + (i % 64) as u64));
                }
                black_box(eb.len())
            });
        });
    }
    g.finish();
}

fn bench_lookups(c: &mut Criterion) {
    let mut g = c.benchmark_group("eb_lookup");
    for &n in &[100usize, 1_000, 10_000, 100_000] {
        let eb = history(7, n, 8, 64);
        let w = Window::from_origin(eb.now());
        g.bench_with_input(BenchmarkId::new("last_of_type", n), &n, |b, _| {
            b.iter(|| black_box(eb.last_of_type_in(et(3), w)));
        });
        g.bench_with_input(BenchmarkId::new("last_of_type_obj", n), &n, |b, _| {
            b.iter(|| black_box(eb.last_of_type_obj_in(et(3), Oid(5), w)));
        });
        let half = Window::new(Timestamp((n / 2) as u64), eb.now());
        g.bench_with_input(BenchmarkId::new("slice_half_window", n), &n, |b, _| {
            b.iter(|| black_box(eb.slice(half).len()));
        });
        g.bench_with_input(BenchmarkId::new("objects_in_window", n), &n, |b, _| {
            b.iter(|| black_box(eb.objects_in(half).len()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_append, bench_lookups);
criterion_main!(benches);
