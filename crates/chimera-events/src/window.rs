//! Observation windows over the event base.
//!
//! The calculus is always applied to "the set `R` of event occurrences to
//! which it applies" (§4.2). For rule triggering, `R` is the half-open
//! interval `(last_consumption, now]`; for a *preserving* rule the lower
//! bound is the beginning of the transaction, for a *consuming* rule the
//! last consideration instant (§2, §3.3).

use crate::time::Timestamp;

/// Half-open time interval `(after, upto]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Window {
    /// Exclusive lower bound (events strictly newer than this are in `R`).
    pub after: Timestamp,
    /// Inclusive upper bound (usually "now").
    pub upto: Timestamp,
}

impl Window {
    /// `(after, upto]`.
    pub fn new(after: Timestamp, upto: Timestamp) -> Self {
        Window { after, upto }
    }

    /// Window covering the whole history up to `now` (preserving rules on a
    /// fresh transaction).
    pub fn from_origin(upto: Timestamp) -> Self {
        Window {
            after: Timestamp::ZERO,
            upto,
        }
    }

    /// Does the window contain `t`?
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t > self.after && t <= self.upto
    }

    /// Empty iff no stamp can fall inside.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.upto <= self.after
    }

    /// Restrict the upper bound to `t` (used when evaluating `ts(E, t)` for
    /// a `t` earlier than the window end, e.g. inside the precedence
    /// operator).
    pub fn clip_upto(&self, t: Timestamp) -> Window {
        Window {
            after: self.after,
            upto: self.upto.min(t),
        }
    }

    /// Is this window a pure upper-bound extension of `prior` — same lower
    /// bound, upper bound no earlier? This is the shape under which state
    /// incrementally built over `prior` can be *advanced* by absorbing
    /// only the occurrences in `(prior.upto, self.upto]`, instead of being
    /// rebuilt (see `chimera-calculus`'s arrival-incremental plan scratch).
    #[inline]
    pub fn extends(&self, prior: Window) -> bool {
        self.after == prior.after && self.upto >= prior.upto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containment_is_half_open() {
        let w = Window::new(Timestamp(2), Timestamp(5));
        assert!(!w.contains(Timestamp(2)));
        assert!(w.contains(Timestamp(3)));
        assert!(w.contains(Timestamp(5)));
        assert!(!w.contains(Timestamp(6)));
    }

    #[test]
    fn degenerate_windows() {
        assert!(Window::new(Timestamp(5), Timestamp(5)).is_degenerate());
        assert!(Window::new(Timestamp(6), Timestamp(5)).is_degenerate());
        assert!(!Window::new(Timestamp(4), Timestamp(5)).is_degenerate());
    }

    #[test]
    fn clipping() {
        let w = Window::new(Timestamp(2), Timestamp(9));
        assert_eq!(w.clip_upto(Timestamp(5)).upto, Timestamp(5));
        assert_eq!(w.clip_upto(Timestamp(12)).upto, Timestamp(9));
        assert_eq!(w.clip_upto(Timestamp(5)).after, Timestamp(2));
    }

    #[test]
    fn extension_detection() {
        let prior = Window::new(Timestamp(2), Timestamp(5));
        assert!(Window::new(Timestamp(2), Timestamp(9)).extends(prior));
        assert!(Window::new(Timestamp(2), Timestamp(5)).extends(prior));
        // moved lower bound or shrunken upper bound: not an extension
        assert!(!Window::new(Timestamp(3), Timestamp(9)).extends(prior));
        assert!(!Window::new(Timestamp(2), Timestamp(4)).extends(prior));
    }

    #[test]
    fn from_origin_covers_everything() {
        let w = Window::from_origin(Timestamp(4));
        assert!(w.contains(Timestamp(1)));
        assert!(w.contains(Timestamp(4)));
        assert!(!w.contains(Timestamp(5)));
    }
}
