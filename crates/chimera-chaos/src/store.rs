//! [`ChaosStore`]: a [`StateStore`] wrapper driven by a [`FaultPlan`].
//!
//! Faults surface as `PersistError::Io` with kinds the runtime's
//! transient/permanent classifier distinguishes: `Interrupted` for
//! retryable injections, `Other` for permanent ones. The torn-commit
//! injection performs the wrapped commit *before* reporting failure —
//! the ambiguous-outcome case real fsync errors leave behind — which is
//! safe to retry because committing with nothing staged is a no-op.
//!
//! `recover()` is deliberately not intercepted: recovery faults are the
//! crash oracle's domain (`tests/durable_recovery.rs` corrupts real
//! files); this wrapper targets the steady-state write path.

use crate::plan::{FaultPlan, StorageFault, StoreOp};
use chimera_persist::{
    JobRecord, PersistError, Result, ShardRecovery, StateStore, StoreCounters, TenantSnapshot,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared observation surface: how many faults a [`ChaosStore`] actually
/// injected, per class. Tests hold a clone of the `Arc` and assert the
/// run exercised what the plan scheduled.
#[derive(Debug, Default)]
pub struct ChaosCounters {
    transient: AtomicU64,
    permanent: AtomicU64,
    torn: AtomicU64,
}

impl ChaosCounters {
    /// Transient faults injected so far.
    pub fn transient(&self) -> u64 {
        self.transient.load(Ordering::Relaxed)
    }
    /// Permanent faults injected so far (every post-breakage call counts).
    pub fn permanent(&self) -> u64 {
        self.permanent.load(Ordering::Relaxed)
    }
    /// Torn/ambiguous commits injected so far.
    pub fn torn(&self) -> u64 {
        self.torn.load(Ordering::Relaxed)
    }
    /// Total injections of any class.
    pub fn total(&self) -> u64 {
        self.transient() + self.permanent() + self.torn()
    }
}

/// A fault-injecting [`StateStore`] wrapper (see module docs).
pub struct ChaosStore {
    inner: Box<dyn StateStore>,
    plan: FaultPlan,
    counters: Arc<ChaosCounters>,
}

impl ChaosStore {
    /// Wrap `inner`, injecting faults according to `plan`.
    pub fn new(inner: Box<dyn StateStore>, plan: FaultPlan) -> ChaosStore {
        ChaosStore::with_counters(inner, plan, Arc::new(ChaosCounters::default()))
    }

    /// Like [`ChaosStore::new`], reporting injections into a shared
    /// counter block the caller keeps a handle to.
    pub fn with_counters(
        inner: Box<dyn StateStore>,
        plan: FaultPlan,
        counters: Arc<ChaosCounters>,
    ) -> ChaosStore {
        ChaosStore {
            inner,
            plan,
            counters,
        }
    }

    /// The injection counters (same block handed to `with_counters`).
    pub fn counters_handle(&self) -> Arc<ChaosCounters> {
        Arc::clone(&self.counters)
    }

    /// Consult the plan for `op`; `Err` carries the injected failure.
    /// For [`StorageFault::Torn`] the caller must run the real operation
    /// first — hence the closure-free two-step shape in `commit`. Torn
    /// never reaches here: it is commit-only, enforced by
    /// [`FaultPlan::fail_nth`] and [`ChaosRates`]'s shape.
    fn inject(&mut self, op: StoreOp, what: &str) -> std::result::Result<(), PersistError> {
        match self.plan.next(op) {
            None => Ok(()),
            Some(StorageFault::Transient) => {
                self.counters.transient.fetch_add(1, Ordering::Relaxed);
                Err(transient(what))
            }
            Some(StorageFault::Permanent) => {
                self.counters.permanent.fetch_add(1, Ordering::Relaxed);
                Err(permanent(what))
            }
            Some(StorageFault::Torn) => {
                unreachable!("FaultPlan never schedules Torn for {op:?}")
            }
        }
    }
}

fn transient(what: &str) -> PersistError {
    PersistError::Io(std::io::Error::new(
        std::io::ErrorKind::Interrupted,
        format!("chaos: injected transient {what} fault"),
    ))
}

fn permanent(what: &str) -> PersistError {
    PersistError::Io(std::io::Error::other(format!(
        "chaos: injected permanent {what} fault"
    )))
}

impl StateStore for ChaosStore {
    fn recover(&mut self) -> Result<ShardRecovery> {
        self.inner.recover()
    }

    fn append(&mut self, tenant: u64, record: &JobRecord) -> Result<()> {
        self.inject(StoreOp::Append, "append")?;
        self.inner.append(tenant, record)
    }

    fn commit(&mut self) -> Result<()> {
        match self.plan.next(StoreOp::Commit) {
            None => self.inner.commit(),
            Some(StorageFault::Transient) => {
                self.counters.transient.fetch_add(1, Ordering::Relaxed);
                Err(transient("commit"))
            }
            Some(StorageFault::Permanent) => {
                self.counters.permanent.fetch_add(1, Ordering::Relaxed);
                Err(permanent("commit"))
            }
            Some(StorageFault::Torn) => {
                // the ambiguous commit: data lands, the caller hears failure
                self.inner.commit()?;
                self.counters.torn.fetch_add(1, Ordering::Relaxed);
                Err(transient("commit (torn: data is durable)"))
            }
        }
    }

    fn snapshot(&mut self, tenants: &[TenantSnapshot]) -> Result<()> {
        self.inject(StoreOp::Snapshot, "snapshot")?;
        self.inner.snapshot(tenants)
    }

    fn evict_tenant(&mut self, snap: &TenantSnapshot) -> Result<()> {
        self.inject(StoreOp::Evict, "evict")?;
        self.inner.evict_tenant(snap)
    }

    fn groups_since_snapshot(&self) -> u64 {
        self.inner.groups_since_snapshot()
    }

    fn is_durable(&self) -> bool {
        self.inner.is_durable()
    }

    fn counters(&self) -> StoreCounters {
        self.inner.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_persist::{DurableStore, SyncPolicy};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "chimera-chaos-store-{name}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable(dir: &std::path::Path) -> Box<dyn StateStore> {
        Box::new(DurableStore::open(dir, SyncPolicy::GroupCommit).unwrap())
    }

    #[test]
    fn transient_commit_fails_once_then_retry_lands_the_group() {
        let dir = tmpdir("transient");
        let plan = FaultPlan::none().fail_nth(StoreOp::Commit, 0, StorageFault::Transient);
        let mut s = ChaosStore::new(durable(&dir), plan);
        let counters = s.counters_handle();
        s.recover().unwrap();
        s.append(1, &JobRecord::Begin).unwrap();
        let err = s.commit().unwrap_err();
        assert!(err.is_transient(), "injected kind must classify transient");
        s.commit().unwrap(); // the guaranteed retry
        assert_eq!(counters.transient(), 1);
        drop(s);
        // the group is on disk
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert_eq!(rec.tail.len(), 1);
        assert_eq!(rec.tail[0].jobs, vec![(1, JobRecord::Begin)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_commit_reports_failure_but_data_is_durable() {
        let dir = tmpdir("torn");
        let plan = FaultPlan::none().fail_nth(StoreOp::Commit, 0, StorageFault::Torn);
        let mut s = ChaosStore::new(durable(&dir), plan);
        let counters = s.counters_handle();
        s.recover().unwrap();
        s.append(7, &JobRecord::Commit).unwrap();
        let err = s.commit().unwrap_err();
        assert!(err.is_transient());
        assert_eq!(counters.torn(), 1);
        drop(s);
        let mut s = DurableStore::open(&dir, SyncPolicy::GroupCommit).unwrap();
        let rec = s.recover().unwrap();
        assert_eq!(rec.tail.len(), 1, "the 'failed' commit actually landed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_evict_fails_without_touching_disk_then_retry_lands() {
        let dir = tmpdir("evict");
        let plan = FaultPlan::none().fail_nth(StoreOp::Evict, 0, StorageFault::Transient);
        let mut s = ChaosStore::new(durable(&dir), plan);
        let counters = s.counters_handle();
        s.recover().unwrap();
        s.append(3, &JobRecord::Begin).unwrap();
        s.commit().unwrap();
        let snap = TenantSnapshot {
            tenant: 3,
            jobs_applied: 1,
            job_errors: 0,
            last_error: None,
            objects: vec![],
            next_oid: 0,
            events: vec![],
            trigger_sources: vec![],
            rules: vec![],
            stats: [0; 6],
        };
        let err = s.evict_tenant(&snap).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(counters.transient(), 1);
        assert!(!dir.join("tenant-3.tsnap").exists(), "refused before I/O");
        s.evict_tenant(&snap).unwrap(); // the plan's forced-ok follow-up
        assert!(dir.join("tenant-3.tsnap").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn permanent_fault_breaks_every_subsequent_op() {
        let dir = tmpdir("permanent");
        let plan = FaultPlan::none().fail_nth(StoreOp::Commit, 0, StorageFault::Permanent);
        let mut s = ChaosStore::new(durable(&dir), plan);
        s.recover().unwrap();
        s.append(1, &JobRecord::Begin).unwrap();
        let err = s.commit().unwrap_err();
        assert!(!err.is_transient(), "permanent kind must not classify transient");
        assert!(s.commit().is_err());
        assert!(s.append(1, &JobRecord::Begin).is_err());
        assert!(s.snapshot(&[]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
