//! One shard: a bounded ingestion queue, a worker thread, and the
//! engines of the tenants hashed onto it.

use crate::runtime::{Job, JobId, JobOutcome, JobReply, JobSummary, TenantId};
use chimera_exec::{Engine, EngineConfig};
use chimera_model::Schema;
use chimera_rules::{SharedProbePool, TriggerDef};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// One queued job, addressed to a tenant of this shard. `reply`, when
/// present, is the job's completion slot: the worker sends exactly one
/// [`JobReply`] after retiring the job (never blocking — the slot is a
/// capacity-1 channel and a vanished receiver is ignored).
pub(crate) struct Envelope {
    pub tenant: TenantId,
    pub job: Job,
    pub reply: Option<(JobId, SyncSender<JobReply>)>,
}

/// Queue accounting used by the flush barrier: `submitted` counts jobs
/// accepted into the queue, `processed` jobs the worker has retired.
/// `submitted` is bumped *before* the send (and rolled back on shed /
/// disconnect), so a flush racing a submit can only over-wait, never
/// return early.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    pub submitted: u64,
    pub processed: u64,
}

/// One tenant's engine plus its error bookkeeping.
pub(crate) struct TenantSlot {
    pub engine: Engine,
    pub job_errors: u64,
    pub last_error: Option<String>,
}

/// State shared between a shard's worker thread and the runtime handle.
pub(crate) struct ShardState {
    /// Tenant engines, keyed by raw tenant id. The worker holds this lock
    /// only while processing one job, so inspection (`with_tenant`)
    /// interleaves cleanly between jobs.
    pub tenants: Mutex<HashMap<u64, TenantSlot>>,
    pub progress: Mutex<Progress>,
    /// Signalled after every retired job; the flush barrier waits on it.
    pub drained: Condvar,
    pub shed: AtomicU64,
    pub blocked: AtomicU64,
    pub errors: AtomicU64,
    pub panics: AtomicU64,
}

/// A shard handle owned by the runtime: the queue's send side, the shared
/// state, and the worker's join handle (taken at shutdown).
pub(crate) struct Shard {
    pub tx: Option<SyncSender<Envelope>>,
    pub state: Arc<ShardState>,
    pub worker: Option<JoinHandle<()>>,
}

impl Shard {
    /// Spawn a shard: a `sync_channel(capacity)` queue plus one worker
    /// thread that owns the shard's tenant engines. Fresh tenants get an
    /// engine over `schema` with every definition of `triggers` installed
    /// (validated ahead of time by `Runtime::new`).
    pub fn spawn(
        index: usize,
        capacity: usize,
        schema: Schema,
        triggers: Arc<Vec<TriggerDef>>,
        engine_cfg: EngineConfig,
    ) -> Shard {
        let (tx, rx) = sync_channel(capacity);
        let state = Arc::new(ShardState {
            tenants: Mutex::new(HashMap::new()),
            progress: Mutex::new(Progress::default()),
            drained: Condvar::new(),
            shed: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
        });
        let worker_state = Arc::clone(&state);
        let worker = std::thread::Builder::new()
            .name(format!("chimera-shard-{index}"))
            .spawn(move || run_worker(rx, worker_state, schema, triggers, engine_cfg))
            .expect("spawn shard worker thread");
        Shard {
            tx: Some(tx),
            state,
            worker: Some(worker),
        }
    }
}

/// The worker loop: pop a job, run it on its tenant's engine (creating
/// the engine on the tenant's first job), retire it. Exits when every
/// sender is dropped (runtime shutdown). A panicking job poisons only its
/// own tenant: the engine is discarded and the shard keeps serving.
fn run_worker(
    rx: Receiver<Envelope>,
    state: Arc<ShardState>,
    schema: Schema,
    triggers: Arc<Vec<TriggerDef>>,
    engine_cfg: EngineConfig,
) {
    // one probe pool per shard: every tenant engine created here parks
    // the *same* `check_workers - 1` threads (spawned lazily on the
    // first parallel check round), instead of one set per tenant
    let probe_pool = SharedProbePool::default();
    while let Ok(env) = rx.recv() {
        if let Job::Gate { entered, release } = env.job {
            // test instrumentation: park *outside* the tenant lock so
            // stats/inspection stay reachable while the worker is gated
            entered.wait();
            release.wait();
            answer(env.reply, env.tenant, JobOutcome::Done(JobSummary::default()));
            retire(&state);
            continue;
        }
        let outcome;
        {
            let mut tenants = state
                .tenants
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let slot = tenants.entry(env.tenant.0).or_insert_with(|| TenantSlot {
                engine: fresh_engine(&schema, &triggers, &engine_cfg, &probe_pool),
                job_errors: 0,
                last_error: None,
            });
            let before = slot.engine.stats();
            let result =
                std::panic::catch_unwind(AssertUnwindSafe(|| apply(&mut slot.engine, env.job)));
            outcome = match result {
                Ok(Ok(())) => JobOutcome::Done(JobSummary::delta(before, slot.engine.stats())),
                Ok(Err(e)) => {
                    let msg = e.to_string();
                    slot.job_errors += 1;
                    slot.last_error = Some(msg.clone());
                    state.errors.fetch_add(1, Ordering::Relaxed);
                    JobOutcome::Error(msg)
                }
                Err(_) => {
                    // mid-job panic: the engine's invariants are suspect,
                    // drop the whole tenant rather than serve from it
                    tenants.remove(&env.tenant.0);
                    state.panics.fetch_add(1, Ordering::Relaxed);
                    JobOutcome::Panicked
                }
            };
        }
        answer(env.reply, env.tenant, outcome);
        retire(&state);
    }
}

/// Deliver a job's completion notification, if one was requested. The
/// slot has capacity 1 and receives exactly this send, so `try_send`
/// cannot find it full; a receiver that lost interest is ignored.
fn answer(reply: Option<(JobId, SyncSender<JobReply>)>, tenant: TenantId, outcome: JobOutcome) {
    if let Some((job, tx)) = reply {
        let _ = tx.try_send(JobReply {
            job,
            tenant,
            outcome,
        });
    }
}

/// Retire one job: bump the processed count and wake the flush barrier.
fn retire(state: &ShardState) {
    let mut p = state
        .progress
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    p.processed += 1;
    drop(p);
    state.drained.notify_all();
}

/// A fresh tenant engine with the runtime's trigger set installed and
/// the shard's shared probe pool wired in.
fn fresh_engine(
    schema: &Schema,
    triggers: &[TriggerDef],
    cfg: &EngineConfig,
    probe_pool: &SharedProbePool,
) -> Engine {
    let mut engine = Engine::with_config(schema.clone(), cfg.clone());
    engine.use_shared_probe_pool(probe_pool.clone());
    for def in triggers {
        engine
            .define_trigger(def.clone())
            .expect("runtime trigger set is validated at construction");
    }
    engine
}

/// Run one job against a tenant engine.
fn apply(engine: &mut Engine, job: Job) -> chimera_exec::Result<()> {
    match job {
        Job::Begin => engine.begin(),
        Job::ExecBlock(ops) => engine.exec_block(&ops).map(|_| ()),
        Job::RaiseExternal(events) => engine.raise_external(&events).map(|_| ()),
        Job::Commit => engine.commit(),
        Job::Rollback => engine.rollback(),
        Job::DefineTrigger(def) => engine.define_trigger(*def),
        Job::Gate { .. } => unreachable!("gates are handled by the worker loop, not a tenant"),
    }
}
