//! The recorder: per-worker-sharded counters, gauges and stage
//! histograms behind one cheap handle, with a zero-cost off mode.
//!
//! [`Telemetry`] is a clonable handle — `Some(Arc<Registry>)` when
//! recording, `None` when off. Every recording call starts with that
//! `Option` check, so [`Telemetry::off`] costs one branch per call
//! site and *nothing* else: no `Instant::now()`, no atomic, no
//! allocation ([`Telemetry::start`] returns `None`, so even the clock
//! read is skipped).
//!
//! The registry shards by worker: each worker thread records into its
//! own bank of atomics (one full set of stage histograms, counters and
//! a trace ring per shard), so the hot path's `fetch_add` lands on an
//! uncontended cache line. Reads ([`Telemetry::snapshot`]) merge the
//! shards — merge-on-read, the write side never synchronizes.

use crate::hist::{HistSnapshot, Histogram};
use crate::trace::{TraceEvent, TraceKind, TraceRing};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A timed pipeline stage, each with its own histogram. The `usize`
/// values index the per-shard histogram bank; the names are the wire
/// and text-exposition identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Admission → claim: how long a job sat staged in the pool.
    QueueWait = 0,
    /// Phase 1 of a durable batch: intent records appended to the WAL.
    Append = 1,
    /// One job's execution against its tenant engine.
    Execute = 2,
    /// Phase 3 of a durable batch: the group-commit fsync.
    Commit = 3,
    /// Delivering the batch's completion replies.
    Reply = 4,
    /// Server side: decoding one request frame.
    NetFrameDecode = 5,
    /// Server side: running one request's handler.
    NetHandler = 6,
    /// Server side: request read → response written, per connection.
    NetConnRtt = 7,
    /// Client side: one synchronous request's send → response latency.
    ClientRequest = 8,
    /// Rebuilding an evicted tenant's engine at claim time (snapshot
    /// restore; the cost a caller observes as cold-tenant latency).
    Rehydrate = 9,
}

/// Every stage, in index order.
pub const STAGES: [Stage; 10] = [
    Stage::QueueWait,
    Stage::Append,
    Stage::Execute,
    Stage::Commit,
    Stage::Reply,
    Stage::NetFrameDecode,
    Stage::NetHandler,
    Stage::NetConnRtt,
    Stage::ClientRequest,
    Stage::Rehydrate,
];

impl Stage {
    /// Stable snake_case name (wire + text exposition identity).
    pub fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::Append => "append",
            Stage::Execute => "execute",
            Stage::Commit => "commit",
            Stage::Reply => "reply",
            Stage::NetFrameDecode => "net_frame_decode",
            Stage::NetHandler => "net_handler",
            Stage::NetConnRtt => "net_conn_rtt",
            Stage::ClientRequest => "client_request",
            Stage::Rehydrate => "rehydrate",
        }
    }
}

/// A monotone counter series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Batches claimed by workers.
    Batches = 0,
    /// Store operations that took the transient-retry path.
    StoreRetries = 1,
    /// Job successes demoted to durability refusals.
    Demotions = 2,
    /// Home shards poisoned.
    Poisonings = 3,
    /// Connections the server accepted.
    ConnsAccepted = 4,
    /// Connections reaped at a deadline.
    ConnsReaped = 5,
    /// Connections ended by a transport error.
    ConnsCut = 6,
    /// Shard snapshots written.
    Snapshots = 7,
    /// Trace events lost to ring wrap before a drain reached them.
    TraceDropped = 8,
    /// Tenant engines evicted from RAM to the home shard's store.
    Evictions = 9,
    /// Evicted tenants rebuilt in RAM on their next claim.
    Rehydrations = 10,
}

/// Every counter, in index order.
pub const COUNTERS: [Counter; 11] = [
    Counter::Batches,
    Counter::StoreRetries,
    Counter::Demotions,
    Counter::Poisonings,
    Counter::ConnsAccepted,
    Counter::ConnsReaped,
    Counter::ConnsCut,
    Counter::Snapshots,
    Counter::TraceDropped,
    Counter::Evictions,
    Counter::Rehydrations,
];

impl Counter {
    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Batches => "batches_claimed",
            Counter::StoreRetries => "store_retries",
            Counter::Demotions => "jobs_demoted",
            Counter::Poisonings => "homes_poisoned",
            Counter::ConnsAccepted => "conns_accepted",
            Counter::ConnsReaped => "conns_reaped",
            Counter::ConnsCut => "conns_cut",
            Counter::Snapshots => "snapshots_taken",
            Counter::TraceDropped => "trace_events_dropped",
            Counter::Evictions => "tenants_evicted",
            Counter::Rehydrations => "tenants_rehydrated",
        }
    }
}

/// An instantaneous (up/down) gauge series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Connections currently open on the server.
    ConnsActive = 0,
    /// Tenant engines currently resident in RAM (up on create or
    /// rehydrate, down on evict).
    TenantsResident = 1,
}

/// Every gauge, in index order.
pub const GAUGES: [Gauge; 2] = [Gauge::ConnsActive, Gauge::TenantsResident];

impl Gauge {
    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ConnsActive => "conns_active",
            Gauge::TenantsResident => "tenants_resident",
        }
    }
}

/// One worker's private bank of series.
struct Shard {
    hists: Vec<Histogram>,
    counters: Vec<AtomicU64>,
    ring: TraceRing,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            hists: (0..STAGES.len()).map(|_| Histogram::new()).collect(),
            counters: (0..COUNTERS.len()).map(|_| AtomicU64::new(0)).collect(),
            ring: TraceRing::new(),
        }
    }
}

/// The shared recorder state behind an enabled [`Telemetry`] handle.
struct Registry {
    shards: Vec<Shard>,
    /// Gauges are registry-global (they go up *and* down, so per-shard
    /// banks would need signed merging for no benefit).
    gauges: Vec<AtomicI64>,
    /// Global trace sequence — total order across every shard's ring.
    trace_seq: AtomicU64,
    /// Drops accounted by previous drains (folded into the counter).
    trace_dropped: AtomicU64,
    /// The recorder's time zero for trace timestamps.
    epoch: Instant,
}

/// The telemetry handle: clone freely, record from any thread.
///
/// `worker` arguments pick the recording shard; pass the worker/thread
/// index you have (it is reduced modulo the shard count, so any stable
/// small integer — a connection id, say — also works).
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Registry>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(r) => write!(f, "Telemetry(on, {} shards)", r.shards.len()),
            None => f.write_str("Telemetry(off)"),
        }
    }
}

impl Telemetry {
    /// An enabled recorder with `shards` per-worker banks (clamped ≥ 1).
    pub fn new(shards: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Registry {
                shards: (0..shards.max(1)).map(|_| Shard::new()).collect(),
                gauges: (0..GAUGES.len()).map(|_| AtomicI64::new(0)).collect(),
                trace_seq: AtomicU64::new(0),
                trace_dropped: AtomicU64::new(0),
                epoch: Instant::now(),
            })),
        }
    }

    /// The zero-cost off mode: every recording call is one `None`
    /// check; [`Telemetry::start`] skips even the clock read.
    pub fn off() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Is this handle recording?
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A stage-timing start mark: `Some(now)` when recording, `None`
    /// when off — so an off-mode caller never touches the clock. Pair
    /// with [`Telemetry::record_since`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Record the elapsed time since a [`Telemetry::start`] mark into
    /// `stage`'s histogram. No-op when off or when `start` is `None`.
    #[inline]
    pub fn record_since(&self, worker: usize, stage: Stage, start: Option<Instant>) {
        if let (Some(reg), Some(t0)) = (&self.inner, start) {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            reg.shards[worker % reg.shards.len()].hists[stage as usize].record(ns);
        }
    }

    /// Record an already-measured nanosecond sample into `stage`.
    #[inline]
    pub fn record_ns(&self, worker: usize, stage: Stage, ns: u64) {
        if let Some(reg) = &self.inner {
            reg.shards[worker % reg.shards.len()].hists[stage as usize].record(ns);
        }
    }

    /// Bump a monotone counter by `n`.
    #[inline]
    pub fn count(&self, worker: usize, counter: Counter, n: u64) {
        if let Some(reg) = &self.inner {
            reg.shards[worker % reg.shards.len()].counters[counter as usize]
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Move a gauge by `delta` (positive or negative).
    #[inline]
    pub fn gauge_add(&self, gauge: Gauge, delta: i64) {
        if let Some(reg) = &self.inner {
            reg.gauges[gauge as usize].fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Record one trace event into `worker`'s ring (timestamped and
    /// sequenced here). No-op when off.
    pub fn trace(&self, worker: usize, kind: TraceKind, a: u64, b: u64) {
        if let Some(reg) = &self.inner {
            let ev = TraceEvent {
                seq: reg.trace_seq.fetch_add(1, Ordering::Relaxed),
                at_ns: reg.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                kind,
                a,
                b,
            };
            reg.shards[worker % reg.shards.len()].ring.push(ev);
        }
    }

    /// Drain every undelivered trace event, oldest first (ascending
    /// global sequence), merging the per-shard rings. Consuming: each
    /// event is delivered to at most one caller. Ring-wrap losses are
    /// folded into the `trace_events_dropped` counter.
    pub fn recent(&self) -> Vec<TraceEvent> {
        let Some(reg) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &reg.shards {
            let (events, dropped) = shard.ring.drain();
            out.extend(events);
            reg.trace_dropped.fetch_add(dropped, Ordering::Relaxed);
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// A full registry snapshot: every counter and gauge, every stage
    /// histogram (buckets included, merged over the shards), plus the
    /// undelivered trace tail (drained — see [`Telemetry::recent`]).
    /// An off-mode handle reports `enabled: false` and empty series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(reg) = &self.inner else {
            return MetricsSnapshot::disabled();
        };
        let traces = self.recent();
        let mut counters: Vec<(String, u64)> = COUNTERS
            .iter()
            .map(|&c| {
                let total: u64 = reg
                    .shards
                    .iter()
                    .map(|s| s.counters[c as usize].load(Ordering::Relaxed))
                    .sum();
                (c.name().to_string(), total)
            })
            .collect();
        // fold drain-accounted ring losses into the dropped counter
        counters[Counter::TraceDropped as usize].1 +=
            reg.trace_dropped.load(Ordering::Relaxed);
        let gauges = GAUGES
            .iter()
            .map(|&g| {
                (
                    g.name().to_string(),
                    reg.gauges[g as usize].load(Ordering::Relaxed),
                )
            })
            .collect();
        let hists = STAGES
            .iter()
            .map(|&stage| {
                let mut snap = HistSnapshot::empty(stage.name());
                for shard in &reg.shards {
                    shard.hists[stage as usize].merge_into(&mut snap);
                }
                snap
            })
            .collect();
        MetricsSnapshot {
            enabled: true,
            counters,
            gauges,
            hists,
            traces,
        }
    }
}

/// A point-in-time copy of the whole registry — the payload the wire's
/// `MetricsSnapshot` request returns, and the input to
/// [`MetricsSnapshot::render_text`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Whether the runtime was recording (`false` ⇒ every series empty).
    pub enabled: bool,
    /// Monotone counters, by stable name.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges, by stable name.
    pub gauges: Vec<(String, i64)>,
    /// One merged histogram per stage, buckets included.
    pub hists: Vec<HistSnapshot>,
    /// The drained trace tail, oldest first.
    pub traces: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// The off-mode snapshot.
    pub fn disabled() -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Look up a stage histogram by name (e.g. `"queue_wait"`).
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a gauge by name (e.g. `"tenants_resident"`).
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Prometheus-style text exposition: counters and gauges as plain
    /// series, each histogram as cumulative `_bucket{le="…"}` series
    /// (non-empty buckets only, plus the closing `+Inf`) with `_count`,
    /// and derived `_p50`/`_p99`/`_max` gauges for humans. All series
    /// are prefixed `chimera_`; histogram samples are nanoseconds.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# chimera telemetry snapshot (enabled={})",
            self.enabled
        );
        for (name, v) in &self.counters {
            let _ = writeln!(out, "# TYPE chimera_{name} counter");
            let _ = writeln!(out, "chimera_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "# TYPE chimera_{name} gauge");
            let _ = writeln!(out, "chimera_{name} {v}");
        }
        for h in &self.hists {
            let name = &h.name;
            let _ = writeln!(out, "# TYPE chimera_stage_{name}_ns histogram");
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                cum += b;
                let _ = writeln!(
                    out,
                    "chimera_stage_{name}_ns_bucket{{le=\"{}\"}} {cum}",
                    crate::hist::bucket_ceil(i)
                );
            }
            let _ = writeln!(out, "chimera_stage_{name}_ns_bucket{{le=\"+Inf\"}} {cum}");
            let _ = writeln!(out, "chimera_stage_{name}_ns_count {}", h.count());
            let _ = writeln!(out, "chimera_stage_{name}_ns_p50 {}", h.p50());
            let _ = writeln!(out, "chimera_stage_{name}_ns_p99 {}", h.p99());
            let _ = writeln!(out, "chimera_stage_{name}_ns_max {}", h.max());
        }
        if !self.traces.is_empty() {
            let _ = writeln!(out, "# recent trace events (oldest first)");
            for ev in &self.traces {
                let _ = writeln!(
                    out,
                    "# trace seq={} at_ns={} kind={} a={} b={}",
                    ev.seq,
                    ev.at_ns,
                    ev.kind.name(),
                    ev.a,
                    ev.b
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_mode_records_nothing_and_snapshots_empty() {
        let tel = Telemetry::off();
        assert!(!tel.is_enabled());
        assert_eq!(tel.start(), None);
        tel.record_ns(0, Stage::Execute, 100);
        tel.count(0, Counter::Batches, 1);
        tel.gauge_add(Gauge::ConnsActive, 1);
        tel.trace(0, TraceKind::JobClaimed, 1, 2);
        let snap = tel.snapshot();
        assert!(!snap.enabled);
        assert!(snap.counters.is_empty() && snap.hists.is_empty() && snap.traces.is_empty());
        assert!(tel.recent().is_empty());
    }

    #[test]
    fn shards_merge_on_read() {
        let tel = Telemetry::new(4);
        for worker in 0..4 {
            tel.record_ns(worker, Stage::Execute, 1000);
            tel.count(worker, Counter::Batches, 2);
        }
        tel.gauge_add(Gauge::ConnsActive, 3);
        tel.gauge_add(Gauge::ConnsActive, -1);
        let snap = tel.snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.hist("execute").unwrap().count(), 4);
        assert_eq!(snap.counter("batches_claimed"), Some(8));
        assert_eq!(snap.gauges[0], ("conns_active".to_string(), 2));
    }

    #[test]
    fn traces_merge_in_global_order_and_drain_once() {
        let tel = Telemetry::new(3);
        for i in 0..9u64 {
            tel.trace((i % 3) as usize, TraceKind::JobClaimed, i, 0);
        }
        let events = tel.recent();
        assert_eq!(events.len(), 9);
        // global sequence order, regardless of which shard recorded it
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events.iter().map(|e| e.a).collect::<Vec<_>>(),
                   (0..9).collect::<Vec<_>>());
        assert!(tel.recent().is_empty(), "drain is consuming");
    }

    #[test]
    fn render_text_exposes_series() {
        let tel = Telemetry::new(1);
        tel.record_ns(0, Stage::Commit, 5000);
        tel.count(0, Counter::Snapshots, 1);
        tel.trace(0, TraceKind::SnapshotTaken, 0, 4);
        let text = tel.snapshot().render_text();
        assert!(text.contains("chimera_snapshots_taken 1"));
        assert!(text.contains("chimera_stage_commit_ns_count 1"));
        assert!(text.contains("chimera_stage_commit_ns_bucket{le=\"8191\"} 1"));
        assert!(text.contains("kind=snapshot_taken"));
    }
}
