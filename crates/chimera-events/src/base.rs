//! The Event Base: append-only occurrence log plus the §5 indexes.
//!
//! * the **log** itself, ordered by (strictly increasing) timestamp;
//! * the **Occurred Events tree** of §5: for every event type, the list of
//!   its occurrences, whose last element is the most recent stamp — this
//!   answers `ts(primitive, t)` with one hash lookup + binary search;
//! * a **per-(type, object) index** supporting `ots(primitive, t, oid)`
//!   (the paper keeps an equivalent sparse per-rule structure; indexing the
//!   EB once is strictly more general and lets every rule share it);
//! * a **per-object index** used to enumerate the objects affected inside
//!   a window (the `oid ∈ R` quantification of §4.3).

use crate::event::{EventId, EventOccurrence, EventType};
use crate::time::{LogicalClock, Timestamp};
use crate::window::Window;
use chimera_model::Oid;
use std::collections::HashMap;

/// The event base (EB).
#[derive(Debug, Default)]
pub struct EventBase {
    log: Vec<EventOccurrence>,
    clock: LogicalClock,
    /// Occurred-Events tree leaves: per-type positions into `log`.
    type_index: HashMap<EventType, Vec<u32>>,
    /// Instance-oriented leaves: per-(type, object) positions into `log`.
    type_obj_index: HashMap<(EventType, Oid), Vec<u32>>,
    /// Per-object positions into `log`.
    obj_index: HashMap<Oid, Vec<u32>>,
}

impl EventBase {
    /// Empty event base with a fresh clock.
    pub fn new() -> Self {
        EventBase::default()
    }

    /// Number of occurrences in the log.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }

    /// Current logical time (stamp of the most recent occurrence).
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Advance the clock without recording an occurrence (models the
    /// passage of time between blocks; negation can become active by pure
    /// absence, which is observed at such instants).
    pub fn tick(&mut self) -> Timestamp {
        self.clock.tick()
    }

    /// Record an occurrence at the next clock instant.
    pub fn append(&mut self, ty: EventType, oid: Oid) -> EventOccurrence {
        let ts = self.clock.tick();
        self.push(ty, oid, ts)
    }

    /// Record an occurrence at an explicit instant (scripted histories).
    ///
    /// Panics if `ts` is not strictly after the current clock value —
    /// the EB's semantics require strictly increasing stamps.
    pub fn append_at(&mut self, ty: EventType, oid: Oid, ts: Timestamp) -> EventOccurrence {
        assert!(
            ts > self.clock.now(),
            "event stamps must be strictly increasing: {} !> {}",
            ts,
            self.clock.now()
        );
        self.clock.advance_to(ts);
        self.push(ty, oid, ts)
    }

    fn push(&mut self, ty: EventType, oid: Oid, ts: Timestamp) -> EventOccurrence {
        let pos = self.log.len() as u32;
        let occ = EventOccurrence {
            eid: EventId(pos as u64 + 1),
            ty,
            oid,
            ts,
        };
        self.log.push(occ);
        self.type_index.entry(ty).or_default().push(pos);
        self.type_obj_index.entry((ty, oid)).or_default().push(pos);
        self.obj_index.entry(oid).or_default().push(pos);
        occ
    }

    /// Fetch by EID.
    pub fn get(&self, eid: EventId) -> Option<&EventOccurrence> {
        if eid.0 == 0 {
            return None;
        }
        self.log.get(eid.0 as usize - 1)
    }

    /// Iterate the whole log in timestamp order.
    pub fn iter(&self) -> impl Iterator<Item = &EventOccurrence> {
        self.log.iter()
    }

    /// The log slice falling inside `w`, in timestamp order. Degenerate
    /// windows (`upto <= after`) yield an empty slice.
    pub fn slice(&self, w: Window) -> &[EventOccurrence] {
        if w.is_degenerate() {
            return &[];
        }
        let lo = self.log.partition_point(|e| e.ts <= w.after);
        let hi = self.log.partition_point(|e| e.ts <= w.upto);
        &self.log[lo..hi]
    }

    /// Is the window non-empty (`R ≠ ∅` of the triggering predicate §4.4)?
    pub fn any_in(&self, w: Window) -> bool {
        !self.slice(w).is_empty()
    }

    /// Number of occurrences inside `w`.
    pub fn count_in(&self, w: Window) -> usize {
        self.slice(w).len()
    }

    /// Positions (into the log) of `ty` occurrences, restricted to `w`.
    fn positions_in<'a>(&'a self, index: Option<&'a Vec<u32>>, w: Window) -> &'a [u32] {
        let Some(v) = index else { return &[] };
        if w.is_degenerate() {
            return &[];
        }
        let lo = v.partition_point(|&p| self.log[p as usize].ts <= w.after);
        let hi = v.partition_point(|&p| self.log[p as usize].ts <= w.upto);
        &v[lo..hi]
    }

    /// Stamp of the most recent occurrence of `ty` inside `w`
    /// (the §4.2 `t_E` lookup). `None` means no occurrence in `w`.
    pub fn last_of_type_in(&self, ty: EventType, w: Window) -> Option<Timestamp> {
        self.positions_in(self.type_index.get(&ty), w)
            .last()
            .map(|&p| self.log[p as usize].ts)
    }

    /// Stamp of the *first* occurrence of `ty` inside `w`.
    pub fn first_of_type_in(&self, ty: EventType, w: Window) -> Option<Timestamp> {
        self.positions_in(self.type_index.get(&ty), w)
            .first()
            .map(|&p| self.log[p as usize].ts)
    }

    /// All occurrences of `ty` inside `w`, in timestamp order.
    pub fn occurrences_of_type_in(
        &self,
        ty: EventType,
        w: Window,
    ) -> impl Iterator<Item = &EventOccurrence> {
        self.positions_in(self.type_index.get(&ty), w)
            .iter()
            .map(|&p| &self.log[p as usize])
    }

    /// Stamp of the most recent occurrence of `ty` on `oid` inside `w`
    /// (the §4.3 per-object `t_E` lookup).
    pub fn last_of_type_obj_in(&self, ty: EventType, oid: Oid, w: Window) -> Option<Timestamp> {
        self.positions_in(self.type_obj_index.get(&(ty, oid)), w)
            .last()
            .map(|&p| self.log[p as usize].ts)
    }

    /// All occurrences of `ty` on `oid` inside `w`, in timestamp order.
    pub fn occurrences_of_type_obj_in(
        &self,
        ty: EventType,
        oid: Oid,
        w: Window,
    ) -> impl Iterator<Item = &EventOccurrence> {
        self.positions_in(self.type_obj_index.get(&(ty, oid)), w)
            .iter()
            .map(|&p| &self.log[p as usize])
    }

    /// Distinct objects affected by any occurrence inside `w`, sorted.
    pub fn objects_in(&self, w: Window) -> Vec<Oid> {
        let mut oids: Vec<Oid> = self.slice(w).iter().map(|e| e.oid).collect();
        oids.sort();
        oids.dedup();
        oids
    }

    /// Distinct objects affected inside `w` by occurrences of any of the
    /// given types, sorted. This is the `oid ∈ R` domain restricted to the
    /// primitives of one expression — the useful quantification domain for
    /// instance-oriented evaluation.
    pub fn objects_of_types_in(&self, types: &[EventType], w: Window) -> Vec<Oid> {
        let mut oids = Vec::new();
        for ty in types {
            for &p in self.positions_in(self.type_index.get(ty), w) {
                oids.push(self.log[p as usize].oid);
            }
        }
        oids.sort();
        oids.dedup();
        oids
    }

    /// All occurrences affecting `oid` inside `w`, in timestamp order.
    pub fn occurrences_of_obj_in(
        &self,
        oid: Oid,
        w: Window,
    ) -> impl Iterator<Item = &EventOccurrence> {
        self.positions_in(self.obj_index.get(&oid), w)
            .iter()
            .map(|&p| &self.log[p as usize])
    }

    /// Most recent stamp per type leaf (§5: "each leaf keeps the time stamp
    /// of the more recent occurrence of the associated event type").
    pub fn leaf_last_stamp(&self, ty: EventType) -> Option<Timestamp> {
        self.type_index
            .get(&ty)
            .and_then(|v| v.last())
            .map(|&p| self.log[p as usize].ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::ClassId;

    fn ty(c: u32) -> EventType {
        EventType::create(ClassId(c))
    }

    #[test]
    fn append_allocates_increasing_stamps_and_eids() {
        let mut eb = EventBase::new();
        let a = eb.append(ty(0), Oid(1));
        let b = eb.append(ty(0), Oid(2));
        assert_eq!(a.eid, EventId(1));
        assert_eq!(b.eid, EventId(2));
        assert!(a.ts < b.ts);
        assert_eq!(eb.now(), b.ts);
        assert_eq!(eb.get(a.eid), Some(&a));
        assert_eq!(eb.get(EventId(0)), None);
        assert_eq!(eb.get(EventId(99)), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn append_at_rejects_non_increasing() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(5));
        eb.append_at(ty(0), Oid(1), Timestamp(5));
    }

    #[test]
    fn window_slicing() {
        let mut eb = EventBase::new();
        for i in 1..=10u64 {
            eb.append_at(ty(0), Oid(i), Timestamp(i));
        }
        let w = Window::new(Timestamp(3), Timestamp(7));
        let s = eb.slice(w);
        assert_eq!(s.len(), 4);
        assert_eq!(s[0].ts, Timestamp(4));
        assert_eq!(s[3].ts, Timestamp(7));
        assert!(eb.any_in(w));
        assert_eq!(eb.count_in(w), 4);
        assert!(!eb.any_in(Window::new(Timestamp(10), Timestamp(20))));
    }

    #[test]
    fn type_index_last_and_first() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        eb.append_at(ty(1), Oid(1), Timestamp(2));
        eb.append_at(ty(0), Oid(2), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        assert_eq!(eb.last_of_type_in(ty(0), all), Some(Timestamp(3)));
        assert_eq!(eb.first_of_type_in(ty(0), all), Some(Timestamp(1)));
        assert_eq!(eb.last_of_type_in(ty(1), all), Some(Timestamp(2)));
        assert_eq!(eb.last_of_type_in(ty(9), all), None);
        // clipped window hides the later occurrence
        let clipped = Window::from_origin(Timestamp(2));
        assert_eq!(eb.last_of_type_in(ty(0), clipped), Some(Timestamp(1)));
        // consumed window hides the earlier occurrence
        let consumed = Window::new(Timestamp(1), Timestamp(10));
        assert_eq!(eb.first_of_type_in(ty(0), consumed), Some(Timestamp(3)));
    }

    #[test]
    fn type_obj_index() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        eb.append_at(ty(0), Oid(2), Timestamp(2));
        eb.append_at(ty(0), Oid(1), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        assert_eq!(
            eb.last_of_type_obj_in(ty(0), Oid(1), all),
            Some(Timestamp(3))
        );
        assert_eq!(
            eb.last_of_type_obj_in(ty(0), Oid(2), all),
            Some(Timestamp(2))
        );
        assert_eq!(eb.last_of_type_obj_in(ty(0), Oid(3), all), None);
        assert_eq!(eb.occurrences_of_type_obj_in(ty(0), Oid(1), all).count(), 2);
    }

    #[test]
    fn object_enumeration() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(3), Timestamp(1));
        eb.append_at(ty(1), Oid(1), Timestamp(2));
        eb.append_at(ty(0), Oid(3), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        assert_eq!(eb.objects_in(all), vec![Oid(1), Oid(3)]);
        assert_eq!(eb.objects_of_types_in(&[ty(0)], all), vec![Oid(3)]);
        assert_eq!(
            eb.objects_of_types_in(&[ty(0), ty(1)], all),
            vec![Oid(1), Oid(3)]
        );
        let later = Window::new(Timestamp(2), Timestamp(10));
        assert_eq!(eb.objects_in(later), vec![Oid(3)]);
    }

    #[test]
    fn per_object_iteration() {
        let mut eb = EventBase::new();
        eb.append_at(ty(0), Oid(1), Timestamp(1));
        eb.append_at(ty(1), Oid(1), Timestamp(2));
        eb.append_at(ty(0), Oid(2), Timestamp(3));
        let all = Window::from_origin(Timestamp(10));
        let objs: Vec<_> = eb.occurrences_of_obj_in(Oid(1), all).collect();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0].ts, Timestamp(1));
        assert_eq!(objs[1].ts, Timestamp(2));
    }

    #[test]
    fn leaf_last_stamp_tracks_most_recent() {
        let mut eb = EventBase::new();
        assert_eq!(eb.leaf_last_stamp(ty(0)), None);
        eb.append_at(ty(0), Oid(1), Timestamp(4));
        eb.append_at(ty(0), Oid(2), Timestamp(9));
        assert_eq!(eb.leaf_last_stamp(ty(0)), Some(Timestamp(9)));
    }

    #[test]
    fn tick_advances_time_without_events() {
        let mut eb = EventBase::new();
        eb.append(ty(0), Oid(1));
        let before = eb.len();
        let t = eb.tick();
        assert_eq!(eb.len(), before);
        assert_eq!(eb.now(), t);
    }
}
