//! Build-surface smoke test.
//!
//! The seed of this repo shipped without any Cargo manifests, so nothing —
//! not even the crate roots — was ever compile-checked. This test pins the
//! build surface: it imports every public root re-export of every crate the
//! `chimera` facade wires in (so a future manifest or re-export regression
//! fails *this* test by name instead of breaking a random downstream
//! target), then runs one tiny end-to-end flow through the facade prelude.

#![allow(unused_imports)]

// chimera-model
use chimera::model::{
    AttrDef, AttrId, AttrType, ClassDef, ClassId, ModelError, Mutation, MutationKind, Object,
    ObjectStore, Oid, Schema, SchemaBuilder, TxnStatus, Value,
};

// chimera-events
use chimera::events::{
    fig3_event_base, EventBase, EventId, EventKind, EventOccurrence, EventType, LogicalClock,
    Timestamp, Window,
};

// chimera-calculus
use chimera::calculus::{
    at_occurrences, nnf, occurred_objects, ots_algebraic, ots_logical, simplify, ts_algebraic,
    ts_logical, CalculusError, EventExpr, IncrementalTs, Law, OperatorInfo, RelevanceFilter, Scope,
    Sign, TsVal, Variation, VariationSet, FIG1_OPERATORS, LAWS,
};

// chimera-rules
use chimera::rules::{
    is_triggered, probe_instants, ActionStmt, CmpOp, Condition, ConsumptionMode, CouplingMode,
    Formula, RuleState, RuleTable, Term, TriggerDef, TriggerSupport, VarDecl,
};

// chimera-lang
use chimera::lang::{
    lex, parse_event_expr, parse_program, print_class, print_event_expr, print_trigger, AttrSpec,
    ClassDecl, Item, ParseError, Parser, Program, ScriptStmt, Span, Token, TokenKind, TriggerDecl,
};

// chimera-exec
use chimera::exec::{
    evaluate_condition, net_created, net_deleted, net_modified, Binding, Engine, EngineConfig,
    EngineStats, ExecError, Op,
};

// chimera-runtime
use chimera::runtime::{
    Backpressure, Job, JobId, JobOutcome, JobReply, JobSummary, Runtime, RuntimeConfig,
    RuntimeError, RuntimeStats, TenantId,
};

// chimera-net
use chimera::net::{
    read_frame, write_frame, Client, ExternalEvent, JobDone, NetError, Request, Response, Server,
    ServerConfig, TenantQuery, TenantReply, WireError, WireJob, WireOp, WireOutcome, WireStats,
    MAX_FRAME, PIPELINE_WINDOW, PROTOCOL_VERSION,
};

// chimera-baselines
use chimera::baselines::{naive_ts, GraphDetector, NaiveTriggerChecker, SnoopRecentDetector};

// chimera-workload
use chimera::workload::{
    stock_schema, stock_triggers, ExprGenConfig, RandomExprGen, StockWorkload,
    StockWorkloadConfig, StreamConfig, StreamGen, Trace, TraceOp,
};

// chimera-analysis
use chimera::analysis::{
    action_effects, analyze, confluence_warnings, AnalysisReport, ConfluenceWarning,
    TerminationVerdict, TriggerSensitivity, TriggeringGraph, WriteSet,
};

// chimera-temporal
use chimera::temporal::{
    all_of, any_of, aperiodic, seq, star, ClockDriver, ClockScheduler, ClockSpec, TimesDetector,
};

// chimera-persist
use chimera::persist::{DurableEngine, RecoveryReport, RedoBatch, RedoRecord, Wal};

// facade-local interpreter module
use chimera::interp::{InterpError, Interpreter};

#[test]
fn prelude_covers_the_working_set() {
    // A minimal end-to-end touch of the facade: build a schema, run a
    // block through the engine, and observe the event base via the
    // calculus — one call into each layer the prelude exposes.
    use chimera::prelude::*;

    let mut builder = SchemaBuilder::new();
    builder
        .class(
            "stock",
            None,
            vec![AttrDef::new("quantity", AttrType::Integer)],
        )
        .unwrap();
    let schema = builder.build();

    let mut engine = Engine::new(schema);
    let stock = engine.schema().class_by_name("stock").unwrap();
    let quantity = engine.schema().attr_by_name(stock, "quantity").unwrap();
    engine.begin().unwrap();
    let occs = engine
        .exec_block(&[Op::Create {
            class: stock,
            inits: vec![(quantity, Value::Int(5))],
        }])
        .unwrap();
    engine.commit().unwrap();
    assert_eq!(occs.len(), 1, "create must be logged in the event base");

    // ...and the same block through the sharded multi-tenant runtime
    let mut builder = SchemaBuilder::new();
    builder
        .class(
            "stock",
            None,
            vec![AttrDef::new("quantity", AttrType::Integer)],
        )
        .unwrap();
    let rt = Runtime::new(builder.build(), vec![], RuntimeConfig::default()).unwrap();
    rt.submit(TenantId(1), Job::Begin).unwrap();
    rt.exec_block(
        TenantId(1),
        vec![Op::Create {
            class: stock,
            inits: vec![],
        }],
    )
    .unwrap();
    rt.commit(TenantId(1)).unwrap();
    rt.flush().unwrap();
    let stats: RuntimeStats = rt.stats();
    assert_eq!(stats.engine.commits, 1);
}

#[test]
fn loopback_server_smoke() {
    // The same tiny flow, through the TCP front-end: a server on an
    // ephemeral loopback port, one client, per-job completion replies
    // (no flush), and a tenant query back over the wire.
    use chimera::prelude::*;

    let mut builder = SchemaBuilder::new();
    builder
        .class(
            "stock",
            None,
            vec![AttrDef::new("quantity", AttrType::Integer)],
        )
        .unwrap();
    let rt = std::sync::Arc::new(
        Runtime::new(builder.build(), vec![], RuntimeConfig::default()).unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", rt, ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.begin(1).unwrap();
    client
        .exec_block(1, vec![WireOp::Create { class: 0, inits: vec![] }])
        .unwrap();
    client.commit(1).unwrap();
    let done = client.drain().unwrap();
    assert_eq!(done.len(), 3);
    assert!(done.iter().all(|d| d.outcome.is_done()));
    match client
        .tenant_query(1, TenantQuery::Extent { class: 0 })
        .unwrap()
    {
        chimera::net::TenantReply::Extent(oids) => assert_eq!(oids.len(), 1),
        other => panic!("expected Extent, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn interpreter_quickstart_surface_is_callable() {
    // The same program as the `chimera::interp` doc-test quickstart; kept
    // here as a plain test so the surface stays exercised even when
    // doc-tests are filtered out (e.g. `cargo test --tests`).
    let mut chim = Interpreter::from_source(
        r#"
define class stock
  attributes quantity: integer,
             max_quantity: integer default 100
end

define immediate trigger checkStockQty for stock
  events create , modify(quantity)
  condition stock(S), occurred(create ,= modify(quantity), S),
            S.quantity > S.max_quantity
  actions modify(S.quantity, S.max_quantity)
end

begin;
let s1 = create stock(quantity: 250);
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let s1 = chim.var("s1").unwrap();
    assert_eq!(
        chim.engine().read_attr(s1, "quantity").unwrap(),
        Value::Int(100)
    );
}
