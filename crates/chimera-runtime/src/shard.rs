//! One shard: a bounded ingestion queue, a worker thread, the engines of
//! the tenants hashed onto it — and, since the durable-tenants refactor,
//! a per-shard [`StateStore`] the worker threads every job through.
//!
//! The worker's loop is *batched*: it blocks for one envelope, then
//! drains whatever else is already queued (up to the queue capacity) and
//! processes the whole batch before answering anyone. Under a durable
//! store each job's intent is appended to the shard's job log *before*
//! execution, and the batch shares **one** fsync ([`StateStore::commit`])
//! at the end — the group commit that amortizes the ~ms sync across
//! every job that was sitting in the bounded queue. Replies are only
//! delivered after that commit, so an acknowledged job is always durable.

use crate::runtime::{Job, JobId, JobOutcome, JobReply, JobSummary, TenantId};
use chimera_exec::{Engine, EngineConfig, EngineStats};
use chimera_model::{ObjectStore, Schema};
use chimera_persist::{JobRecord, RuleStampRec, StateStore, TenantSnapshot};
use chimera_rules::{SharedProbePool, TriggerDef};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// One queued job, addressed to a tenant of this shard. `reply`, when
/// present, is the job's completion slot: the worker sends exactly one
/// [`JobReply`] after retiring the job (never blocking — the slot is a
/// capacity-1 channel and a vanished receiver is ignored).
pub(crate) struct Envelope {
    pub tenant: TenantId,
    pub job: Job,
    pub reply: Option<(JobId, SyncSender<JobReply>)>,
}

/// Queue accounting used by the flush barrier: `submitted` counts jobs
/// accepted into the queue, `processed` jobs the worker has retired.
/// `submitted` is bumped *before* the send (and rolled back on shed /
/// disconnect), so a flush racing a submit can only over-wait, never
/// return early.
#[derive(Debug, Default)]
pub(crate) struct Progress {
    pub submitted: u64,
    pub processed: u64,
}

/// One tenant's engine plus its bookkeeping.
pub(crate) struct TenantSlot {
    pub engine: Engine,
    pub job_errors: u64,
    pub last_error: Option<String>,
    /// Jobs durably logged *and* applied to this tenant (snapshot
    /// `jobs_applied` + logged-tail position). The recovery oracle uses
    /// this to know exactly how many of a tenant's jobs survived a crash.
    pub jobs_applied: u64,
    /// Tenant-local trigger definitions, as source text, in definition
    /// order — re-applied verbatim when the tenant is rebuilt from a
    /// snapshot.
    pub trigger_sources: Vec<String>,
}

/// State shared between a shard's worker thread and the runtime handle.
pub(crate) struct ShardState {
    /// Tenant engines, keyed by raw tenant id. The worker holds this lock
    /// only while processing one job, so inspection (`with_tenant`)
    /// interleaves cleanly between jobs.
    pub tenants: Mutex<HashMap<u64, TenantSlot>>,
    pub progress: Mutex<Progress>,
    /// Signalled after every retired batch; the flush barrier waits on it.
    pub drained: Condvar,
    pub shed: AtomicU64,
    pub blocked: AtomicU64,
    pub errors: AtomicU64,
    pub panics: AtomicU64,
    /// Published store counters (set, not accumulated, from
    /// [`StateStore::counters`] after every batch).
    pub wal_appends: AtomicU64,
    pub wal_syncs: AtomicU64,
    pub snapshots: AtomicU64,
    /// Set once, after startup recovery.
    pub recovered_tenants: AtomicU64,
    pub replayed_jobs: AtomicU64,
}

/// What a shard's startup recovery found (reported synchronously through
/// the readiness channel before the worker starts serving).
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardRecoveryStats {
    pub tenants_recovered: u64,
    pub jobs_replayed: u64,
    pub torn: Option<String>,
}

/// A shard handle owned by the runtime: the queue's send side, the shared
/// state, and the worker's join handle (taken at shutdown).
pub(crate) struct Shard {
    pub tx: Option<SyncSender<Envelope>>,
    pub state: Arc<ShardState>,
    pub worker: Option<JoinHandle<()>>,
}

impl Shard {
    /// Spawn a shard: a `sync_channel(capacity)` queue plus one worker
    /// thread that owns the shard's tenant engines and its store. The
    /// worker first runs recovery against `store` (rebuilding tenants
    /// from its snapshot + job-log tail); this call blocks until that
    /// finishes and returns what it found, or the store's error.
    pub fn spawn(
        index: usize,
        capacity: usize,
        schema: Schema,
        triggers: Arc<Vec<TriggerDef>>,
        engine_cfg: EngineConfig,
        store: Box<dyn StateStore>,
        snapshot_every: u64,
    ) -> Result<(Shard, ShardRecoveryStats), String> {
        let (tx, rx) = sync_channel(capacity);
        let state = Arc::new(ShardState {
            tenants: Mutex::new(HashMap::new()),
            progress: Mutex::new(Progress::default()),
            drained: Condvar::new(),
            shed: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            wal_appends: AtomicU64::new(0),
            wal_syncs: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            recovered_tenants: AtomicU64::new(0),
            replayed_jobs: AtomicU64::new(0),
        });
        let (ready_tx, ready_rx) = sync_channel::<Result<ShardRecoveryStats, String>>(1);
        let worker_state = Arc::clone(&state);
        let worker = std::thread::Builder::new()
            .name(format!("chimera-shard-{index}"))
            .spawn(move || {
                run_worker(
                    rx,
                    worker_state,
                    schema,
                    triggers,
                    engine_cfg,
                    store,
                    capacity,
                    snapshot_every,
                    ready_tx,
                )
            })
            .expect("spawn shard worker thread");
        let shard = Shard {
            tx: Some(tx),
            state,
            worker: Some(worker),
        };
        match ready_rx.recv() {
            Ok(Ok(stats)) => Ok((shard, stats)),
            Ok(Err(msg)) => Err(msg),
            Err(_) => Err("shard worker died during recovery".into()),
        }
    }
}

/// One processed envelope, parked until the batch's group commit before
/// its reply goes out.
struct Pending {
    reply: Option<(JobId, SyncSender<JobReply>)>,
    tenant: TenantId,
    outcome: JobOutcome,
    /// Was this job staged into the store (and must therefore be demoted
    /// if the batch's commit fails)?
    logged: bool,
}

/// The worker loop: block for one envelope, drain the rest of the queue
/// into a batch, run every job, group-commit the store once, answer
/// everyone, retire the batch. Exits when every sender is dropped
/// (runtime shutdown). A panicking job poisons only its own tenant; a
/// *store* failure poisons the whole shard's durability and every
/// subsequent job is refused rather than executed without it.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    rx: Receiver<Envelope>,
    state: Arc<ShardState>,
    schema: Schema,
    triggers: Arc<Vec<TriggerDef>>,
    engine_cfg: EngineConfig,
    mut store: Box<dyn StateStore>,
    capacity: usize,
    snapshot_every: u64,
    ready_tx: SyncSender<Result<ShardRecoveryStats, String>>,
) {
    // one probe pool per shard: every tenant engine created here parks
    // the *same* `check_workers - 1` threads (spawned lazily on the
    // first parallel check round), instead of one set per tenant
    let probe_pool = SharedProbePool::default();
    let ctx = WorkerCtx {
        schema,
        triggers,
        engine_cfg,
        probe_pool,
    };

    match recover(&mut *store, &state, &ctx) {
        Ok(stats) => {
            state
                .recovered_tenants
                .store(stats.tenants_recovered, Ordering::Relaxed);
            state
                .replayed_jobs
                .store(stats.jobs_replayed, Ordering::Relaxed);
            publish_counters(&state, &*store);
            let _ = ready_tx.send(Ok(stats));
        }
        Err(msg) => {
            let _ = ready_tx.send(Err(msg));
            return;
        }
    }

    let durable = store.is_durable();
    // a failed append/commit poisons the store: jobs keep being answered
    // (with this error) but nothing executes without durability
    let mut poisoned: Option<String> = None;

    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < capacity {
            match rx.try_recv() {
                Ok(env) => batch.push(env),
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
        let mut pending = Vec::with_capacity(batch.len());
        for env in batch {
            if let Job::Gate { entered, release } = env.job {
                // test instrumentation: park *outside* the tenant lock so
                // stats/inspection stay reachable while the worker is gated
                entered.wait();
                release.wait();
                pending.push(Pending {
                    reply: env.reply,
                    tenant: env.tenant,
                    outcome: JobOutcome::Done(JobSummary::default()),
                    logged: false,
                });
                continue;
            }
            let outcome;
            let mut logged = false;
            if let Some(msg) = &poisoned {
                outcome = refuse(&state, env.tenant.0, msg.clone(), &ctx);
            } else if durable && matches!(env.job, Job::DefineTrigger(_)) {
                // lowered definitions have no logged form; durable tenants
                // must define triggers from source so replay can re-parse
                outcome = refuse(
                    &state,
                    env.tenant.0,
                    "durable storage requires DefineTriggerSource (trigger source text), \
                     not a pre-lowered DefineTrigger"
                        .into(),
                    &ctx,
                );
            } else {
                if durable {
                    if let Some(record) = job_record(&env.job) {
                        if let Err(e) = store.append(env.tenant.0, &record) {
                            poisoned = Some(format!("shard store failed: {e}"));
                        } else {
                            logged = true;
                        }
                    }
                }
                outcome = if let Some(msg) = &poisoned {
                    refuse(&state, env.tenant.0, msg.clone(), &ctx)
                } else {
                    let mut tenants = state
                        .tenants
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner);
                    run_job(&mut tenants, &state, &ctx, env.tenant.0, env.job, durable)
                };
            }
            pending.push(Pending {
                reply: env.reply,
                tenant: env.tenant,
                outcome,
                logged,
            });
        }

        // the group commit: one fsync for every job logged above
        if durable && poisoned.is_none() {
            if let Err(e) = store.commit() {
                let msg = format!("shard store failed: {e}");
                // nothing in this batch is durable — demote its successes
                for p in &mut pending {
                    if p.logged && p.outcome.is_done() {
                        p.outcome = JobOutcome::Error(msg.clone());
                        state.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                poisoned = Some(msg);
            }
        }
        publish_counters(&state, &*store);

        let retired = pending.len() as u64;
        for p in pending {
            answer(p.reply, p.tenant, p.outcome);
        }
        retire_n(&state, retired);

        if durable && poisoned.is_none() && snapshot_every > 0 {
            maybe_snapshot(&mut *store, &state, snapshot_every, &mut poisoned);
        }
    }
}

/// Everything a worker needs to build (or rebuild) a tenant engine.
struct WorkerCtx {
    schema: Schema,
    triggers: Arc<Vec<TriggerDef>>,
    engine_cfg: EngineConfig,
    probe_pool: SharedProbePool,
}

/// Record a store-refusal against the tenant's bookkeeping (the slot is
/// created if this is the tenant's first job, mirroring engine errors).
fn refuse(state: &ShardState, tenant: u64, msg: String, ctx: &WorkerCtx) -> JobOutcome {
    let mut tenants = state
        .tenants
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let slot = tenants
        .entry(tenant)
        .or_insert_with(|| fresh_slot(ctx));
    slot.job_errors += 1;
    slot.last_error = Some(msg.clone());
    state.errors.fetch_add(1, Ordering::Relaxed);
    JobOutcome::Error(msg)
}

/// Run one (non-gate) job against its tenant engine, with the tenant
/// lock already held. Shared verbatim between live processing and
/// startup replay, so a replayed job reproduces exactly the live
/// bookkeeping — errors, panics and `jobs_applied` included.
fn run_job(
    tenants: &mut HashMap<u64, TenantSlot>,
    state: &ShardState,
    ctx: &WorkerCtx,
    tenant: u64,
    job: Job,
    counted: bool,
) -> JobOutcome {
    let slot = tenants.entry(tenant).or_insert_with(|| fresh_slot(ctx));
    if counted && job_record(&job).is_some() {
        slot.jobs_applied += 1;
    }
    let before = slot.engine.stats();
    let schema = &ctx.schema;
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| apply(slot, schema, job)));
    match result {
        Ok(Ok(())) => JobOutcome::Done(JobSummary::delta(before, slot.engine.stats())),
        Ok(Err(msg)) => {
            slot.job_errors += 1;
            slot.last_error = Some(msg.clone());
            state.errors.fetch_add(1, Ordering::Relaxed);
            JobOutcome::Error(msg)
        }
        Err(_) => {
            // mid-job panic: the engine's invariants are suspect,
            // drop the whole tenant rather than serve from it
            tenants.remove(&tenant);
            state.panics.fetch_add(1, Ordering::Relaxed);
            JobOutcome::Panicked
        }
    }
}

/// Deliver a job's completion notification, if one was requested. The
/// slot has capacity 1 and receives exactly this send, so `try_send`
/// cannot find it full; a receiver that lost interest is ignored.
fn answer(reply: Option<(JobId, SyncSender<JobReply>)>, tenant: TenantId, outcome: JobOutcome) {
    if let Some((job, tx)) = reply {
        let _ = tx.try_send(JobReply {
            job,
            tenant,
            outcome,
        });
    }
}

/// Retire a whole batch: bump the processed count once and wake the
/// flush barrier.
fn retire_n(state: &ShardState, n: u64) {
    let mut p = state
        .progress
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    p.processed += n;
    drop(p);
    state.drained.notify_all();
}

/// A fresh tenant slot: an engine with the runtime's trigger set
/// installed and the shard's shared probe pool wired in.
fn fresh_slot(ctx: &WorkerCtx) -> TenantSlot {
    let mut engine = Engine::with_config(ctx.schema.clone(), ctx.engine_cfg.clone());
    engine.use_shared_probe_pool(ctx.probe_pool.clone());
    for def in ctx.triggers.iter() {
        engine
            .define_trigger(def.clone())
            .expect("runtime trigger set is validated at construction");
    }
    TenantSlot {
        engine,
        job_errors: 0,
        last_error: None,
        jobs_applied: 0,
        trigger_sources: Vec::new(),
    }
}

/// Run one job against a tenant slot. Engine errors come back as their
/// display string (the runtime's error currency); trigger-source jobs
/// parse, lower and define atomically — on any failure the definitions
/// already made by *this job* are dropped again.
fn apply(slot: &mut TenantSlot, schema: &Schema, job: Job) -> Result<(), String> {
    match job {
        Job::Begin => slot.engine.begin().map_err(|e| e.to_string()),
        Job::ExecBlock(ops) => slot
            .engine
            .exec_block(&ops)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Job::RaiseExternal(events) => slot
            .engine
            .raise_external(&events)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Job::Commit => slot.engine.commit().map_err(|e| e.to_string()),
        Job::Rollback => slot.engine.rollback().map_err(|e| e.to_string()),
        Job::DefineTrigger(def) => slot.engine.define_trigger(*def).map_err(|e| e.to_string()),
        Job::DefineTriggerSource(src) => {
            apply_trigger_source(&mut slot.engine, schema, &src)?;
            slot.trigger_sources.push(src);
            Ok(())
        }
        Job::Gate { .. } => unreachable!("gates are handled by the worker loop, not a tenant"),
    }
}

/// Parse and define a trigger-source job: all of its declarations or
/// none (a partial failure drops the ones this job already defined).
fn apply_trigger_source(engine: &mut Engine, schema: &Schema, src: &str) -> Result<(), String> {
    let decls = chimera_lang::parse_trigger_decls(src, schema).map_err(|e| e.to_string())?;
    let mut defined: Vec<String> = Vec::with_capacity(decls.len());
    for decl in &decls {
        let result = decl
            .lower(schema)
            .map_err(|e| e.to_string())
            .and_then(|def| {
                let name = def.name.clone();
                engine
                    .define_trigger(def)
                    .map(|()| name)
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok(name) => defined.push(name),
            Err(msg) => {
                for name in defined.iter().rev() {
                    let _ = engine.drop_trigger(name);
                }
                return Err(msg);
            }
        }
    }
    Ok(())
}

/// The durable form of a job, or `None` for jobs that are never logged
/// (gates; pre-lowered `DefineTrigger`, which durable shards refuse).
fn job_record(job: &Job) -> Option<JobRecord> {
    match job {
        Job::Begin => Some(JobRecord::Begin),
        Job::ExecBlock(ops) => Some(JobRecord::ExecBlock(ops.clone())),
        Job::RaiseExternal(events) => Some(JobRecord::RaiseExternal(events.clone())),
        Job::Commit => Some(JobRecord::Commit),
        Job::Rollback => Some(JobRecord::Rollback),
        Job::DefineTriggerSource(src) => Some(JobRecord::DefineTriggerSource(src.clone())),
        Job::DefineTrigger(_) | Job::Gate { .. } => None,
    }
}

fn job_from_record(rec: JobRecord) -> Job {
    match rec {
        JobRecord::Begin => Job::Begin,
        JobRecord::ExecBlock(ops) => Job::ExecBlock(ops),
        JobRecord::RaiseExternal(events) => Job::RaiseExternal(events),
        JobRecord::Commit => Job::Commit,
        JobRecord::Rollback => Job::Rollback,
        JobRecord::DefineTriggerSource(src) => Job::DefineTriggerSource(src),
    }
}

/// Publish the store's counters into the shared atomics (monotone totals,
/// so a plain store is correct).
fn publish_counters(state: &ShardState, store: &dyn StateStore) {
    let c = store.counters();
    state.wal_appends.store(c.appends, Ordering::Relaxed);
    state.wal_syncs.store(c.syncs, Ordering::Relaxed);
    state.snapshots.store(c.snapshots, Ordering::Relaxed);
}

/// Startup recovery: read the store back, rebuild every snapshotted
/// tenant bit-identically, then replay the job-log tail through the
/// exact live processing path (errors and panics included).
fn recover(
    store: &mut dyn StateStore,
    state: &ShardState,
    ctx: &WorkerCtx,
) -> Result<ShardRecoveryStats, String> {
    let rec = store.recover().map_err(|e| e.to_string())?;
    let mut stats = ShardRecoveryStats {
        torn: rec.torn,
        ..ShardRecoveryStats::default()
    };
    let mut tenants = state
        .tenants
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if let Some(snap) = rec.snapshot {
        for ts in &snap.tenants {
            let slot = restore_tenant(ts, ctx)?;
            tenants.insert(ts.tenant, slot);
            stats.tenants_recovered += 1;
        }
    }
    // restored error bookkeeping feeds the shard's aggregate counter so
    // stats stay consistent across a restart
    let restored_errors: u64 = tenants.values().map(|s| s.job_errors).sum();
    state.errors.store(restored_errors, Ordering::Relaxed);
    for group in rec.tail {
        for (tenant, record) in group.jobs {
            let job = job_from_record(record);
            run_job(&mut tenants, state, ctx, tenant, job, true);
            stats.jobs_replayed += 1;
        }
    }
    Ok(stats)
}

/// Rebuild one tenant from its snapshot: restored store → fresh engine →
/// runtime triggers → tenant trigger sources → event log → rule stamps →
/// engine stats. Order matters: definitions stamp rule state with the
/// *current* instant, so the recorded stamps are overlaid last.
fn restore_tenant(ts: &TenantSnapshot, ctx: &WorkerCtx) -> Result<TenantSlot, String> {
    let objects = ts.objects.clone();
    let os = ObjectStore::restore(objects, ts.next_oid)
        .map_err(|e| format!("tenant {}: {e}", ts.tenant))?;
    let mut engine =
        Engine::with_restored_store(ctx.schema.clone(), os, ctx.engine_cfg.clone());
    engine.use_shared_probe_pool(ctx.probe_pool.clone());
    for def in ctx.triggers.iter() {
        engine
            .define_trigger(def.clone())
            .expect("runtime trigger set is validated at construction");
    }
    for src in &ts.trigger_sources {
        apply_trigger_source(&mut engine, &ctx.schema, src)
            .map_err(|e| format!("tenant {}: snapshotted trigger source failed: {e}", ts.tenant))?;
    }
    engine.restore_event_log(&ts.events);
    for r in &ts.rules {
        engine
            .restore_rule_state(
                &r.name,
                r.triggered,
                chimera_events::Timestamp(r.last_consideration),
                chimera_events::Timestamp(r.last_consumption),
                chimera_events::Timestamp(r.checked_upto),
                r.witness,
            )
            .map_err(|e| format!("tenant {}: rule `{}`: {e}", ts.tenant, r.name))?;
    }
    engine.restore_stats(EngineStats {
        blocks: ts.stats[0],
        events: ts.stats[1],
        considerations: ts.stats[2],
        executions: ts.stats[3],
        commits: ts.stats[4],
        rollbacks: ts.stats[5],
    });
    Ok(TenantSlot {
        engine,
        job_errors: ts.job_errors,
        last_error: ts.last_error.clone(),
        jobs_applied: ts.jobs_applied,
        trigger_sources: ts.trigger_sources.clone(),
    })
}

/// Capture one tenant's full state for the shard snapshot.
fn snapshot_tenant(tenant: u64, slot: &TenantSlot) -> TenantSnapshot {
    let engine = &slot.engine;
    let store = engine.store();
    let stats = engine.stats();
    TenantSnapshot {
        tenant,
        jobs_applied: slot.jobs_applied,
        job_errors: slot.job_errors,
        last_error: slot.last_error.clone(),
        objects: store.snapshot_objects().into_iter().cloned().collect(),
        next_oid: store.next_oid_counter(),
        events: engine.event_base().iter().map(|o| (o.ty, o.oid)).collect(),
        trigger_sources: slot.trigger_sources.clone(),
        rules: engine
            .rules()
            .iter()
            .map(|(def, rs)| RuleStampRec {
                name: def.name.clone(),
                triggered: rs.triggered,
                last_consideration: rs.last_consideration.0,
                last_consumption: rs.last_consumption.0,
                checked_upto: rs.checked_upto.0,
                witness: rs.witness,
            })
            .collect(),
        stats: [
            stats.blocks,
            stats.events,
            stats.considerations,
            stats.executions,
            stats.commits,
            stats.rollbacks,
        ],
    }
}

/// Periodic compaction: when enough groups have accumulated since the
/// last snapshot *and* no tenant is mid-transaction (the object store
/// snapshot only reflects committed state — an open transaction is
/// recovered by replaying the log instead), write a shard snapshot and
/// truncate the job log.
fn maybe_snapshot(
    store: &mut dyn StateStore,
    state: &ShardState,
    snapshot_every: u64,
    poisoned: &mut Option<String>,
) {
    if store.groups_since_snapshot() < snapshot_every {
        return;
    }
    let tenants = state
        .tenants
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if tenants.values().any(|s| s.engine.in_transaction()) {
        return; // not a safe point; try again after a later batch
    }
    let mut snaps: Vec<TenantSnapshot> = tenants
        .iter()
        .map(|(&tenant, slot)| snapshot_tenant(tenant, slot))
        .collect();
    drop(tenants);
    snaps.sort_by_key(|t| t.tenant);
    if let Err(e) = store.snapshot(&snaps) {
        *poisoned = Some(format!("shard store failed: {e}"));
    }
    publish_counters(state, store);
}
