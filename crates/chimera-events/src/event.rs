//! Event types and event occurrences.
//!
//! Chimera's internal event types are the data-manipulation operations:
//! `create`, `delete`, `modify(attr)`, `generalize`, `specialize`,
//! `select`, each relative to a class (§2: "the name of the command that
//! changed the object state, possibly followed by the object class name and
//! an attribute name"). An `External` kind is provided as the natural
//! extension point (HiPAC-style external events) but is not required by the
//! paper's semantics.

use crate::time::Timestamp;
use chimera_model::{AttrId, ClassId, Oid, Schema};
use std::fmt;

/// Unique identifier of an event occurrence (the paper's *EID*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u64);

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The operation component of an event type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// Object creation.
    Create,
    /// Object deletion.
    Delete,
    /// Modification of one attribute.
    Modify(AttrId),
    /// Migration to a superclass.
    Generalize,
    /// Migration to a subclass.
    Specialize,
    /// Query retrieval.
    Select,
    /// External/application event channel (extension point).
    External(u32),
}

impl EventKind {
    /// Command name (without class/attribute qualification).
    pub fn command_name(&self) -> &'static str {
        match self {
            EventKind::Create => "create",
            EventKind::Delete => "delete",
            EventKind::Modify(_) => "modify",
            EventKind::Generalize => "generalize",
            EventKind::Specialize => "specialize",
            EventKind::Select => "select",
            EventKind::External(_) => "external",
        }
    }
}

/// An event *type*: operation + target class (+ attribute for `modify`).
///
/// Examples from the paper: `create(stock)`, `modify(stock.quantity)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventType {
    /// Class the event is defined on.
    pub class: ClassId,
    /// Operation kind.
    pub kind: EventKind,
}

impl EventType {
    /// `create(class)`.
    pub fn create(class: ClassId) -> Self {
        EventType {
            class,
            kind: EventKind::Create,
        }
    }
    /// `delete(class)`.
    pub fn delete(class: ClassId) -> Self {
        EventType {
            class,
            kind: EventKind::Delete,
        }
    }
    /// `modify(class.attr)`.
    pub fn modify(class: ClassId, attr: AttrId) -> Self {
        EventType {
            class,
            kind: EventKind::Modify(attr),
        }
    }
    /// `generalize(class)`.
    pub fn generalize(class: ClassId) -> Self {
        EventType {
            class,
            kind: EventKind::Generalize,
        }
    }
    /// `specialize(class)`.
    pub fn specialize(class: ClassId) -> Self {
        EventType {
            class,
            kind: EventKind::Specialize,
        }
    }
    /// `select(class)`.
    pub fn select(class: ClassId) -> Self {
        EventType {
            class,
            kind: EventKind::Select,
        }
    }
    /// `external(class, channel)`.
    pub fn external(class: ClassId, channel: u32) -> Self {
        EventType {
            class,
            kind: EventKind::External(channel),
        }
    }

    /// Human-readable rendering against a schema, e.g.
    /// `modify(stock.quantity)`.
    pub fn render(&self, schema: &Schema) -> String {
        let class = schema.class_name(self.class);
        match self.kind {
            EventKind::Modify(attr) => {
                format!("modify({class}.{})", schema.attr_name(self.class, attr))
            }
            EventKind::External(ch) => format!("external({class}#{ch})"),
            k => format!("{}({class})", k.command_name()),
        }
    }
}

/// One row of the Event Base (Fig. 3): `(EID, event-type, OID, timestamp)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventOccurrence {
    /// Unique occurrence id.
    pub eid: EventId,
    /// Event type.
    pub ty: EventType,
    /// Affected object (the paper's `obj(e)`).
    pub oid: Oid,
    /// Occurrence instant (the paper's `timestamp(e)`).
    pub ts: Timestamp,
}

impl EventOccurrence {
    /// Fig. 4 `type(e)` function.
    #[inline]
    pub fn event_type(&self) -> EventType {
        self.ty
    }
    /// Fig. 4 `obj(e)` function.
    #[inline]
    pub fn obj(&self) -> Oid {
        self.oid
    }
    /// Fig. 4 `timestamp(e)` function.
    #[inline]
    pub fn timestamp(&self) -> Timestamp {
        self.ts
    }
    /// Fig. 4 `event_on_class(e)` function: the class to which the object
    /// affected by the occurrence belongs (part of the event type).
    #[inline]
    pub fn event_on_class(&self) -> ClassId {
        self.ty.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::{AttrDef, AttrType, SchemaBuilder};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![AttrDef::new("quantity", AttrType::Integer)],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn constructors_set_kind() {
        let c = ClassId(0);
        assert_eq!(EventType::create(c).kind, EventKind::Create);
        assert_eq!(EventType::delete(c).kind, EventKind::Delete);
        assert_eq!(
            EventType::modify(c, AttrId(1)).kind,
            EventKind::Modify(AttrId(1))
        );
        assert_eq!(EventType::generalize(c).kind, EventKind::Generalize);
        assert_eq!(EventType::specialize(c).kind, EventKind::Specialize);
        assert_eq!(EventType::select(c).kind, EventKind::Select);
        assert_eq!(EventType::external(c, 3).kind, EventKind::External(3));
    }

    #[test]
    fn render_against_schema() {
        let s = schema();
        let stock = s.class_by_name("stock").unwrap();
        let q = s.attr_by_name(stock, "quantity").unwrap();
        assert_eq!(EventType::create(stock).render(&s), "create(stock)");
        assert_eq!(
            EventType::modify(stock, q).render(&s),
            "modify(stock.quantity)"
        );
        assert_eq!(EventType::external(stock, 1).render(&s), "external(stock#1)");
    }

    #[test]
    fn fig4_accessors() {
        let e = EventOccurrence {
            eid: EventId(5),
            ty: EventType::modify(ClassId(0), AttrId(0)),
            oid: Oid(1),
            ts: Timestamp(5),
        };
        assert_eq!(e.event_type(), e.ty);
        assert_eq!(e.obj(), Oid(1));
        assert_eq!(e.timestamp(), Timestamp(5));
        assert_eq!(e.event_on_class(), ClassId(0));
    }

    #[test]
    fn event_id_display() {
        assert_eq!(EventId(4).to_string(), "e4");
    }
}
