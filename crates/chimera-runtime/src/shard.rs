//! Shard workers and the shared tenant fabric they operate on.
//!
//! Since the load-aware scheduling refactor a "shard" is two separate
//! things that used to be fused:
//!
//! - a **home shard** ([`Home`]): the durable half — one [`StateStore`]
//!   per home, plus its WAL/snapshot counters. A tenant's home is the
//!   stable SplitMix64 placement ([`home_of`]), so the on-disk layout
//!   (`shard-<i>/` directories) and every recovery semantic are
//!   unchanged from the hash-pinned design.
//! - a **worker**: one of `shards` identical threads running the claim
//!   loop. Workers pull *ready tenants* from the admission pool
//!   ([`crate::pool::Pool`]) — their own home's deque first, any other
//!   home's under [`crate::runtime::Scheduler::LoadAware`] (a *steal*) —
//!   and run the claimed tenant's next batch to completion.
//!
//! Tenant engines live in a shared registry ([`Tenants`]) behind
//! per-tenant locks. Exclusion is structural: the pool hands a tenant to
//! at most one worker at a time, so per-tenant serial order needs no
//! worker-affinity — any worker may run the batch.
//!
//! A claimed batch is processed in three phases. Under a durable store:
//! **append** every job's intent record to the tenant's *home* store
//! (one store-lock hold), **execute** the jobs against the tenant
//! engine, then **commit** — the batch shares one fsync (group commit)
//! and replies only go out after it, so an acknowledged job is always
//! durable. Batches from different tenants homed on the same store
//! interleave safely: the store lock serializes appends and commits, and
//! an in-flight count keeps snapshot/truncation away from records whose
//! batch has not committed yet.

use crate::pool::Pool;
use crate::runtime::{Job, JobId, JobOutcome, JobReply, JobSummary, TenantId};
use chimera_exec::{Engine, EngineConfig, EngineStats};
use chimera_lifecycle::{LifecycleConfig, ResidencyLru};
use chimera_model::{ObjectStore, Schema};
use chimera_persist::{JobRecord, RuleStampRec, StateStore, TenantSnapshot};
use chimera_rules::{SharedProbePool, TriggerDef};
use chimera_telemetry::{Counter as TelCounter, Gauge as TelGauge, Stage, Telemetry, TraceKind};
use std::collections::{HashMap, HashSet};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// One staged job, addressed to a tenant. `reply`, when present, is the
/// job's completion slot: the worker sends exactly one [`JobReply`]
/// after retiring the job (never blocking — the slot is a capacity-1
/// channel and a vanished receiver is ignored).
pub(crate) struct Envelope {
    pub tenant: TenantId,
    pub job: Job,
    pub reply: Option<(JobId, SyncSender<JobReply>)>,
    /// Admission timestamp for the telemetry queue-wait histogram.
    /// `None` when telemetry is off — the clock is never read then.
    pub queued_at: Option<std::time::Instant>,
}

/// The stable tenant→home-shard placement: a SplitMix64 finalizer over
/// the raw id, so dense id ranges still spread evenly. This is a *home*
/// (durable-state owner and backpressure bucket), not an execution pin —
/// under load-aware scheduling any worker may run the tenant.
pub(crate) fn home_of(tenant: u64, homes: usize) -> usize {
    let mut z = tenant.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % homes as u64) as usize
}

/// One tenant's engine plus its bookkeeping.
pub(crate) struct TenantSlot {
    pub engine: Engine,
    pub job_errors: u64,
    pub last_error: Option<String>,
    /// Jobs durably logged *and* applied to this tenant (snapshot
    /// `jobs_applied` + logged-tail position). The recovery oracle uses
    /// this to know exactly how many of a tenant's jobs survived a crash.
    pub jobs_applied: u64,
    /// Tenant-local trigger definitions, as source text, in definition
    /// order — re-applied verbatim when the tenant is rebuilt from a
    /// snapshot.
    pub trigger_sources: Vec<String>,
}

/// The shared tenant registry: every live tenant engine, each behind its
/// own lock. The registry lock is only ever held to look up or create a
/// slot's `Arc` — never while a slot lock is held — so inspection
/// (`with_tenant`, `stats`) interleaves cleanly with workers mid-batch.
pub(crate) struct Tenants {
    map: Mutex<HashMap<u64, Arc<Mutex<TenantSlot>>>>,
}

impl Tenants {
    pub fn new() -> Tenants {
        Tenants {
            map: Mutex::new(HashMap::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Arc<Mutex<TenantSlot>>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get(&self, tenant: u64) -> Option<Arc<Mutex<TenantSlot>>> {
        self.lock().get(&tenant).cloned()
    }

    fn get_or_create(&self, tenant: u64, ctx: &WorkerCtx) -> Arc<Mutex<TenantSlot>> {
        let mut map = self.lock();
        if let Some(arc) = map.get(&tenant) {
            return Arc::clone(arc);
        }
        ctx.tel.gauge_add(TelGauge::TenantsResident, 1);
        Arc::clone(
            map.entry(tenant)
                .or_insert_with(|| Arc::new(Mutex::new(fresh_slot(ctx)))),
        )
    }

    pub fn insert(&self, tenant: u64, slot: TenantSlot) {
        self.lock().insert(tenant, Arc::new(Mutex::new(slot)));
    }

    fn remove(&self, tenant: u64) {
        self.lock().remove(&tenant);
    }

    /// Resident engines (evicted tenants are not counted — they have no
    /// engine in RAM).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Snapshot the registry's `(tenant, slot)` pairs (the slots are not
    /// locked — callers lock each as needed).
    pub fn arcs(&self) -> Vec<(u64, Arc<Mutex<TenantSlot>>)> {
        self.lock().iter().map(|(&t, a)| (t, Arc::clone(a))).collect()
    }
}

/// One home shard's durable half: the store plus its published counters.
pub(crate) struct Home {
    pub index: usize,
    pub durable: bool,
    pub store: Mutex<StoreSlot>,
    /// Published store counters (set, not accumulated, from
    /// [`StateStore::counters`] after every committed batch, plus the
    /// `base_*` carry below).
    pub wal_appends: AtomicU64,
    pub wal_syncs: AtomicU64,
    pub snapshots: AtomicU64,
    /// Counter carry from stores retired by [`reopen_home`]: a
    /// replacement store restarts its own counters at zero, so the
    /// retired store's totals are folded in here to keep the published
    /// numbers monotone across a reopen.
    pub base_appends: AtomicU64,
    pub base_syncs: AtomicU64,
    pub base_snapshots: AtomicU64,
    /// Cumulative wall-clock nanoseconds the store spent inside fsync
    /// (published like the other store counters, with a `base_` carry).
    pub wal_sync_nanos: AtomicU64,
    pub base_sync_nanos: AtomicU64,
    /// Transient store faults absorbed by the bounded retry loop
    /// ([`with_retry`]) instead of poisoning the home.
    pub store_retries: AtomicU64,
    /// Set once, after startup recovery.
    pub recovered_tenants: AtomicU64,
    pub replayed_jobs: AtomicU64,
    /// Tenants homed here whose engines were evicted from RAM: their
    /// authoritative state until the next claim rehydrates them. (On a
    /// durable home the same snapshot is also on disk as a
    /// `tenant-<id>.tsnap`, so a crash recovers it; in-memory mode this
    /// map *is* the only copy — eviction there trades RAM for a smaller
    /// serialized form, exactly like a swapped-out page.)
    pub evicted: Mutex<HashMap<u64, TenantSnapshot>>,
    /// Lifetime eviction / rehydration counts for this home.
    pub evictions: AtomicU64,
    pub rehydrations: AtomicU64,
}

/// The lock-protected mutable state of one home store.
pub(crate) struct StoreSlot {
    pub store: Box<dyn StateStore>,
    /// A failed append/commit/snapshot poisons the home's durability:
    /// jobs homed here keep being answered (with this error) but nothing
    /// executes without durability.
    pub poisoned: Option<String>,
    /// Batches that have appended records but not yet committed them.
    /// Snapshot/truncation only runs at zero, so it can never drop
    /// another batch's uncommitted intent records.
    pub inflight: u64,
}

impl Home {
    pub fn new(index: usize, store: Box<dyn StateStore>) -> Home {
        Home {
            index,
            durable: store.is_durable(),
            store: Mutex::new(StoreSlot {
                store,
                poisoned: None,
                inflight: 0,
            }),
            wal_appends: AtomicU64::new(0),
            wal_syncs: AtomicU64::new(0),
            snapshots: AtomicU64::new(0),
            base_appends: AtomicU64::new(0),
            base_syncs: AtomicU64::new(0),
            base_snapshots: AtomicU64::new(0),
            wal_sync_nanos: AtomicU64::new(0),
            base_sync_nanos: AtomicU64::new(0),
            store_retries: AtomicU64::new(0),
            recovered_tenants: AtomicU64::new(0),
            replayed_jobs: AtomicU64::new(0),
            evicted: Mutex::new(HashMap::new()),
            evictions: AtomicU64::new(0),
            rehydrations: AtomicU64::new(0),
        }
    }

    /// Lock the evicted-tenant map.
    pub fn evicted_lock(&self) -> MutexGuard<'_, HashMap<u64, TenantSnapshot>> {
        self.evicted.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Is this home's durability currently poisoned? (Takes the store
    /// lock briefly; used by the stats surface.)
    pub fn is_poisoned(&self) -> bool {
        self.lock().poisoned.is_some()
    }

    fn lock(&self) -> MutexGuard<'_, StoreSlot> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Bounded retry for store operations: a fault the
/// [`chimera_persist::PersistError::is_transient`] classifier deems
/// retryable gets up to [`STORE_RETRY_LIMIT`] further attempts with
/// doubling backoff (1/2/4 ms) before the error escalates to the
/// caller's poisoning path. The sleep happens with the store lock held —
/// deliberate: a store that is failing *should* backpressure every
/// batch homed on it rather than let them race into the same fault.
const STORE_RETRY_LIMIT: u32 = 3;

fn with_retry<T>(
    home: &Home,
    ctx: &WorkerCtx,
    mut op: impl FnMut() -> chimera_persist::Result<T>,
) -> chimera_persist::Result<T> {
    let mut backoff_ms = 1u64;
    for _ in 0..STORE_RETRY_LIMIT {
        match op() {
            Err(e) if e.is_transient() => {
                home.store_retries.fetch_add(1, Ordering::Relaxed);
                ctx.tel.count(ctx.worker, TelCounter::StoreRetries, 1);
                // home-scoped events record into the *home's* ring (not
                // the worker's), so one noisy neighbor can't flush the
                // postmortem trail of a victim home — see
                // tests in chimera-telemetry and the PR-9 follow-up note
                ctx.tel
                    .trace(home.index, TraceKind::StoreRetried, home.index as u64, 0);
                std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                backoff_ms *= 2;
            }
            other => return other,
        }
    }
    op()
}

/// Runtime-global error/panic counters (tenant-attributed, so no longer
/// meaningful per worker).
#[derive(Default)]
pub(crate) struct Counters {
    pub errors: AtomicU64,
    pub panics: AtomicU64,
}

/// One worker thread's execution counters.
#[derive(Default)]
pub(crate) struct WorkerStats {
    /// Jobs this worker executed (batches it claimed, summed).
    pub executed: AtomicU64,
    /// Claims of tenants homed on a *different* shard than this worker.
    pub steals: AtomicU64,
}

/// What one home's startup recovery found.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShardRecoveryStats {
    pub tenants_recovered: u64,
    pub jobs_replayed: u64,
    pub torn: Option<String>,
}

/// Everything a worker (or startup recovery) needs to build and run
/// tenant engines. Each carries its *own* [`SharedProbePool`]: every
/// engine the worker touches parks the same `check_workers - 1` probe
/// threads, installed per job at claim time (a cheap handle swap), so
/// pool threads scale with workers — not tenants — and a stolen tenant
/// uses its claimer's pool.
pub(crate) struct WorkerCtx {
    schema: Schema,
    triggers: Arc<Vec<TriggerDef>>,
    engine_cfg: EngineConfig,
    probe_pool: SharedProbePool,
    /// The runtime's telemetry handle ([`Telemetry::off`] when disabled
    /// and during startup recovery).
    tel: Telemetry,
    /// This worker's index — selects the telemetry shard bank.
    worker: usize,
}

impl WorkerCtx {
    pub fn new(
        schema: Schema,
        triggers: Arc<Vec<TriggerDef>>,
        engine_cfg: EngineConfig,
        tel: Telemetry,
        worker: usize,
    ) -> Self {
        WorkerCtx {
            schema,
            triggers,
            engine_cfg,
            probe_pool: SharedProbePool::default(),
            tel,
            worker,
        }
    }
}

/// The shared fabric every worker thread operates on: the admission
/// pool, the tenant registry, the home shards, and the counters.
#[derive(Clone)]
pub(crate) struct Fabric {
    pub pool: Arc<Pool>,
    pub tenants: Arc<Tenants>,
    pub homes: Arc<Vec<Home>>,
    pub counters: Arc<Counters>,
    pub workers: Arc<Vec<WorkerStats>>,
    pub schema: Schema,
    pub triggers: Arc<Vec<TriggerDef>>,
    pub engine_cfg: EngineConfig,
    pub snapshot_every: u64,
    pub telemetry: Telemetry,
    /// The residency budget (default unbounded: the whole lifecycle
    /// path is skipped).
    pub lifecycle: LifecycleConfig,
    /// Tenant recency, maintained on the claim-release path while a
    /// budget is configured. Guarded by one mutex: touches are O(1) and
    /// happen once per *batch*, not per job, so contention is noise.
    pub lru: Arc<Mutex<ResidencyLru>>,
}

/// Spawn one worker thread running the claim loop until the pool closes.
pub(crate) fn spawn_worker(index: usize, fabric: Fabric) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("chimera-shard-{index}"))
        .spawn(move || run_worker(index, fabric))
        .expect("spawn shard worker thread")
}

/// The claim loop: pull a ready tenant from the pool, run its batch
/// against the tenant's home store, release the tenant, repeat. Exits
/// when the pool is closed and drained (runtime shutdown).
fn run_worker(index: usize, fabric: Fabric) {
    let ctx = WorkerCtx::new(
        fabric.schema.clone(),
        Arc::clone(&fabric.triggers),
        fabric.engine_cfg.clone(),
        fabric.telemetry.clone(),
        index,
    );
    let me = &fabric.workers[index];
    while let Some(claim) = fabric.pool.claim(index) {
        if claim.stolen {
            me.steals.fetch_add(1, Ordering::Relaxed);
        }
        let retired = claim.batch.len() as u64;
        ctx.tel.count(index, TelCounter::Batches, 1);
        // claim traces are home-scoped (a hot tenant floods its *own*
        // home's ring, never a victim's)
        ctx.tel
            .trace(claim.home, TraceKind::JobClaimed, claim.tenant, retired);
        if rehydrate_if_evicted(&fabric, &ctx, claim.tenant, claim.home)
            && fabric.lifecycle.is_bounded()
        {
            // the rehydration grew the working set by one; shed a cold
            // tenant *now* so residency overshoots the budget only by
            // the claims currently in flight, not until the next release
            enforce_residency(&fabric, &ctx);
        }
        run_batch(
            &fabric.homes[claim.home],
            fabric.homes.len(),
            &fabric.tenants,
            &fabric.counters,
            &ctx,
            claim.batch,
            fabric.snapshot_every,
        );
        me.executed.fetch_add(retired, Ordering::Relaxed);
        fabric.pool.release(claim.tenant, claim.home, retired);
        if fabric.lifecycle.is_bounded() {
            note_activity(&fabric, claim.tenant, claim.home);
            enforce_residency(&fabric, &ctx);
        }
    }
}

/// If the claimed tenant was evicted, rebuild its engine from the home's
/// evicted snapshot *before* the batch runs — so the batch path
/// (`get_or_create`, per-job locks, replay) never observes a missing
/// tenant and callers see eviction only as this restore's latency
/// (recorded in the `rehydrate` histogram). Claim exclusivity plus the
/// pool guard inside [`try_evict`] make this race-free against other
/// workers' eviction/rehydration: nobody evicts a claimed tenant, and
/// nobody else rehydrates one. Against concurrent *snapshots* the
/// registry/evicted-map handover is published under the home store lock
/// (see below). Returns whether an engine was rebuilt (so the caller
/// can re-enforce the budget).
fn rehydrate_if_evicted(fabric: &Fabric, ctx: &WorkerCtx, tenant: u64, home_idx: usize) -> bool {
    if fabric.tenants.get(tenant).is_some() {
        return false;
    }
    let home = &fabric.homes[home_idx];
    let snap = home.evicted_lock().get(&tenant).cloned();
    let Some(snap) = snap else { return false };
    let started = ctx.tel.start();
    match restore_tenant(&snap, ctx) {
        Ok(slot) => {
            // Publish the evicted→resident transition while holding the
            // home store lock. [`maybe_snapshot`] (and [`reopen_home`])
            // collect the resident set via `tenants.arcs()` and fold the
            // evicted map under that same lock; without it a full
            // snapshot racing this window could observe the tenant in
            // *neither* set, omit it, advance the snapshot sequence past
            // the tenant's tsnap watermark, and the next `recover()`
            // would delete the tsnap as stale — permanently losing the
            // tenant's durable state. Under the lock the snapshot sees
            // either "still evicted" or "already resident", both
            // correct. Inside the critical section insert-before-remove
            // keeps lockless inspection from seeing the tenant in
            // neither place. (Lock order store→registry→evicted matches
            // the batch append path and `try_evict`.)
            {
                let _store = home.lock();
                fabric.tenants.insert(tenant, slot);
                home.evicted_lock().remove(&tenant);
            }
            home.rehydrations.fetch_add(1, Ordering::Relaxed);
            if fabric.lifecycle.is_bounded() {
                lru_lock(fabric).touch(tenant, home_idx, approx_tenant_bytes(&snap));
            }
            ctx.tel.record_since(ctx.worker, Stage::Rehydrate, started);
            ctx.tel.count(ctx.worker, TelCounter::Rehydrations, 1);
            ctx.tel.gauge_add(TelGauge::TenantsResident, 1);
            ctx.tel
                .trace(home_idx, TraceKind::TenantRehydrated, tenant, home_idx as u64);
            return true;
        }
        Err(e) => {
            // Should be unreachable — the snapshot came from a healthy
            // engine we froze ourselves. If it does happen, preserve
            // state (the snapshot stays in the evicted map, and on disk
            // for durable homes) and poison the home so the batch is
            // answered with typed refusals instead of running against a
            // fresh empty engine.
            let mut slot = home.lock();
            slot.poisoned = Some(format!("tenant {tenant} rehydration failed: {e}"));
            ctx.tel.count(ctx.worker, TelCounter::Poisonings, 1);
            ctx.tel
                .trace(home_idx, TraceKind::HomePoisoned, home.index as u64, 0);
        }
    }
    false
}

/// Approximate resident footprint of a tenant, from its snapshot shape:
/// relative pressure for the bytes budget, not accounting.
fn approx_tenant_bytes(snap: &TenantSnapshot) -> u64 {
    let sources: u64 = snap.trigger_sources.iter().map(|s| s.len() as u64).sum();
    1024 + snap.objects.len() as u64 * 256 + snap.events.len() as u64 * 64 + sources
}

/// Same estimate from a live slot, without snapshotting it.
pub(crate) fn approx_slot_bytes(slot: &TenantSlot) -> u64 {
    let sources: u64 = slot.trigger_sources.iter().map(|s| s.len() as u64).sum();
    1024 + slot.engine.store().len() as u64 * 256
        + slot.engine.event_base().len() as u64 * 64
        + sources
}

fn lru_lock(fabric: &Fabric) -> MutexGuard<'_, ResidencyLru> {
    fabric.lru.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mark the released tenant most-recently-active. The slot is
/// `try_lock`ed for the size estimate; if another worker already
/// re-claimed the tenant it is hot by definition and the stale estimate
/// stands.
fn note_activity(fabric: &Fabric, tenant: u64, home: usize) {
    let bytes = match fabric.tenants.get(tenant) {
        Some(arc) => match arc.try_lock() {
            Ok(slot) => approx_slot_bytes(&slot),
            Err(_) => return, // re-claimed already: hot, leave as-is
        },
        None => {
            // The tenant left the registry outside `try_evict` — a
            // mid-job panic drops the whole engine. Drop its LRU entry
            // too: a phantom entry's bytes would keep `over_budget`
            // true forever, making every release evict real (colder)
            // tenants until the stale id happened to age into the
            // candidate window. (`try_evict` removes its own LRU entry,
            // so this is the only leak path.)
            lru_lock(fabric).remove(tenant);
            return;
        }
    };
    lru_lock(fabric).touch(tenant, home, bytes);
}

/// How many cold candidates one enforcement round examines before giving
/// up (busy or refusing candidates stay in the LRU and are retried on a
/// later release).
const EVICT_CANDIDATES: usize = 32;

/// Post-release residency enforcement: while the working set exceeds the
/// budget, evict coldest-first. Best-effort by design — a candidate
/// mid-transaction, with staged jobs, on a poisoned home, or whose
/// eviction snapshot write faults is simply *skipped* (refuse-and-retain;
/// nothing is ever dropped to satisfy the budget), so a transient
/// overshoot of at most the number of in-flight claims is possible.
/// Only tenants present in the LRU are candidates: every path that makes
/// a tenant resident while bounded also touches the LRU (release via
/// [`note_activity`], rehydration, the recovery seed loop in
/// `Runtime::recover`), so under the construction-fixed
/// [`LifecycleConfig`] no resident engine is ever invisible here.
fn enforce_residency(fabric: &Fabric, ctx: &WorkerCtx) {
    loop {
        let candidates = {
            let lru = lru_lock(fabric);
            if !fabric
                .lifecycle
                .over_budget(fabric.tenants.len(), lru.total_bytes())
            {
                return;
            }
            lru.coldest(EVICT_CANDIDATES)
        };
        let evicted_one = candidates
            .into_iter()
            .any(|(tenant, home)| try_evict(fabric, ctx, tenant, home));
        if !evicted_one {
            return; // nothing evictable right now; later releases retry
        }
    }
}

/// Try to evict one idle tenant: claim it idle in the pool (fails if it
/// is running or has staged jobs), freeze its engine into a snapshot,
/// persist the snapshot via [`StateStore::evict_tenant`] (durable homes;
/// **one** attempt, no retry loop — eviction is optional work, so any
/// fault means refuse-and-retain, never a poisoning), then drop the RAM
/// engine and park the snapshot in the home's evicted map. Returns
/// whether an engine was actually dropped.
fn try_evict(fabric: &Fabric, ctx: &WorkerCtx, tenant: u64, home_idx: usize) -> bool {
    let home = &fabric.homes[home_idx];
    let Some(arc) = fabric.tenants.get(tenant) else {
        // gone some other way (tenant panic); drop the stale entry
        lru_lock(fabric).remove(tenant);
        return false;
    };
    if !fabric.pool.try_claim_idle(tenant, home_idx) {
        return false; // running or has staged jobs
    }
    // lock order matches maybe_snapshot: store slot, then tenant slot
    let mut evicted = false;
    {
        let mut store = home.lock();
        if store.poisoned.is_none() {
            let slot = arc.lock().unwrap_or_else(PoisonError::into_inner);
            if !slot.engine.in_transaction() {
                let snap = snapshot_tenant(tenant, &slot);
                if store.store.evict_tenant(&snap).is_ok() {
                    drop(slot);
                    home.evicted_lock().insert(tenant, snap);
                    fabric.tenants.remove(tenant);
                    lru_lock(fabric).remove(tenant);
                    home.evictions.fetch_add(1, Ordering::Relaxed);
                    ctx.tel.count(ctx.worker, TelCounter::Evictions, 1);
                    ctx.tel.gauge_add(TelGauge::TenantsResident, -1);
                    ctx.tel
                        .trace(home_idx, TraceKind::TenantEvicted, tenant, home_idx as u64);
                    evicted = true;
                }
            }
        }
        if evicted {
            publish_counters(home, &*store.store);
        }
    }
    // a job submitted while we held the idle claim was queued, not
    // readied; release re-readies it (and its claim will rehydrate)
    fabric.pool.release(tenant, home_idx, 0);
    evicted
}

/// One processed envelope, parked until the batch's group commit before
/// its reply goes out.
struct Pending {
    reply: Option<(JobId, SyncSender<JobReply>)>,
    tenant: TenantId,
    outcome: JobOutcome,
    /// Was this job staged into the store (and must therefore be demoted
    /// if the batch's commit fails)?
    logged: bool,
}

/// What phase 1 decided for each envelope.
enum Disposition {
    /// Test gate: park the worker, outside every lock.
    Gate,
    /// Refused before execution. `durability: true` marks a
    /// store-unavailability refusal (poisoned home / failed append) that
    /// surfaces as the typed [`JobOutcome::RefusedDurability`];
    /// `false` is a usage refusal (a durable `DefineTrigger`) and stays
    /// a plain [`JobOutcome::Error`].
    Refuse { msg: String, durability: bool },
    /// Execute; `logged` records whether its intent was appended.
    Run { logged: bool },
}

/// Run one claimed batch: append (durable homes), execute, group-commit,
/// answer. All jobs belong to one tenant, held exclusively by this
/// worker, so execution order *is* the tenant's submission order.
fn run_batch(
    home: &Home,
    homes: usize,
    tenants: &Tenants,
    counters: &Counters,
    ctx: &WorkerCtx,
    batch: Vec<Envelope>,
    snapshot_every: u64,
) {
    let tel = &ctx.tel;
    // queue wait: admission → claim, one sample per staged job
    for env in &batch {
        tel.record_since(ctx.worker, Stage::QueueWait, env.queued_at);
    }

    // phase 1 — stage every loggable job's intent record into the home
    // store, in batch order, under one store-lock hold
    let mut appended_any = false;
    let plans: Vec<Disposition> = if home.durable {
        let append_started = tel.start();
        let mut slot = home.lock();
        let plans = batch
            .iter()
            .map(|env| {
                if matches!(env.job, Job::Gate { .. }) {
                    return Disposition::Gate;
                }
                if let Some(msg) = &slot.poisoned {
                    // A poisoned home refuses everything *except*
                    // `Rollback`: without it a tenant caught
                    // mid-transaction by the poisoning could never
                    // return to the committed-only state
                    // `reopen_shard_store` requires. The rollback runs
                    // unlogged — the store is dead, and recovery replays
                    // a log whose last group never included this
                    // transaction's commit anyway. Gated on residency: an
                    // *evicted* tenant is by construction outside any
                    // transaction, so running its rollback would only
                    // conjure a fresh empty engine that shadows the
                    // parked snapshot.
                    if matches!(env.job, Job::Rollback) && tenants.get(env.tenant.0).is_some() {
                        return Disposition::Run { logged: false };
                    }
                    return Disposition::Refuse {
                        msg: msg.clone(),
                        durability: true,
                    };
                }
                if matches!(env.job, Job::DefineTrigger(_)) {
                    // lowered definitions have no logged form; durable
                    // tenants must define triggers from source so replay
                    // can re-parse
                    return Disposition::Refuse {
                        msg: "durable storage requires DefineTriggerSource (trigger source \
                              text), not a pre-lowered DefineTrigger"
                            .into(),
                        durability: false,
                    };
                }
                match job_record(&env.job) {
                    Some(record) => {
                        match with_retry(home, ctx, || slot.store.append(env.tenant.0, &record)) {
                            Ok(()) => {
                                appended_any = true;
                                Disposition::Run { logged: true }
                            }
                            Err(e) => {
                                let msg = format!("shard store failed: {e}");
                                slot.poisoned = Some(msg.clone());
                                tel.count(ctx.worker, TelCounter::Poisonings, 1);
                                tel.trace(
                                    home.index,
                                    TraceKind::HomePoisoned,
                                    home.index as u64,
                                    0,
                                );
                                Disposition::Refuse {
                                    msg,
                                    durability: true,
                                }
                            }
                        }
                    }
                    None => Disposition::Run { logged: false },
                }
            })
            .collect();
        if appended_any {
            slot.inflight += 1;
        }
        drop(slot);
        tel.record_since(ctx.worker, Stage::Append, append_started);
        plans
    } else {
        batch
            .iter()
            .map(|env| {
                if matches!(env.job, Job::Gate { .. }) {
                    Disposition::Gate
                } else {
                    Disposition::Run { logged: false }
                }
            })
            .collect()
    };

    // phase 2 — execute, store lock released (a long job never blocks
    // the home's other tenants from appending their own batches)
    let mut pending = Vec::with_capacity(plans.len());
    for (env, plan) in batch.into_iter().zip(plans) {
        let (outcome, logged) = match plan {
            Disposition::Gate => {
                // test instrumentation: park outside every lock so
                // stats/inspection stay reachable while the worker waits
                if let Job::Gate { entered, release } = env.job {
                    entered.wait();
                    release.wait();
                }
                (JobOutcome::Done(JobSummary::default()), false)
            }
            Disposition::Refuse { msg, durability } => (
                refuse(home, tenants, counters, ctx, env.tenant.0, msg, durability),
                false,
            ),
            Disposition::Run { logged } => {
                let exec_started = tel.start();
                let outcome =
                    run_job(tenants, counters, ctx, env.tenant.0, env.job, home.durable);
                tel.record_since(ctx.worker, Stage::Execute, exec_started);
                (outcome, logged)
            }
        };
        pending.push(Pending {
            reply: env.reply,
            tenant: env.tenant,
            outcome,
            logged,
        });
    }

    // phase 3 — the group commit: one fsync for every job staged above
    let mut demote: Option<String> = None;
    if home.durable {
        let mut slot = home.lock();
        if appended_any {
            slot.inflight -= 1;
            if let Some(msg) = &slot.poisoned {
                // a later append in this very batch poisoned the home
                // after earlier jobs had already staged: the commit is
                // skipped, so those jobs' group never fsynced — their
                // successes must be demoted exactly as if the commit
                // call itself had failed
                demote = Some(msg.clone());
            } else {
                let commit_started = tel.start();
                let committed = with_retry(home, ctx, || slot.store.commit());
                tel.record_since(ctx.worker, Stage::Commit, commit_started);
                if let Err(e) = committed {
                    let msg = format!("shard store failed: {e}");
                    slot.poisoned = Some(msg.clone());
                    tel.count(ctx.worker, TelCounter::Poisonings, 1);
                    tel.trace(home.index, TraceKind::HomePoisoned, home.index as u64, 0);
                    demote = Some(msg);
                }
            }
        }
        publish_counters(home, &*slot.store);
        if slot.poisoned.is_none() && snapshot_every > 0 && slot.inflight == 0 {
            maybe_snapshot(&mut slot, home, homes, tenants, snapshot_every, ctx);
        }
    }
    // the batch's durability is not established — demote its successes
    // to the typed refusal, through refuse() so per-tenant error
    // bookkeeping matches every other refusal path. Honesty note: the
    // effects *ran* in RAM and, if the commit was torn (data landed,
    // error reported), may even be durable; the refusal promises only
    // "not acknowledged as durable", which is the strongest claim an
    // ambiguous fsync failure allows. (Outside the store lock: refuse()
    // takes tenant locks.)
    if let Some(msg) = demote {
        for p in &mut pending {
            if p.logged && p.outcome.is_done() {
                p.outcome = refuse(home, tenants, counters, ctx, p.tenant.0, msg.clone(), true);
                tel.count(ctx.worker, TelCounter::Demotions, 1);
                tel.trace(
                    home.index,
                    TraceKind::JobDemoted,
                    p.tenant.0,
                    home.index as u64,
                );
            }
        }
    }

    let reply_started = tel.start();
    for p in pending {
        answer(p.reply, p.tenant, p.outcome);
    }
    tel.record_since(ctx.worker, Stage::Reply, reply_started);
}

/// Record a store-refusal against the tenant's bookkeeping (the slot is
/// created if this is the tenant's first job, mirroring engine errors).
/// `durability: true` yields the typed [`JobOutcome::RefusedDurability`]
/// a client can distinguish from an engine error.
fn refuse(
    home: &Home,
    tenants: &Tenants,
    counters: &Counters,
    ctx: &WorkerCtx,
    tenant: u64,
    msg: String,
    durability: bool,
) -> JobOutcome {
    if tenants.get(tenant).is_none() {
        // An *evicted* tenant reaches here when its home is poisoned
        // (rehydration is skipped by a poisoning mid-batch, or failed and
        // caused it). Book the error on the parked snapshot rather than
        // `get_or_create` — a fresh empty slot would shadow the real
        // state the snapshot still holds.
        //
        // Accepted divergence: on a durable home the on-disk
        // `tenant-<id>.tsnap` is *not* rewritten with this bookkeeping —
        // every path that reaches an evicted tenant has the home
        // poisoned, so the store cannot be written at all. A crash
        // before the tenant is next rehydrated therefore restores the
        // pre-refusal error count (`restored_errors` / `tenant_errors()`
        // under-count these refusals after recovery). That is the same
        // claim demotion already makes — error *counters* are
        // observability, not replayed state; the job log and object
        // state never diverge.
        let mut evicted = home.evicted_lock();
        if let Some(snap) = evicted.get_mut(&tenant) {
            snap.job_errors += 1;
            snap.last_error = Some(msg.clone());
            counters.errors.fetch_add(1, Ordering::Relaxed);
            return if durability {
                JobOutcome::RefusedDurability(msg)
            } else {
                JobOutcome::Error(msg)
            };
        }
    }
    let arc = tenants.get_or_create(tenant, ctx);
    let mut slot = arc.lock().unwrap_or_else(PoisonError::into_inner);
    slot.job_errors += 1;
    slot.last_error = Some(msg.clone());
    counters.errors.fetch_add(1, Ordering::Relaxed);
    if durability {
        JobOutcome::RefusedDurability(msg)
    } else {
        JobOutcome::Error(msg)
    }
}

/// Run one (non-gate) job against its tenant engine, taking the
/// per-tenant lock for the duration. Shared verbatim between live
/// processing and startup replay, so a replayed job reproduces exactly
/// the live bookkeeping — errors, panics and `jobs_applied` included.
fn run_job(
    tenants: &Tenants,
    counters: &Counters,
    ctx: &WorkerCtx,
    tenant: u64,
    job: Job,
    counted: bool,
) -> JobOutcome {
    let arc = tenants.get_or_create(tenant, ctx);
    let mut slot = arc.lock().unwrap_or_else(PoisonError::into_inner);
    if counted && job_record(&job).is_some() {
        slot.jobs_applied += 1;
    }
    // probe threads belong to the claiming worker, not the tenant: a
    // cheap handle swap re-homes the engine's pool every job
    slot.engine.use_shared_probe_pool(ctx.probe_pool.clone());
    let before = slot.engine.stats();
    let schema = &ctx.schema;
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| apply(&mut slot, schema, job)));
    match result {
        Ok(Ok(())) => JobOutcome::Done(JobSummary::delta(before, slot.engine.stats())),
        Ok(Err(msg)) => {
            slot.job_errors += 1;
            slot.last_error = Some(msg.clone());
            counters.errors.fetch_add(1, Ordering::Relaxed);
            JobOutcome::Error(msg)
        }
        Err(_) => {
            // mid-job panic: the engine's invariants are suspect,
            // drop the whole tenant rather than serve from it
            drop(slot);
            tenants.remove(tenant);
            ctx.tel.gauge_add(TelGauge::TenantsResident, -1);
            counters.panics.fetch_add(1, Ordering::Relaxed);
            JobOutcome::Panicked
        }
    }
}

/// Deliver a job's completion notification, if one was requested. The
/// slot has capacity 1 and receives exactly this send, so `try_send`
/// cannot find it full; a receiver that lost interest is ignored.
fn answer(reply: Option<(JobId, SyncSender<JobReply>)>, tenant: TenantId, outcome: JobOutcome) {
    if let Some((job, tx)) = reply {
        let _ = tx.try_send(JobReply {
            job,
            tenant,
            outcome,
        });
    }
}

/// A fresh tenant slot: an engine with the runtime's trigger set
/// installed and the creating worker's probe pool wired in.
fn fresh_slot(ctx: &WorkerCtx) -> TenantSlot {
    let mut engine = Engine::with_config(ctx.schema.clone(), ctx.engine_cfg.clone());
    engine.use_shared_probe_pool(ctx.probe_pool.clone());
    for def in ctx.triggers.iter() {
        engine
            .define_trigger(def.clone())
            .expect("runtime trigger set is validated at construction");
    }
    TenantSlot {
        engine,
        job_errors: 0,
        last_error: None,
        jobs_applied: 0,
        trigger_sources: Vec::new(),
    }
}

/// Run one job against a tenant slot. Engine errors come back as their
/// display string (the runtime's error currency); trigger-source jobs
/// parse, lower and define atomically — on any failure the definitions
/// already made by *this job* are dropped again.
fn apply(slot: &mut TenantSlot, schema: &Schema, job: Job) -> Result<(), String> {
    match job {
        Job::Begin => slot.engine.begin().map_err(|e| e.to_string()),
        Job::ExecBlock(ops) => slot
            .engine
            .exec_block(&ops)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Job::RaiseExternal(events) => slot
            .engine
            .raise_external(&events)
            .map(|_| ())
            .map_err(|e| e.to_string()),
        Job::Commit => slot.engine.commit().map_err(|e| e.to_string()),
        Job::Rollback => slot.engine.rollback().map_err(|e| e.to_string()),
        Job::DefineTrigger(def) => slot.engine.define_trigger(*def).map_err(|e| e.to_string()),
        Job::DefineTriggerSource(src) => {
            apply_trigger_source(&mut slot.engine, schema, &src)?;
            slot.trigger_sources.push(src);
            Ok(())
        }
        Job::Gate { .. } => unreachable!("gates are handled by the worker loop, not a tenant"),
    }
}

/// Parse and define a trigger-source job: all of its declarations or
/// none (a partial failure drops the ones this job already defined).
fn apply_trigger_source(engine: &mut Engine, schema: &Schema, src: &str) -> Result<(), String> {
    let decls = chimera_lang::parse_trigger_decls(src, schema).map_err(|e| e.to_string())?;
    let mut defined: Vec<String> = Vec::with_capacity(decls.len());
    for decl in &decls {
        let result = decl
            .lower(schema)
            .map_err(|e| e.to_string())
            .and_then(|def| {
                let name = def.name.clone();
                engine
                    .define_trigger(def)
                    .map(|()| name)
                    .map_err(|e| e.to_string())
            });
        match result {
            Ok(name) => defined.push(name),
            Err(msg) => {
                for name in defined.iter().rev() {
                    let _ = engine.drop_trigger(name);
                }
                return Err(msg);
            }
        }
    }
    Ok(())
}

/// The durable form of a job, or `None` for jobs that are never logged
/// (gates; pre-lowered `DefineTrigger`, which durable homes refuse).
fn job_record(job: &Job) -> Option<JobRecord> {
    match job {
        Job::Begin => Some(JobRecord::Begin),
        Job::ExecBlock(ops) => Some(JobRecord::ExecBlock(ops.clone())),
        Job::RaiseExternal(events) => Some(JobRecord::RaiseExternal(events.clone())),
        Job::Commit => Some(JobRecord::Commit),
        Job::Rollback => Some(JobRecord::Rollback),
        Job::DefineTriggerSource(src) => Some(JobRecord::DefineTriggerSource(src.clone())),
        Job::DefineTrigger(_) | Job::Gate { .. } => None,
    }
}

fn job_from_record(rec: JobRecord) -> Job {
    match rec {
        JobRecord::Begin => Job::Begin,
        JobRecord::ExecBlock(ops) => Job::ExecBlock(ops),
        JobRecord::RaiseExternal(events) => Job::RaiseExternal(events),
        JobRecord::Commit => Job::Commit,
        JobRecord::Rollback => Job::Rollback,
        JobRecord::DefineTriggerSource(src) => Job::DefineTriggerSource(src),
    }
}

/// Publish the store's counters into the home's atomics. The `base_*`
/// carry (totals of stores retired by [`reopen_home`]) keeps the
/// published numbers monotone across a store replacement.
fn publish_counters(home: &Home, store: &dyn StateStore) {
    let c = store.counters();
    home.wal_appends.store(
        home.base_appends.load(Ordering::Relaxed) + c.appends,
        Ordering::Relaxed,
    );
    home.wal_syncs.store(
        home.base_syncs.load(Ordering::Relaxed) + c.syncs,
        Ordering::Relaxed,
    );
    home.snapshots.store(
        home.base_snapshots.load(Ordering::Relaxed) + c.snapshots,
        Ordering::Relaxed,
    );
    home.wal_sync_nanos.store(
        home.base_sync_nanos.load(Ordering::Relaxed) + c.sync_nanos,
        Ordering::Relaxed,
    );
}

/// Startup recovery for one home: read its store back, rebuild every
/// snapshotted tenant bit-identically into the shared registry, then
/// replay the job-log tail through the exact live processing path
/// (errors and panics included). Runs on the constructing thread, before
/// any worker exists, so no locks are contended.
pub(crate) fn recover_home(
    home: &Home,
    tenants: &Tenants,
    counters: &Counters,
    ctx: &WorkerCtx,
) -> Result<ShardRecoveryStats, String> {
    let mut slot = home.lock();
    let rec = slot.store.recover().map_err(|e| e.to_string())?;
    let mut stats = ShardRecoveryStats {
        torn: rec.torn,
        ..ShardRecoveryStats::default()
    };
    // Eviction snapshots first. Each carries a log watermark: every job
    // the tenant ever logged up to `watermark` is *inside* the snapshot.
    // A tenant with no tail records past its watermark stays parked in
    // the evicted map (cheap recovery — no engine rebuild until a claim
    // wants it); one *with* later records must be rebuilt eagerly so the
    // tail replay below lands on real state.
    let mut covered: HashMap<u64, u64> = HashMap::new();
    for ev in &rec.evicted {
        covered.insert(ev.snap.tenant, ev.watermark);
    }
    let mut restored_errors: u64 = 0;
    for ev in rec.evicted {
        let tenant = ev.snap.tenant;
        let needs_eager = rec
            .tail
            .iter()
            .any(|g| g.seq > ev.watermark && g.jobs.iter().any(|(t, _)| *t == tenant));
        restored_errors += ev.snap.job_errors;
        if needs_eager {
            tenants.insert(tenant, restore_tenant(&ev.snap, ctx)?);
        } else {
            home.evicted_lock().insert(tenant, ev.snap);
        }
        stats.tenants_recovered += 1;
    }
    // restored error bookkeeping feeds the aggregate counter so stats
    // stay consistent across a restart
    if let Some(snap) = rec.snapshot {
        for ts in &snap.tenants {
            if covered.contains_key(&ts.tenant) {
                // the tenant's eviction snapshot is at least as new as
                // the full snapshot's copy (stale tsnaps were already
                // deleted by the store's recover scan)
                continue;
            }
            let restored = restore_tenant(ts, ctx)?;
            restored_errors += restored.job_errors;
            tenants.insert(ts.tenant, restored);
            stats.tenants_recovered += 1;
        }
    }
    counters.errors.fetch_add(restored_errors, Ordering::Relaxed);
    for group in rec.tail {
        for (tenant, record) in group.jobs {
            if covered.get(&tenant).is_some_and(|&w| group.seq <= w) {
                continue; // already inside the tenant's eviction snapshot
            }
            let job = job_from_record(record);
            run_job(tenants, counters, ctx, tenant, job, true);
            stats.jobs_replayed += 1;
        }
    }
    home.recovered_tenants
        .store(stats.tenants_recovered, Ordering::Relaxed);
    home.replayed_jobs
        .store(stats.jobs_replayed, Ordering::Relaxed);
    publish_counters(home, &*slot.store);
    Ok(stats)
}

/// Rebuild one tenant from its snapshot: restored store → fresh engine →
/// runtime triggers → tenant trigger sources → event log → rule stamps →
/// engine stats. Order matters: definitions stamp rule state with the
/// *current* instant, so the recorded stamps are overlaid last.
pub(crate) fn restore_tenant(ts: &TenantSnapshot, ctx: &WorkerCtx) -> Result<TenantSlot, String> {
    let objects = ts.objects.clone();
    let os = ObjectStore::restore(objects, ts.next_oid)
        .map_err(|e| format!("tenant {}: {e}", ts.tenant))?;
    let mut engine = Engine::with_restored_store(ctx.schema.clone(), os, ctx.engine_cfg.clone());
    engine.use_shared_probe_pool(ctx.probe_pool.clone());
    for def in ctx.triggers.iter() {
        engine
            .define_trigger(def.clone())
            .expect("runtime trigger set is validated at construction");
    }
    for src in &ts.trigger_sources {
        apply_trigger_source(&mut engine, &ctx.schema, src)
            .map_err(|e| format!("tenant {}: snapshotted trigger source failed: {e}", ts.tenant))?;
    }
    engine.restore_event_log(&ts.events);
    for r in &ts.rules {
        engine
            .restore_rule_state(
                &r.name,
                r.triggered,
                chimera_events::Timestamp(r.last_consideration),
                chimera_events::Timestamp(r.last_consumption),
                chimera_events::Timestamp(r.checked_upto),
                r.witness,
            )
            .map_err(|e| format!("tenant {}: rule `{}`: {e}", ts.tenant, r.name))?;
    }
    engine.restore_stats(EngineStats {
        blocks: ts.stats[0],
        events: ts.stats[1],
        considerations: ts.stats[2],
        executions: ts.stats[3],
        commits: ts.stats[4],
        rollbacks: ts.stats[5],
    });
    Ok(TenantSlot {
        engine,
        job_errors: ts.job_errors,
        last_error: ts.last_error.clone(),
        jobs_applied: ts.jobs_applied,
        trigger_sources: ts.trigger_sources.clone(),
    })
}

/// Capture one tenant's full state for the home snapshot.
fn snapshot_tenant(tenant: u64, slot: &TenantSlot) -> TenantSnapshot {
    let engine = &slot.engine;
    let store = engine.store();
    let stats = engine.stats();
    TenantSnapshot {
        tenant,
        jobs_applied: slot.jobs_applied,
        job_errors: slot.job_errors,
        last_error: slot.last_error.clone(),
        objects: store.snapshot_objects().into_iter().cloned().collect(),
        next_oid: store.next_oid_counter(),
        events: engine.event_base().iter().map(|o| (o.ty, o.oid)).collect(),
        trigger_sources: slot.trigger_sources.clone(),
        rules: engine
            .rules()
            .iter()
            .map(|(def, rs)| RuleStampRec {
                name: def.name.clone(),
                triggered: rs.triggered,
                last_consideration: rs.last_consideration.0,
                last_consumption: rs.last_consumption.0,
                checked_upto: rs.checked_upto.0,
                witness: rs.witness,
            })
            .collect(),
        stats: [
            stats.blocks,
            stats.events,
            stats.considerations,
            stats.executions,
            stats.commits,
            stats.rollbacks,
        ],
    }
}

/// Periodic compaction: when enough groups have accumulated since the
/// last snapshot *and* every tenant homed here is uncontended and
/// outside a transaction (the object-store snapshot only reflects
/// committed state — an open transaction is recovered by replaying the
/// log instead), write a home snapshot and truncate the job log. Called
/// with the store lock held and `inflight == 0`, so no other batch has
/// uncommitted records the truncation could drop; any tenant-lock
/// contention just defers to a later batch.
fn maybe_snapshot(
    slot: &mut StoreSlot,
    home: &Home,
    homes: usize,
    tenants: &Tenants,
    snapshot_every: u64,
    ctx: &WorkerCtx,
) {
    if slot.store.groups_since_snapshot() < snapshot_every {
        return;
    }
    let all = tenants.arcs();
    let mut guards = Vec::new();
    for (tenant, arc) in &all {
        if home_of(*tenant, homes) != home.index {
            continue;
        }
        let Ok(guard) = arc.try_lock() else {
            return; // a worker is mid-batch on this tenant; try later
        };
        if guard.engine.in_transaction() {
            return; // not a safe point; try again after a later batch
        }
        guards.push((*tenant, guard));
    }
    let mut snaps: Vec<TenantSnapshot> = guards
        .iter()
        .map(|(tenant, guard)| snapshot_tenant(*tenant, guard))
        .collect();
    drop(guards);
    fold_evicted(home, &mut snaps);
    snaps.sort_by_key(|t| t.tenant);
    let count = snaps.len() as u64;
    match with_retry(home, ctx, || slot.store.snapshot(&snaps)) {
        Ok(()) => {
            ctx.tel.count(ctx.worker, TelCounter::Snapshots, 1);
            ctx.tel
                .trace(home.index, TraceKind::SnapshotTaken, home.index as u64, count);
        }
        Err(e) => {
            slot.poisoned = Some(format!("shard store failed: {e}"));
            ctx.tel.count(ctx.worker, TelCounter::Poisonings, 1);
            ctx.tel
                .trace(home.index, TraceKind::HomePoisoned, home.index as u64, 0);
        }
    }
    publish_counters(home, &*slot.store);
}

/// Fold the home's parked eviction snapshots into a full-snapshot set:
/// evicted tenants are as much a part of the home's state as resident
/// ones, and including them lets the store's snapshot path delete their
/// now-covered `tsnap` files. Both callers hold the home store lock
/// across `tenants.arcs()` and this fold, and rehydration publishes its
/// evicted→resident handover under that same lock, so every tenant
/// homed here is guaranteed to appear in at least one of the two sets —
/// a snapshot can never silently omit a tenant mid-rehydration. A
/// tenant seen in both places (insert-before-remove inside the
/// handover) keeps the resident copy — never older.
fn fold_evicted(home: &Home, snaps: &mut Vec<TenantSnapshot>) {
    let resident: HashSet<u64> = snaps.iter().map(|t| t.tenant).collect();
    let evicted = home.evicted_lock();
    snaps.extend(
        evicted
            .values()
            .filter(|s| !resident.contains(&s.tenant))
            .cloned(),
    );
}

/// Replace a home's store with a freshly built one — the operator path
/// for recovering a poisoned home without restarting the runtime.
///
/// Requirements, all checked: no batch may be mid-flight on the store
/// (`inflight == 0`) and every tenant homed here must be uncontended and
/// outside a transaction — call `Runtime::flush` first and the
/// conditions hold trivially (a poisoned home refuses new work, so the
/// quiesced state is stable).
///
/// The replacement store's `recover()` is run to position its log, but
/// its contents are *ignored*: the live in-RAM tenants are authoritative
/// and a full home snapshot is written into the new store before it goes
/// live. Honesty note: jobs that were demoted when the old store's
/// commit failed have still executed in RAM, so after a reopen their
/// effects become durable via that snapshot — the demotion's claim was
/// "not acknowledged as durable at completion time", never "rolled
/// back".
pub(crate) fn reopen_home(
    home: &Home,
    homes: usize,
    tenants: &Tenants,
    mut store: Box<dyn StateStore>,
    tel: &Telemetry,
) -> Result<(), String> {
    let mut slot = home.lock();
    if slot.inflight != 0 {
        return Err(format!(
            "home shard {} has a batch mid-flight; flush the runtime first",
            home.index
        ));
    }
    store.recover().map_err(|e| e.to_string())?;
    let all = tenants.arcs();
    let mut guards = Vec::new();
    for (tenant, arc) in &all {
        if home_of(*tenant, homes) != home.index {
            continue;
        }
        let Ok(guard) = arc.try_lock() else {
            return Err(format!(
                "tenant {tenant} is busy on another worker; flush the runtime first"
            ));
        };
        if guard.engine.in_transaction() {
            return Err(format!(
                "tenant {tenant} has an open transaction; commit or roll it back first \
                 (only committed state can be snapshotted into the replacement store)"
            ));
        }
        guards.push((*tenant, guard));
    }
    let mut snaps: Vec<TenantSnapshot> = guards
        .iter()
        .map(|(tenant, guard)| snapshot_tenant(*tenant, guard))
        .collect();
    drop(guards);
    fold_evicted(home, &mut snaps);
    snaps.sort_by_key(|t| t.tenant);
    store.snapshot(&snaps).map_err(|e| e.to_string())?;
    // fold the retired store's totals into the carry so published
    // counters stay monotone, then swap and clear the poison
    let old = slot.store.counters();
    home.base_appends.fetch_add(old.appends, Ordering::Relaxed);
    home.base_syncs.fetch_add(old.syncs, Ordering::Relaxed);
    home.base_snapshots.fetch_add(old.snapshots, Ordering::Relaxed);
    home.base_sync_nanos.fetch_add(old.sync_nanos, Ordering::Relaxed);
    slot.store = store;
    slot.poisoned = None;
    publish_counters(home, &*slot.store);
    tel.trace(home.index, TraceKind::StoreReopened, home.index as u64, 0);
    Ok(())
}
