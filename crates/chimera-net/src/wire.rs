//! The wire layer: length-prefixed framing and the binary primitives
//! messages are built from.
//!
//! Everything is hand-rolled on `std` (the container has no crates.io;
//! the workspace-wide no-serde decision is documented in
//! `chimera-persist`). A frame is
//!
//! ```text
//! [u32 LE payload length][payload bytes]
//! ```
//!
//! with the payload's first byte a message tag (see [`crate::proto`]).
//! All integers are little-endian; strings are `u32` length + UTF-8
//! bytes; vectors are `u32` count + elements. The frame length is
//! bounded ([`MAX_FRAME`] by default, configurable at both endpoints),
//! so a hostile or corrupt length prefix cannot drive an unbounded
//! allocation, and every decode path returns a typed [`WireError`] —
//! never a panic — on truncated, trailing, or garbage input
//! (property-tested in `tests/wire_roundtrip.rs`).

use std::fmt;
use std::io::{self, Read, Write};

/// Version announced in `Hello`/`HelloAck`. Bump on any codec change.
/// Version 2: durability negotiation in the handshake, storage counters
/// in `StatsReply`, per-declaration `TriggersDefined` outcomes, and the
/// `Busy` connection-cap refusal. Version 3: scheduler counters
/// (`steals`, `ready_queue_depth`), the connection read-throttle counter,
/// and the per-shard stats breakdown — all optional trailing fields in
/// `StatsReply`, so version-2 peers interoperate (they decode as zeros /
/// an empty breakdown). Version 4: the robustness layer — typed
/// durability refusals (`WireOutcome::RefusedDurability`) and
/// client-synthesized `Disconnected` outcomes in `JobDone`, plus
/// `store_retries` / `shards_poisoned` / `net_conns_reaped` as another
/// round of optional trailing `StatsReply` fields. Version 5: the
/// telemetry layer — the `MetricsSnapshot` request and its
/// `MetricsReply` (full counter/gauge/histogram registry plus the
/// drained trace tail; the trace block is an optional trailing field).
/// No existing message's encoding changed, so version-4 peers still
/// decode every version-4 message byte-for-byte (pinned in
/// `tests/wire_roundtrip.rs`). Version 6: the tenant lifecycle layer —
/// `evictions` / `rehydrations` / `tenants_resident` as a fourth round
/// of optional trailing `StatsReply` fields (version 5 added no
/// `StatsReply` fields, so version-5 peers decode them as zeros; every
/// version-5 message still decodes byte-for-byte, pinned in
/// `tests/wire_roundtrip.rs`). The framing layer is unchanged.
pub const PROTOCOL_VERSION: u32 = 6;

/// Default upper bound on one frame's payload (16 MiB) — comfortably
/// above a 256-event block, far below an allocation attack.
pub const MAX_FRAME: usize = 1 << 24;

/// Everything that can go wrong on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Underlying socket error (message form; `io::Error` isn't `Clone`).
    Io(String),
    /// A frame announced a payload longer than the configured bound.
    FrameTooLarge {
        /// Announced payload length.
        len: usize,
        /// The configured bound it exceeded.
        max: usize,
    },
    /// A frame announced a zero-length payload (no tag byte).
    EmptyFrame,
    /// The payload ended in the middle of a field.
    Truncated,
    /// A message decoded completely but left bytes unread.
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// An unknown message or variant tag.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A semantically invalid message (version mismatch, bad handshake,
    /// a response where a request was expected, ...).
    Protocol(String),
    /// A socket deadline expired mid-read or mid-write. Kept distinct
    /// from [`WireError::Io`] so endpoints can tell "the peer went
    /// quiet" (reap / reconnect) from "the transport broke".
    TimedOut,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            WireError::EmptyFrame => write!(f, "zero-length frame"),
            WireError::Truncated => write!(f, "payload truncated mid-field"),
            WireError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete message")
            }
            WireError::BadTag(t) => write!(f, "unknown tag {t:#04x}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            WireError::TimedOut => write!(f, "socket deadline expired"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            // both kinds appear for expired socket deadlines, platform-
            // dependent (unix reports WouldBlock, windows TimedOut)
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => WireError::TimedOut,
            _ => WireError::Io(e.to_string()),
        }
    }
}

// ---------------------------------------------------------------- framing

/// Write one frame: length prefix + payload. The caller enforces its own
/// size policy at encode time; this only refuses payloads the length
/// prefix cannot represent.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| WireError::FrameTooLarge { len: payload.len(), max: u32::MAX as usize })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` is a clean close: the peer shut
/// the stream down *between* frames. EOF inside a frame — header or
/// payload — is [`WireError::Truncated`]. A length over `max` is
/// rejected before any payload allocation.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, WireError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(WireError::EmptyFrame);
    }
    if len > max {
        return Err(WireError::FrameTooLarge { len, max });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::from(e)
        }
    })?;
    Ok(Some(payload))
}

// --------------------------------------------------------------- encoding

/// Append primitives to a payload buffer.
pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}
pub(crate) fn put_str(buf: &mut Vec<u8>, v: &str) {
    put_u32(buf, v.len() as u32);
    buf.extend_from_slice(v.as_bytes());
}

// --------------------------------------------------------------- decoding

/// A bounds-checked cursor over one payload.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    pub(crate) fn bool(&mut self) -> Result<bool, WireError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(WireError::BadTag(t)),
        }
    }
    pub(crate) fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    /// An element count, validated against the bytes actually present:
    /// `min_elem` is the smallest possible encoding of one element, so
    /// any count the remaining payload cannot hold fails as `Truncated`
    /// up front. This also bounds the decoder's `Vec::with_capacity`
    /// by the frame size — a lying count cannot provoke an allocation
    /// larger than the (already bounded) frame itself.
    pub(crate) fn count_of(&mut self, min_elem: usize) -> Result<usize, WireError> {
        debug_assert!(min_elem > 0, "elements occupy at least one byte");
        let n = self.u32()? as usize;
        if n > self.remaining() / min_elem {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Assert full consumption — every decoder's final step.
    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }
}
