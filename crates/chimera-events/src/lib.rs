//! # chimera-events
//!
//! The **Event Base (EB)** of *Composite Events in Chimera* (§4.1): the log
//! of all event occurrences since the beginning of the transaction, modelled
//! exactly as the paper's Fig. 3 table —
//!
//! ```text
//! EID   event-type                  OID   timestamp
//! e1    create(stock)               o1    t1
//! e2    create(stock)               o2    t2
//! ...
//! ```
//!
//! plus the access functions of Fig. 4 (`type`, `obj`, `timestamp`,
//! `event_on_class`) and the indexes the implementation section (§5)
//! prescribes: the *Occurred Events* tree whose leaves are per-type
//! occurrence lists each keeping the most recent stamp, and a per-object
//! index supporting the instance-oriented operators.
//!
//! Time is a strictly monotonic logical clock ([`Timestamp`]); every event
//! occurrence gets a unique stamp, so the calculus' sign-of-`ts` test is
//! total and evaluation is fully deterministic.

pub mod base;
pub mod event;
pub mod fig3;
pub mod time;
pub mod window;

pub use base::{EventBase, TypeDelta};
pub use event::{EventId, EventKind, EventOccurrence, EventType};
pub use fig3::fig3_event_base;
pub use time::{LogicalClock, Timestamp};
pub use window::Window;
