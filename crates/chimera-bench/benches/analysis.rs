//! PERF-8 — static rule analysis cost vs rule-set size.
//!
//! The analyses are meant to run at rule-definition time (the §5.1 spirit:
//! pay once statically, save at every block). This bench checks they stay
//! cheap enough for that: triggering-graph construction is O(R²) pair
//! tests over small effect/listen sets, Tarjan is linear, confluence adds
//! another O(R²) pass. Expected shape: quadratic growth with rule count
//! but millisecond-scale even at 1000 rules.

use chimera_analysis::{analyze, confluence_warnings, TriggeringGraph};
use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_model::{AttrDef, AttrType, Schema, SchemaBuilder};
use chimera_rules::{ActionStmt, Condition, Formula, Term, TriggerDef, VarDecl};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const ATTRS: usize = 32;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let attrs = (0..ATTRS)
        .map(|i| AttrDef::new(format!("a{i}"), AttrType::Integer))
        .collect();
    b.class("c", None, attrs).unwrap();
    b.build()
}

/// `n` rules: rule `i` listens on `modify(c.a_{i mod A})` and writes
/// `c.a_{(i+5) mod A}` — a sparse cyclic pattern that exercises both the
/// SCC machinery and the confluence pair scan.
fn rules(schema: &Schema, n: usize) -> Vec<TriggerDef> {
    let c = schema.class_by_name("c").unwrap();
    (0..n)
        .map(|i| {
            let listen = schema.attr_by_name(c, &format!("a{}", i % ATTRS)).unwrap();
            let mut def = TriggerDef::new(
                format!("r{i}"),
                EventExpr::prim(EventType::modify(c, listen)),
            );
            def.priority = (i % 4) as i32;
            def.condition = Condition {
                decls: vec![VarDecl {
                    name: "V".into(),
                    class: "c".into(),
                }],
                formulas: vec![Formula::Occurred {
                    expr: EventExpr::prim(EventType::modify(c, listen)),
                    var: "V".into(),
                }],
            };
            def.actions = vec![ActionStmt::Modify {
                var: "V".into(),
                attr: format!("a{}", (i + 5) % ATTRS),
                value: Term::int(0),
            }];
            def
        })
        .collect()
}

fn bench_analysis(crit: &mut Criterion) {
    let schema = schema();
    let mut group = crit.benchmark_group("analysis_rule_count");
    for n in [10usize, 100, 1000] {
        let defs = rules(&schema, n);
        group.bench_with_input(BenchmarkId::new("full_analyze", n), &defs, |b, defs| {
            b.iter(|| black_box(analyze(defs, &schema).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("graph_build", n), &defs, |b, defs| {
            b.iter(|| black_box(TriggeringGraph::build(defs, &schema).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("termination", n), &defs, |b, defs| {
            let g = TriggeringGraph::build(defs, &schema).unwrap();
            b.iter(|| black_box(g.termination()))
        });
        group.bench_with_input(BenchmarkId::new("confluence", n), &defs, |b, defs| {
            b.iter(|| black_box(confluence_warnings(defs, &schema).unwrap()))
        });
    }
    group.finish();

    // print the verdict once so the bench is also a smoke regenerator
    let defs = rules(&schema, 100);
    let report = analyze(&defs, &schema).unwrap();
    println!(
        "\n100-rule synthetic set: {} edges, verdict: {}, {} confluence warnings",
        report.graph.edges().len(),
        report.termination,
        report.confluence.len()
    );
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
