//! # chimera-chaos
//!
//! Deterministic fault injection for the runtime's storage and network
//! layers. Robustness claims elsewhere in the workspace (the crash
//! oracle, poisoned-home degradation, client reconnect) are only worth
//! what their test harness can exercise — this crate is that harness,
//! built so every injected failure is **reproducible from a seed**:
//!
//! * [`FaultPlan`] — a seeded schedule of storage faults (SplitMix64
//!   decisions, the same shim-rand discipline as `chimera-workload`'s
//!   generators), with explicit "fail the Nth commit" overrides layered
//!   over per-operation probabilistic rates. Transient faults guarantee
//!   the immediate retry succeeds; a permanent fault breaks the store
//!   for good — exactly the two classes `chimera-runtime`'s retry /
//!   poison policy distinguishes.
//! * [`ChaosStore`] — a [`StateStore`](chimera_persist::StateStore)
//!   wrapper injecting those faults on `append`/`commit`/`snapshot` as
//!   typed `io::Error`s (transient kinds retryable, permanent kinds
//!   not), including the **torn/ambiguous commit**: the underlying sync
//!   happens but the caller is told it failed — the classic fsync
//!   ambiguity a store can never rule out.
//! * [`ChaosProxy`] — a TCP proxy between real sockets that forwards in
//!   small chunks (partial writes), injects seeded delays, and cuts
//!   connections **mid-frame** at a seeded byte position, with a bounded
//!   cut budget so chaos runs converge.
//!
//! Nothing in this crate is test-gated: `examples/chaos_soak.rs` and
//! operators drilling failure paths use the same plans the proptest
//! oracle (`tests/chaos_recovery.rs`) replays.

pub mod pipe;
pub mod plan;
pub mod store;

pub use pipe::{ChaosProxy, NetChaosConfig};
pub use plan::{ChaosRates, FaultPlan, StorageFault, StoreOp};
pub use store::{ChaosCounters, ChaosStore};

#[cfg(test)]
mod asserts {
    fn _send<T: Send>() {}
    fn _all() {
        _send::<super::ChaosStore>();
        _send::<super::FaultPlan>();
    }
}
