//! Lexer.
//!
//! The only delicate part is the two-character operator family of Fig. 1:
//! `,=` `+=` `-=` `<=` must win over their one-character prefixes, so the
//! lexer always takes the longest match. `--` starts a line comment (as in
//! the paper's rule listings).

use crate::error::ParseError;
use crate::token::{Span, Token, TokenKind};
use crate::Result;

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }
    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
    fn span_from(&self, start: usize, line: u32, col: u32) -> Span {
        Span {
            start,
            end: self.pos,
            line,
            col,
        }
    }
}

/// Tokenize a source string. The result always ends with an `Eof` token.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut c = Cursor {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // skip whitespace and comments
        loop {
            match c.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    c.bump();
                }
                Some(b'-') if c.peek2() == Some(b'-') => {
                    while let Some(b) = c.peek() {
                        if b == b'\n' {
                            break;
                        }
                        c.bump();
                    }
                }
                _ => break,
            }
        }
        let (start, line, col) = (c.pos, c.line, c.col);
        let Some(b) = c.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                span: c.span_from(start, line, col),
            });
            return Ok(out);
        };
        let kind = match b {
            b'(' => {
                c.bump();
                TokenKind::LParen
            }
            b')' => {
                c.bump();
                TokenKind::RParen
            }
            b'{' => {
                c.bump();
                TokenKind::LBrace
            }
            b'}' => {
                c.bump();
                TokenKind::RBrace
            }
            b'.' => {
                c.bump();
                TokenKind::Dot
            }
            b':' => {
                c.bump();
                TokenKind::Colon
            }
            b';' => {
                c.bump();
                TokenKind::Semi
            }
            b'*' => {
                c.bump();
                TokenKind::Star
            }
            b'#' => {
                c.bump();
                TokenKind::Hash
            }
            b',' => {
                c.bump();
                if c.peek() == Some(b'=') {
                    c.bump();
                    TokenKind::CommaEq
                } else {
                    TokenKind::Comma
                }
            }
            b'+' => {
                c.bump();
                if c.peek() == Some(b'=') {
                    c.bump();
                    TokenKind::PlusEq
                } else {
                    TokenKind::Plus
                }
            }
            b'-' => {
                c.bump();
                if c.peek() == Some(b'=') {
                    c.bump();
                    TokenKind::MinusEq
                } else {
                    TokenKind::Minus
                }
            }
            b'<' => {
                c.bump();
                if c.peek() == Some(b'=') {
                    c.bump();
                    TokenKind::LtEq
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                c.bump();
                if c.peek() == Some(b'=') {
                    c.bump();
                    TokenKind::GtEq
                } else {
                    TokenKind::Gt
                }
            }
            b'=' => {
                c.bump();
                TokenKind::Eq
            }
            b'!' => {
                c.bump();
                if c.peek() == Some(b'=') {
                    c.bump();
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new(
                        "unexpected `!` (did you mean `!=`?)",
                        c.span_from(start, line, col),
                    ));
                }
            }
            b'"' => {
                c.bump();
                let mut s = String::new();
                loop {
                    match c.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match c.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            _ => {
                                return Err(ParseError::new(
                                    "bad escape sequence",
                                    c.span_from(start, line, col),
                                ))
                            }
                        },
                        Some(other) => s.push(other as char),
                        None => {
                            return Err(ParseError::new(
                                "unterminated string literal",
                                c.span_from(start, line, col),
                            ))
                        }
                    }
                }
                TokenKind::Str(s)
            }
            b'0'..=b'9' => {
                while matches!(c.peek(), Some(b'0'..=b'9')) {
                    c.bump();
                }
                let mut is_float = false;
                if c.peek() == Some(b'.') && matches!(c.peek2(), Some(b'0'..=b'9')) {
                    is_float = true;
                    c.bump();
                    while matches!(c.peek(), Some(b'0'..=b'9')) {
                        c.bump();
                    }
                }
                let text = &c.src[start..c.pos];
                if is_float {
                    TokenKind::Float(text.parse().map_err(|_| {
                        ParseError::new("bad float literal", c.span_from(start, line, col))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        ParseError::new("integer literal out of range", c.span_from(start, line, col))
                    })?)
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                while matches!(c.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
                    c.bump();
                }
                TokenKind::Ident(c.src[start..c.pos].to_owned())
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{}`", other as char),
                    c.span_from(start, line, col),
                ))
            }
        };
        out.push(Token {
            kind,
            span: c.span_from(start, line, col),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("a , b ,= c + d += e - f -= g < h <= i"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Comma,
                TokenKind::Ident("b".into()),
                TokenKind::CommaEq,
                TokenKind::Ident("c".into()),
                TokenKind::Plus,
                TokenKind::Ident("d".into()),
                TokenKind::PlusEq,
                TokenKind::Ident("e".into()),
                TokenKind::Minus,
                TokenKind::Ident("f".into()),
                TokenKind::MinusEq,
                TokenKind::Ident("g".into()),
                TokenKind::Lt,
                TokenKind::Ident("h".into()),
                TokenKind::LtEq,
                TokenKind::Ident("i".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        assert_eq!(
            kinds(r#"42 3.25 "hi\n""#),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(3.25),
                TokenKind::Str("hi\n".into()),
                TokenKind::Eof
            ]
        );
        // `1.x` is int, dot, ident (attribute access on numbers never
        // happens, but `o1.quantity`-style splits matter)
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Dot,
                TokenKind::Ident("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("a -- comment , += junk\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_tokens() {
        assert_eq!(
            kinds("= != >= > ;"),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::GtEq,
                TokenKind::Gt,
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("@").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
    }

    #[test]
    fn hash_lexes_for_external_channels() {
        assert_eq!(
            kinds("stock#3"),
            vec![
                TokenKind::Ident("stock".into()),
                TokenKind::Hash,
                TokenKind::Int(3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn minus_minus_is_comment_not_operator() {
        // `a --b` comments out; `a - -b` is two minuses
        assert_eq!(kinds("a --b"), vec![TokenKind::Ident("a".into()), TokenKind::Eof]);
        assert_eq!(
            kinds("a - - b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Minus,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }
}
