//! PERF-8 — parallel runtime scaling: events/sec through the sharded
//! multi-tenant runtime vs worker (shard) count × tenant count, on the
//! 100-rule static_opt workload (the same rule shapes and relevance mix
//! as `static_opt.rs`, one rule table per tenant).
//!
//! Two experiments:
//!
//! * **`parallel_t{1,16,256}`**: one full ingestion session — build the
//!   runtime, feed every tenant `BLOCKS` external-event blocks through
//!   the bounded queues, flush — at 1/2/4/8 workers. Engine creation
//!   (100 rule defines per tenant) happens on the worker threads and is
//!   part of the session, as it would be in production.
//! * **the self-reported acceptance criterion**: events/sec of the
//!   256-tenant session at 4 workers vs 1 worker, printed with the host
//!   parallelism so single-core containers are legible (`cargo bench -p
//!   chimera-bench --bench parallel`). The PR-4 acceptance bar is ≥ 2.5×
//!   at 4 workers — reachable only where ≥ 4 hardware threads exist; the
//!   printed `host parallelism` line is the context for the number.

use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_exec::EngineConfig;
use chimera_model::{AttrDef, AttrType, Oid, Schema, SchemaBuilder};
use chimera_rules::TriggerDef;
use chimera_runtime::{Backpressure, Runtime, RuntimeConfig, TenantId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Instant;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("qty", AttrType::Integer)])
        .unwrap();
    b.build()
}

/// The static_opt rule table: `nrules` rules over 16 "rule-only" external
/// channels (offset 1000+), a conjunction + precedence mix.
fn rules(schema: &Schema, nrules: usize) -> Vec<TriggerDef> {
    let item = schema.class_by_name("item").unwrap();
    let p = |n: u32| EventExpr::prim(EventType::external(item, n));
    (0..nrules)
        .map(|i| {
            let a = 1000 + (i as u32 % 16);
            let b = 1000 + ((i as u32 + 7) % 16);
            let expr = if i % 2 == 0 { p(a).and(p(b)) } else { p(a).prec(p(b)) };
            TriggerDef::new(format!("r{i}"), expr)
        })
        .collect()
}

/// One tenant's block `b`: `per_block` external events, ~50% relevant to
/// the rules' channel range (the static_opt mid relevance point).
fn block(
    schema: &Schema,
    tenant: u64,
    b: u64,
    per_block: usize,
) -> Vec<(chimera_model::ClassId, u32, Oid)> {
    let item = schema.class_by_name("item").unwrap();
    let mut k = tenant.wrapping_mul(0x9E37_79B9).wrapping_add(b);
    (0..per_block)
        .map(|_| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = (k >> 33) % 100;
            let ch = if roll < 50 {
                1000 + ((k >> 13) % 16) as u32
            } else {
                ((k >> 13) % 16) as u32 // channels no rule listens to
            };
            (item, ch, Oid((k >> 7) % 32 + 1))
        })
        .collect()
}

/// One full ingestion session; returns the number of events fed.
fn run_session(
    schema: &Schema,
    defs: &[TriggerDef],
    workers: usize,
    tenants: u64,
    blocks: u64,
    per_block: usize,
) -> u64 {
    let rt = Runtime::new(
        schema.clone(),
        defs.to_vec(),
        RuntimeConfig {
            shards: workers,
            queue_capacity: 128,
            backpressure: Backpressure::Block,
            engine: EngineConfig {
                max_rule_steps: usize::MAX / 2,
                ..EngineConfig::default()
            },
            ..RuntimeConfig::default()
        },
    )
    .expect("valid rule set");
    for t in 0..tenants {
        rt.begin(TenantId(t)).unwrap();
    }
    // interleave tenants per block so every shard's queue stays fed
    for b in 0..blocks {
        for t in 0..tenants {
            rt.raise_external(TenantId(t), block(schema, t, b, per_block))
                .unwrap();
        }
    }
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.job_errors + stats.job_panics, 0);
    tenants * blocks * per_block as u64
}

fn bench_parallel(c: &mut Criterion) {
    let schema = schema();
    let nrules = if measure_mode() { 100 } else { 20 };
    let defs = rules(&schema, nrules);
    let (blocks, per_block) = if measure_mode() { (8u64, 16) } else { (2u64, 4) };
    let tenant_counts: &[u64] = if measure_mode() { &[1, 16, 256] } else { &[1, 16] };
    let worker_counts: &[usize] = if measure_mode() { &[1, 2, 4, 8] } else { &[1, 2] };
    for &tenants in tenant_counts {
        let mut g = c.benchmark_group(format!("parallel_t{tenants}"));
        g.throughput(Throughput::Elements(tenants * blocks * per_block as u64));
        for &workers in worker_counts {
            g.bench_with_input(
                BenchmarkId::new("workers", workers),
                &workers,
                |b, &workers| {
                    b.iter(|| {
                        black_box(run_session(
                            &schema, &defs, workers, tenants, blocks, per_block,
                        ))
                    });
                },
            );
        }
        g.finish();
    }
}

/// The PR-4 acceptance number, reported by the bench itself: 256-tenant ×
/// 100-rule session throughput at 4 workers vs 1 worker.
fn report_acceptance(c: &mut Criterion) {
    let _ = c;
    let schema = schema();
    if !measure_mode() {
        // still exercise the measured path once so test mode covers it
        let defs = rules(&schema, 10);
        black_box(run_session(&schema, &defs, 2, 4, 1, 4));
        return;
    }
    let defs = rules(&schema, 100);
    let (blocks, per_block) = (8u64, 16);
    let session_evs = |workers: usize| {
        // one warmup session, then the mean of three timed ones
        run_session(&schema, &defs, workers, 256, blocks, per_block);
        let start = Instant::now();
        let mut events = 0u64;
        for _ in 0..3 {
            events += run_session(&schema, &defs, workers, 256, blocks, per_block);
        }
        events as f64 / start.elapsed().as_secs_f64()
    };
    let one = session_evs(1);
    let four = session_evs(4);
    println!(
        "parallel exec_block throughput, 256 tenants x 100 rules: \
         1 worker {:.0} ev/s, 4 workers {:.0} ev/s -> {:.2}x \
         (target >= 2.5x; host parallelism {})",
        one,
        four,
        four / one,
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );
}

criterion_group!(benches, bench_parallel, report_acceptance);
criterion_main!(benches);
