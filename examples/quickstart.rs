//! Quickstart: define a schema and a trigger in Chimera's surface syntax,
//! run a transaction, watch the rule react.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use chimera::interp::Interpreter;
use chimera::model::Value;

const PROGRAM: &str = r#"
define class stock
  attributes quantity: integer,
             max_quantity: integer default 100
end

-- the paper's §2 example rule, extended with the modify event:
-- clamp any stock quantity that exceeds the maximum.
define immediate trigger checkStockQty for stock
  events create , modify(quantity)
  condition stock(S), occurred(create ,= modify(quantity), S),
            S.quantity > S.max_quantity
  actions modify(S.quantity, S.max_quantity)
end

begin;
let widget = create stock(quantity: 250);
let gadget = create stock(quantity: 50);
modify gadget.quantity = 400;
commit;
"#;

fn main() {
    let mut chim = Interpreter::from_source(PROGRAM).expect("parse");
    chim.run_all().expect("run");

    let widget = chim.var("widget").expect("widget bound");
    let gadget = chim.var("gadget").expect("gadget bound");
    let read = |oid| match chim.engine().read_attr(oid, "quantity").unwrap() {
        Value::Int(v) => v,
        other => panic!("unexpected value {other}"),
    };

    println!("widget.quantity = {} (created at 250, clamped)", read(widget));
    println!("gadget.quantity = {} (modified to 400, clamped)", read(gadget));

    let stats = chim.engine().stats();
    println!(
        "engine: {} blocks, {} events, {} rule considerations, {} executions",
        stats.blocks, stats.events, stats.considerations, stats.executions
    );
    assert_eq!(read(widget), 100);
    assert_eq!(read(gadget), 100);
    println!("ok: checkStockQty kept the invariant.");
}
