//! Compiled evaluation plans: the compile/evaluate split for `ts`.
//!
//! ## Why a plan
//!
//! The recursive evaluators ([`crate::ts_logical`], [`crate::instance`])
//! re-walk the [`EventExpr`] tree on every evaluation, and the §4.3
//! instance→set boundary is the expensive part: for every evaluation it
//! rebuilds the object quantification domain (collect → sort → dedup over
//! the window slice) and then recurses the tree once per object, paying a
//! hash probe + binary search per `(type, oid)` leaf. PR 1's benches put
//! the resulting gap at ~200× between set-oriented `ts` and an
//! `ots`-rooted boundary on a 10k-event window.
//!
//! ## What compilation produces
//!
//! [`Plan::compile`] flattens a validated expression into flat arenas:
//!
//! * set-oriented operators become a postorder [`SetOp`] array (children
//!   always precede parents; the root is the last op);
//! * every maximal instance-oriented subtree in set context becomes a
//!   [`BoundaryPlan`]: its own postorder [`InstOp`] array plus the
//!   *interned leaf slots* — the distinct primitive event types of the
//!   subtree, which are simultaneously the §4.3 quantification domain
//!   types and the columns of the evaluation scratchpad.
//!
//! ## How evaluation works
//!
//! [`PlanEval`] pairs a plan with a reusable scratchpad. Evaluating a
//! boundary at `(w, t)`:
//!
//! 1. the object domain comes from the event base's epoch-versioned
//!    domain cache ([`EventBase::objects_of_types_in`]) — a shared
//!    `Arc<[Oid]>` slice, no per-evaluation sort;
//! 2. each leaf slot is resolved for *all* domain objects at once with
//!    one reverse index sweep ([`EventBase::last_of_type_objs_in`]) into a
//!    column of the scratchpad — instead of `objects × leaves` separate
//!    hash probes;
//! 3. the per-object fold walks the op array over the scratchpad columns;
//!    only an inner `<=` re-evaluating its left operand at an earlier
//!    instant ever falls back to a point probe;
//! 4. the boundary result is memoized per `(clip, t)` and the whole
//!    scratchpad is keyed on `(uid, epoch)` of the event base, so
//!    re-evaluations between arrivals are O(1).
//!
//! Values match the recursive evaluators **bit for bit** (including the
//! structured negative residues); `tests/plan_equivalence.rs` asserts this
//! against both `boundary_ts_logical` and `boundary_ts_algebraic` on
//! random expressions × random histories.

use crate::expr::EventExpr;
use crate::ts::{ts_prim, TsVal};
use crate::Result;
use chimera_events::{EventBase, EventType, Timestamp, Window};
use chimera_model::Oid;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// One set-oriented operator of a compiled plan. Operand fields are
/// indices into the plan's op array (always smaller than the op's own
/// index: the array is in postorder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// Primitive event type, resolved to a slot in the set-leaf table.
    Leaf(u32),
    /// `- E`.
    Not(u32),
    /// `E1 + E2`.
    And(u32, u32),
    /// `E1 , E2`.
    Or(u32, u32),
    /// `E1 < E2`.
    Prec(u32, u32),
    /// A maximal instance-oriented subtree crossing the §4.3 boundary,
    /// resolved to a slot in the plan's boundary table.
    Boundary(u32),
}

/// One instance-oriented operator of a [`BoundaryPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstOp {
    /// Primitive event type, resolved to an interned leaf slot.
    Leaf(u32),
    /// `-= E` (a *nested* instance negation; a root `-=` is absorbed
    /// into [`BoundaryPlan::inot`]).
    Not(u32),
    /// `E1 += E2`.
    And(u32, u32),
    /// `E1 ,= E2`.
    Or(u32, u32),
    /// `E1 <= E2`.
    Prec(u32, u32),
}

/// A compiled instance-oriented subtree in set context.
#[derive(Debug, Clone)]
pub struct BoundaryPlan {
    /// Postorder op array; root is the last op.
    pub(crate) ops: Vec<InstOp>,
    /// Interned leaf slots: the distinct primitive event types, in
    /// first-occurrence order. Doubles as the domain type list.
    pub(crate) leaves: Vec<EventType>,
    /// Root was `-=`: the boundary takes "no object activates the
    /// component" semantics (§3.2).
    pub(crate) inot: bool,
    /// Component contains a nested negation: the quantification domain
    /// widens to every object affected in the window (§4.3).
    pub(crate) widen: bool,
}

impl BoundaryPlan {
    fn build(component: &EventExpr, inot: bool) -> BoundaryPlan {
        let mut bp = BoundaryPlan {
            ops: Vec::new(),
            leaves: Vec::new(),
            inot,
            widen: component.contains_negation(),
        };
        bp.push_inst(component);
        bp
    }

    fn push_inst(&mut self, expr: &EventExpr) -> u32 {
        let op = match expr {
            EventExpr::Prim(ty) => InstOp::Leaf(intern(&mut self.leaves, *ty)),
            EventExpr::INot(e) => InstOp::Not(self.push_inst(e)),
            EventExpr::IAnd(a, b) => {
                let (na, nb) = (self.push_inst(a), self.push_inst(b));
                InstOp::And(na, nb)
            }
            EventExpr::IOr(a, b) => {
                let (na, nb) = (self.push_inst(a), self.push_inst(b));
                InstOp::Or(na, nb)
            }
            EventExpr::IPrec(a, b) => {
                let (na, nb) = (self.push_inst(a), self.push_inst(b));
                InstOp::Prec(na, nb)
            }
            _ => unreachable!("set operator inside instance subtree (validated expression)"),
        };
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    /// Number of ops (the root is op `len() - 1`).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// A boundary plan always has at least one op.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The interned leaf event types.
    pub fn leaves(&self) -> &[EventType] {
        &self.leaves
    }
}

/// A compiled evaluation plan for one validated [`EventExpr`].
#[derive(Debug, Clone)]
pub struct Plan {
    /// Postorder set-level op array; root is the last op.
    pub(crate) ops: Vec<SetOp>,
    /// Set-level interned leaves.
    pub(crate) set_leaves: Vec<EventType>,
    /// Compiled instance subtrees, indexed by [`SetOp::Boundary`].
    pub(crate) boundaries: Vec<BoundaryPlan>,
}

impl Plan {
    /// Compile a validated expression. Fails exactly when
    /// [`EventExpr::validate`] does (§3.2 well-formedness).
    pub fn compile(expr: &EventExpr) -> Result<Plan> {
        expr.validate()?;
        let mut plan = Plan {
            ops: Vec::new(),
            set_leaves: Vec::new(),
            boundaries: Vec::new(),
        };
        plan.push_set(expr);
        Ok(plan)
    }

    /// Compile a validated *instance-oriented* expression as a single
    /// per-object component (a root `-=` stays a nested [`InstOp::Not`],
    /// giving `ots` rather than boundary semantics). Used for the
    /// `occurred` / `at` event-formula path, which needs per-object
    /// activity instead of the boundary max.
    pub(crate) fn compile_instance(expr: &EventExpr) -> Result<Plan> {
        expr.validate()?;
        debug_assert!(expr.is_instance_oriented());
        Ok(Plan {
            ops: vec![SetOp::Boundary(0)],
            set_leaves: Vec::new(),
            boundaries: vec![BoundaryPlan::build(expr, false)],
        })
    }

    fn push_set(&mut self, expr: &EventExpr) -> u32 {
        let op = match expr {
            EventExpr::Prim(ty) => SetOp::Leaf(intern(&mut self.set_leaves, *ty)),
            EventExpr::Not(e) => SetOp::Not(self.push_set(e)),
            EventExpr::And(a, b) => {
                let (na, nb) = (self.push_set(a), self.push_set(b));
                SetOp::And(na, nb)
            }
            EventExpr::Or(a, b) => {
                let (na, nb) = (self.push_set(a), self.push_set(b));
                SetOp::Or(na, nb)
            }
            EventExpr::Prec(a, b) => {
                let (na, nb) = (self.push_set(a), self.push_set(b));
                SetOp::Prec(na, nb)
            }
            EventExpr::IAnd(..) | EventExpr::IOr(..) | EventExpr::IPrec(..) => {
                self.boundaries.push(BoundaryPlan::build(expr, false));
                SetOp::Boundary((self.boundaries.len() - 1) as u32)
            }
            EventExpr::INot(inner) => {
                self.boundaries.push(BoundaryPlan::build(inner, true));
                SetOp::Boundary((self.boundaries.len() - 1) as u32)
            }
        };
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    /// Number of set-level ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// A plan always has at least one op.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The compiled boundary subtrees.
    pub fn boundaries(&self) -> &[BoundaryPlan] {
        &self.boundaries
    }

    /// The set-level op array (postorder; root last).
    pub(crate) fn set_ops(&self) -> &[SetOp] {
        &self.ops
    }
}

/// Intern an event type into a leaf-slot table (first-occurrence order).
fn intern(leaves: &mut Vec<EventType>, ty: EventType) -> u32 {
    match leaves.iter().position(|&l| l == ty) {
        Some(i) => i as u32,
        None => {
            leaves.push(ty);
            (leaves.len() - 1) as u32
        }
    }
}

/// Per-boundary reusable evaluation state.
#[derive(Debug, Clone)]
struct BoundaryScratch {
    /// The clipped window the domain + stamp matrix were built for.
    clip: Option<Window>,
    /// Shared quantification domain (sorted OIDs).
    domain: Arc<[Oid]>,
    /// Leaf stamp matrix, column-major: `stamps[leaf * D + obj]` is the
    /// most recent in-window stamp of `leaves[leaf]` on `domain[obj]`.
    stamps: Vec<Option<Timestamp>>,
    /// Small memo of recent boundary results, keyed `(clip, t)`; cleared
    /// whenever the event base `(uid, epoch)` key changes.
    memo: Vec<(Window, Timestamp, TsVal)>,
}

/// Memoized boundary results kept per epoch (covers the handful of
/// distinct `(window, instant)` probes a trigger check performs).
const BOUNDARY_MEMO_CAP: usize = 8;

impl Default for BoundaryScratch {
    fn default() -> Self {
        BoundaryScratch {
            clip: None,
            domain: Arc::from(Vec::new()),
            stamps: Vec::new(),
            memo: Vec::new(),
        }
    }
}

/// A compiled plan plus its reusable scratchpad: the unit an engine
/// caches per rule. Cloning yields an independent scratchpad over the
/// same (cheap, immutable) plan.
#[derive(Debug, Clone)]
pub struct PlanEval {
    plan: Arc<Plan>,
    /// `(uid, epoch)` of the event base the scratch state belongs to.
    key: Option<(u64, u64)>,
    scratch: Vec<BoundaryScratch>,
}

impl PlanEval {
    /// Compile an expression into an evaluator with a fresh scratchpad.
    pub fn compile(expr: &EventExpr) -> Result<PlanEval> {
        Ok(PlanEval::new(Plan::compile(expr)?))
    }

    /// Wrap an already compiled plan.
    pub fn new(plan: Plan) -> PlanEval {
        let scratch = vec![BoundaryScratch::default(); plan.boundaries.len()];
        PlanEval {
            plan: Arc::new(plan),
            key: None,
            scratch,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Evaluate `ts(E, t)` over window `w` of `eb`. Equals
    /// [`crate::ts_logical`] (and [`crate::ts_algebraic`]) bit for bit.
    pub fn eval(&mut self, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
        self.refresh_key(eb);
        let plan = self.plan.clone();
        self.eval_set(&plan, plan.ops.len() - 1, eb, w, t)
    }

    /// The objects for which an instance-compiled plan
    /// ([`Plan::compile_instance`]) is active at `w.upto` — the
    /// `occurred(expr, X)` set, sorted by OID.
    pub(crate) fn active_objects(&mut self, eb: &EventBase, w: Window) -> Vec<Oid> {
        self.refresh_key(eb);
        let plan = self.plan.clone();
        debug_assert_eq!(plan.boundaries.len(), 1);
        let bp = &plan.boundaries[0];
        let t = w.upto;
        self.prepare_boundary(0, bp, eb, w.clip_upto(t));
        let ctx = InstCtx {
            bp,
            scr: &self.scratch[0],
            eb,
            w,
        };
        let root = bp.ops.len() - 1;
        (0..ctx.scr.domain.len())
            .filter(|&j| ctx.eval(root, t, j).is_active())
            .map(|j| ctx.scr.domain[j])
            .collect()
    }

    fn refresh_key(&mut self, eb: &EventBase) {
        let key = (eb.uid(), eb.epoch());
        if self.key != Some(key) {
            self.key = Some(key);
            for b in &mut self.scratch {
                b.clip = None;
                b.memo.clear();
            }
        }
    }

    fn eval_set(&mut self, plan: &Plan, idx: usize, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
        match plan.ops[idx] {
            SetOp::Leaf(slot) => ts_prim(eb, w, t, plan.set_leaves[slot as usize]),
            SetOp::Not(c) => self.eval_set(plan, c as usize, eb, w, t).negate(),
            SetOp::And(a, b) => {
                let ta = self.eval_set(plan, a as usize, eb, w, t);
                let tb = self.eval_set(plan, b as usize, eb, w, t);
                if ta.is_active() && tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            SetOp::Or(a, b) => {
                let ta = self.eval_set(plan, a as usize, eb, w, t);
                let tb = self.eval_set(plan, b as usize, eb, w, t);
                if ta.is_active() || tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            SetOp::Prec(a, b) => {
                let tb = self.eval_set(plan, b as usize, eb, w, t);
                match tb.activation() {
                    Some(b_stamp) => {
                        let ta_at_b = self.eval_set(plan, a as usize, eb, w, b_stamp);
                        if ta_at_b.is_active() {
                            tb
                        } else {
                            TsVal::inactive(t)
                        }
                    }
                    None => TsVal::inactive(t),
                }
            }
            SetOp::Boundary(bi) => self.eval_boundary(plan, bi as usize, eb, w, t),
        }
    }

    /// Build (or reuse) the domain + stamp matrix for `clip`.
    fn prepare_boundary(&mut self, bi: usize, bp: &BoundaryPlan, eb: &EventBase, clip: Window) {
        let scr = &mut self.scratch[bi];
        if scr.clip == Some(clip) {
            return;
        }
        scr.domain = if bp.widen {
            eb.objects_in(clip)
        } else {
            eb.objects_of_types_in(&bp.leaves, clip)
        };
        let d = scr.domain.len();
        scr.stamps.clear();
        scr.stamps.resize(bp.leaves.len() * d, None);
        for (l, &ty) in bp.leaves.iter().enumerate() {
            eb.last_of_type_objs_in(ty, &scr.domain, clip, &mut scr.stamps[l * d..(l + 1) * d]);
        }
        scr.clip = Some(clip);
    }

    /// §4.3 boundary evaluation over the scratchpad.
    fn eval_boundary(
        &mut self,
        plan: &Plan,
        bi: usize,
        eb: &EventBase,
        w: Window,
        t: Timestamp,
    ) -> TsVal {
        let clip = w.clip_upto(t);
        if let Some(&(_, _, v)) = self.scratch[bi]
            .memo
            .iter()
            .find(|&&(mc, mt, _)| mc == clip && mt == t)
        {
            return v;
        }
        let bp = &plan.boundaries[bi];
        // Negation-free components evaluate to exactly `-t` for any object
        // without a matching occurrence up to `t`, so a *wider* domain and
        // stamp matrix give bit-identical results — build them once per
        // epoch over the full window and share them across every probe
        // instant (the per-leaf `s <= t` check + point-probe fallback
        // resolves earlier instants). Widened (negation-carrying)
        // components gain vacuously-active members with the domain, so
        // they must keep the exact per-instant clip.
        let build_clip = if bp.widen {
            clip
        } else {
            w.clip_upto(t.max(eb.now()))
        };
        self.prepare_boundary(bi, bp, eb, build_clip);
        let ctx = InstCtx {
            bp,
            scr: &self.scratch[bi],
            eb,
            w,
        };
        let root = bp.ops.len() - 1;
        let mut best: Option<TsVal> = None;
        for j in 0..ctx.scr.domain.len() {
            let v = ctx.eval(root, t, j);
            best = Some(match best {
                None => v,
                Some(b) => b.max(v),
            });
        }
        let res = if bp.inot {
            match best {
                // ∃ active object → inactive; nobody active → active "now"
                Some(v) if v.is_active() => v.negate(),
                _ => TsVal::active(t),
            }
        } else {
            best.unwrap_or(TsVal::inactive(t))
        };
        let memo = &mut self.scratch[bi].memo;
        if memo.len() >= BOUNDARY_MEMO_CAP {
            memo.remove(0);
        }
        memo.push((clip, t, res));
        res
    }

}

/// Borrowed context for the per-object fold: the boundary's compiled
/// shape, its prepared scratchpad, and the evaluation window.
struct InstCtx<'a> {
    bp: &'a BoundaryPlan,
    scr: &'a BoundaryScratch,
    eb: &'a EventBase,
    w: Window,
}

impl InstCtx<'_> {
    /// `ots` of one object over the op array and its scratchpad row.
    fn eval(&self, idx: usize, t: Timestamp, obj: usize) -> TsVal {
        match self.bp.ops[idx] {
            InstOp::Leaf(slot) => {
                let d = self.scr.domain.len();
                match self.scr.stamps[slot as usize * d + obj] {
                    Some(s) if s <= t => TsVal::active(s),
                    // matrix stamp is later than the probe instant (an
                    // inner `<=` evaluating at an earlier reference
                    // instant): fall back to a point probe.
                    Some(_) => match self.eb.last_of_type_obj_in(
                        self.bp.leaves[slot as usize],
                        self.scr.domain[obj],
                        self.w.clip_upto(t),
                    ) {
                        Some(s) => TsVal::active(s),
                        None => TsVal::inactive(t),
                    },
                    None => TsVal::inactive(t),
                }
            }
            InstOp::Not(c) => self.eval(c as usize, t, obj).negate(),
            InstOp::And(a, b) => {
                let ta = self.eval(a as usize, t, obj);
                let tb = self.eval(b as usize, t, obj);
                if ta.is_active() && tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            InstOp::Or(a, b) => {
                let ta = self.eval(a as usize, t, obj);
                let tb = self.eval(b as usize, t, obj);
                if ta.is_active() || tb.is_active() {
                    ta.max(tb)
                } else {
                    ta.min(tb)
                }
            }
            InstOp::Prec(a, b) => {
                let tb = self.eval(b as usize, t, obj);
                match tb.activation() {
                    Some(b_stamp) => {
                        let ta_at_b = self.eval(a as usize, b_stamp, obj);
                        if ta_at_b.is_active() {
                            tb
                        } else {
                            TsVal::inactive(t)
                        }
                    }
                    None => TsVal::inactive(t),
                }
            }
        }
    }
}

/// Cap on the per-thread expression→plan caches; cleared wholesale when
/// exceeded (property suites generate unbounded fresh expressions).
const THREAD_CACHE_CAP: usize = 512;

thread_local! {
    /// Boundary-rooted plans used by the `ts_logical` / `ts_algebraic`
    /// dispatch (one per distinct boundary subtree).
    static BOUNDARY_PLANS: RefCell<HashMap<EventExpr, PlanEval>> = RefCell::new(HashMap::new());
    /// Instance-compiled plans used by the `occurred` formula path.
    static INSTANCE_PLANS: RefCell<HashMap<EventExpr, PlanEval>> = RefCell::new(HashMap::new());
}

fn with_cached<R>(
    cache: &'static std::thread::LocalKey<RefCell<HashMap<EventExpr, PlanEval>>>,
    expr: &EventExpr,
    compile: impl FnOnce(&EventExpr) -> Result<PlanEval>,
    f: impl FnOnce(&mut PlanEval) -> R,
) -> R {
    cache.with(|c| {
        let mut map = c.borrow_mut();
        if !map.contains_key(expr) {
            let pe = compile(expr).unwrap_or_else(|e| {
                panic!("plan compilation of a used expression failed: {e} ({expr})")
            });
            if map.len() >= THREAD_CACHE_CAP {
                map.clear();
            }
            map.insert(expr.clone(), pe);
        }
        f(map.get_mut(expr).expect("just inserted"))
    })
}

/// Evaluate a boundary-rooted (instance-oriented in set context)
/// expression through a per-thread compiled-plan cache. This is the
/// production path behind [`crate::ts_logical`] / [`crate::ts_algebraic`];
/// the recursive definitions remain as [`crate::instance::boundary_ts_logical`]
/// and [`crate::instance::boundary_ts_algebraic`] (the cross-checked
/// references).
pub(crate) fn boundary_ts_planned(
    expr: &EventExpr,
    eb: &EventBase,
    w: Window,
    t: Timestamp,
) -> TsVal {
    with_cached(&BOUNDARY_PLANS, expr, PlanEval::compile, |pe| {
        pe.eval(eb, w, t)
    })
}

/// `occurred(expr, X)` through the per-thread instance-plan cache.
pub(crate) fn occurred_objects_planned(expr: &EventExpr, eb: &EventBase, w: Window) -> Vec<Oid> {
    with_cached(
        &INSTANCE_PLANS,
        expr,
        |e| Plan::compile_instance(e).map(PlanEval::new),
        |pe| pe.active_objects(eb, w),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{boundary_ts_algebraic, boundary_ts_logical};
    use crate::ts::{ts_logical, ts_logical_interpreted};
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    fn history() -> EventBase {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(2), Timestamp(2));
        eb.append_at(et(1), Oid(1), Timestamp(3));
        eb.append_at(et(0), Oid(3), Timestamp(5));
        eb.append_at(et(2), Oid(2), Timestamp(6));
        eb.append_at(et(0), Oid(2), Timestamp(8));
        eb.tick();
        eb
    }

    /// The expression menu crossing every op and boundary shape.
    fn menu() -> Vec<EventExpr> {
        vec![
            p(0),
            p(0).and(p(1)),
            p(0).or(p(1)).not(),
            p(0).prec(p(1)),
            p(0).iand(p(1)),
            p(0).ior(p(1)),
            p(0).iprec(p(1)),
            p(0).iand(p(1)).inot(),
            p(0).iand(p(1).inot()),
            p(0).inot().inot(),
            p(2).and(p(0).iprec(p(1))),
            p(0).iprec(p(1)).or(p(2).not()),
            p(0).iand(p(1)).prec(p(2)),
            p(2).prec(p(0).iand(p(1))),
        ]
    }

    #[test]
    fn plan_matches_recursive_everywhere() {
        let eb = history();
        for expr in menu() {
            let mut pe = PlanEval::compile(&expr).unwrap();
            for wa in [0u64, 2, 5] {
                for t in 1..=9u64 {
                    let w = Window::new(Timestamp(wa), Timestamp(9));
                    let want = ts_logical_interpreted(&expr, &eb, w, Timestamp(t));
                    assert_eq!(
                        pe.eval(&eb, w, Timestamp(t)),
                        want,
                        "{expr} over ({wa},9] at t{t}"
                    );
                    // and the cached dispatch path agrees too
                    assert_eq!(ts_logical(&expr, &eb, w, Timestamp(t)), want);
                }
            }
        }
    }

    #[test]
    fn boundary_plan_matches_both_recursive_styles() {
        let eb = history();
        for expr in [
            p(0).iand(p(1)),
            p(0).iprec(p(1)),
            p(0).iand(p(1)).inot(),
            p(0).ior(p(1).inot()),
        ] {
            let mut pe = PlanEval::compile(&expr).unwrap();
            for t in 1..=9u64 {
                let w = Window::from_origin(Timestamp(9));
                let v = pe.eval(&eb, w, Timestamp(t));
                assert_eq!(v, boundary_ts_logical(&expr, &eb, w, Timestamp(t)), "{expr}@{t}");
                assert_eq!(v, boundary_ts_algebraic(&expr, &eb, w, Timestamp(t)), "{expr}@{t}");
            }
        }
    }

    #[test]
    fn scratch_survives_event_base_growth() {
        let mut eb = EventBase::new();
        let expr = p(0).iand(p(1));
        let mut pe = PlanEval::compile(&expr).unwrap();
        let probe = |pe: &mut PlanEval, eb: &EventBase| {
            let w = Window::from_origin(eb.now());
            let got = pe.eval(eb, w, eb.now());
            assert_eq!(got, ts_logical_interpreted(&expr, eb, w, eb.now()));
            got
        };
        eb.append(et(0), Oid(1));
        assert!(!probe(&mut pe, &eb).is_active());
        eb.append(et(1), Oid(1));
        assert!(probe(&mut pe, &eb).is_active());
        // repeated probes at the same epoch hit the memo
        assert!(probe(&mut pe, &eb).is_active());
        eb.append(et(0), Oid(2));
        assert!(probe(&mut pe, &eb).is_active());
        // a different event base invalidates the scratch key
        let mut other = EventBase::new();
        other.append(et(1), Oid(7));
        assert!(!probe(&mut pe, &other).is_active());
        assert!(probe(&mut pe, &eb).is_active());
    }

    #[test]
    fn compile_rejects_invalid_expressions() {
        assert!(Plan::compile(&p(0).and(p(1)).iand(p(2))).is_err());
        assert!(Plan::compile(&p(0).or(p(1)).inot()).is_err());
    }

    #[test]
    fn compiled_shapes() {
        // A += (B <= A): 2 interned leaf slots, 5 ops (A referenced twice)
        let plan = Plan::compile(&p(0).iand(p(1).iprec(p(0)))).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.boundaries().len(), 1);
        let bp = &plan.boundaries()[0];
        assert_eq!(bp.leaves(), &[et(0), et(1)]);
        assert_eq!(bp.len(), 5);
        assert!(!bp.inot && !bp.widen);
        // root -= is absorbed into the flag; nested -= widens the domain
        let plan = Plan::compile(&p(0).iand(p(1).inot()).inot()).unwrap();
        let bp = &plan.boundaries()[0];
        assert!(bp.inot && bp.widen);
        assert_eq!(bp.len(), 4); // A, B, -=, +=  (root -= not an op)
        // set mixture: two boundaries, shared set leaves interned
        let plan = Plan::compile(&p(0).iand(p(1)).and(p(2).or(p(2)))).unwrap();
        assert_eq!(plan.boundaries().len(), 1);
        assert_eq!(plan.set_leaves.len(), 1); // p2 interned once
    }

    #[test]
    fn active_objects_matches_occurred_semantics() {
        let eb = history();
        let w = Window::from_origin(eb.now());
        let expr = p(0).iand(p(1));
        let mut pe = PlanEval::new(Plan::compile_instance(&expr).unwrap());
        // O1 has both; O2 has et1+et0 (both) ; O3 only et0
        assert_eq!(pe.active_objects(&eb, w), vec![Oid(1), Oid(2)]);
        let mut pe = PlanEval::new(Plan::compile_instance(&p(0).iand(p(1).inot())).unwrap());
        assert_eq!(pe.active_objects(&eb, w), vec![Oid(3)]);
    }
}
