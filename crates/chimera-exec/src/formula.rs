//! Set-oriented condition evaluation.
//!
//! A condition produces the set of *binding tuples* for which all its
//! formulas hold; the rule's action then executes once over all tuples
//! (§2). Evaluation proceeds in three phases:
//!
//! 1. **event formulas** (`occurred`, `at`) in writing order — they bind
//!    class variables to the objects affected by composite events within
//!    the rule's consumption window (§3.3), and time variables to the
//!    occurrence instants;
//! 2. **extent binding** — declared variables not bound by any event
//!    formula range over the full (deep) class extent, making plain
//!    queries expressible;
//! 3. **comparison predicates** filter the tuples.
//!
//! All intermediate sets are ordered (OIDs, then instants), so evaluation
//! is fully deterministic.

use crate::error::ExecError;
use crate::Result;
use chimera_calculus::{at_occurrences, occurred_objects};
use chimera_events::{EventBase, Window};
use chimera_model::{ObjectStore, Oid, Schema, Value};
use chimera_rules::condition::{CmpOp, Condition, Formula, Term};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One binding tuple: variable name → value (`Ref` for class variables,
/// `Time` for `at` time variables).
pub type Binding = BTreeMap<String, Value>;

/// Evaluate a condition over the store and the rule's consumption window.
/// Returns the binding tuples (empty ⇒ the condition failed and the
/// action must not run). A condition with no declarations and no formulas
/// succeeds with one empty tuple.
pub fn evaluate_condition(
    cond: &Condition,
    schema: &Schema,
    store: &ObjectStore,
    eb: &EventBase,
    window: Window,
) -> Result<Vec<Binding>> {
    // resolve declarations
    let mut decl_class: HashMap<&str, chimera_model::ClassId> = HashMap::new();
    for d in &cond.decls {
        if decl_class.contains_key(d.name.as_str()) {
            return Err(ExecError::DuplicateVariable(d.name.clone()));
        }
        let cid = schema.class_by_name(&d.class)?;
        decl_class.insert(d.name.as_str(), cid);
    }

    let mut rows: Vec<Binding> = vec![Binding::new()];
    let mut bound: HashSet<String> = HashSet::new();

    // phase 1: event formulas
    for f in &cond.formulas {
        match f {
            Formula::Occurred { expr, var } => {
                let cid = *decl_class
                    .get(var.as_str())
                    .ok_or_else(|| ExecError::UndeclaredFormulaVariable(var.clone()))?;
                let objs: Vec<Oid> = occurred_objects(expr, eb, window)?
                    .into_iter()
                    .filter(|&oid| {
                        store
                            .get(oid)
                            .map(|o| schema.is_subclass_or_self(o.class, cid))
                            .unwrap_or(false) // deleted objects drop out
                    })
                    .collect();
                if bound.contains(var) {
                    let set: HashSet<Oid> = objs.into_iter().collect();
                    rows.retain(|row| match row.get(var) {
                        Some(Value::Ref(oid)) => set.contains(oid),
                        _ => false,
                    });
                } else {
                    rows = cross_bind(rows, var, objs.into_iter().map(Value::Ref));
                    bound.insert(var.clone());
                }
            }
            Formula::At {
                expr,
                var,
                time_var,
            } => {
                let cid = *decl_class
                    .get(var.as_str())
                    .ok_or_else(|| ExecError::UndeclaredFormulaVariable(var.clone()))?;
                if bound.contains(time_var) || decl_class.contains_key(time_var.as_str()) {
                    return Err(ExecError::DuplicateVariable(time_var.clone()));
                }
                let pairs: Vec<(Oid, Value)> = at_occurrences(expr, eb, window)?
                    .into_iter()
                    .filter(|(oid, _)| {
                        store
                            .get(*oid)
                            .map(|o| schema.is_subclass_or_self(o.class, cid))
                            .unwrap_or(false)
                    })
                    .map(|(oid, ts)| (oid, Value::Time(ts.raw())))
                    .collect();
                let mut next = Vec::new();
                for row in rows {
                    if let Some(Value::Ref(prev)) = row.get(var) {
                        // var already bound: keep matching instants only
                        for (oid, tv) in pairs.iter().filter(|(o, _)| o == prev) {
                            let mut r = row.clone();
                            r.insert(time_var.clone(), tv.clone());
                            let _ = oid;
                            next.push(r);
                        }
                    } else {
                        for (oid, tv) in &pairs {
                            let mut r = row.clone();
                            r.insert(var.clone(), Value::Ref(*oid));
                            r.insert(time_var.clone(), tv.clone());
                            next.push(r);
                        }
                    }
                }
                rows = next;
                bound.insert(var.clone());
                bound.insert(time_var.clone());
            }
            Formula::Compare { .. } => {} // phase 3
        }
        if rows.is_empty() {
            return Ok(rows);
        }
    }

    // phase 2: remaining declared variables range over the deep extent
    for d in &cond.decls {
        if !bound.contains(&d.name) {
            let cid = decl_class[d.name.as_str()];
            let objs = store.extent_deep(schema, cid);
            rows = cross_bind(rows, &d.name, objs.into_iter().map(Value::Ref));
            bound.insert(d.name.clone());
            if rows.is_empty() {
                return Ok(rows);
            }
        }
    }

    // phase 3: comparison predicates
    for f in &cond.formulas {
        if let Formula::Compare { lhs, op, rhs } = f {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                if compare_holds(lhs, *op, rhs, &row, schema, store)? {
                    kept.push(row);
                }
            }
            rows = kept;
            if rows.is_empty() {
                return Ok(rows);
            }
        }
    }
    Ok(rows)
}

fn cross_bind(
    rows: Vec<Binding>,
    var: &str,
    values: impl Iterator<Item = Value> + Clone,
) -> Vec<Binding> {
    let mut out = Vec::new();
    for row in rows {
        for v in values.clone() {
            let mut r = row.clone();
            r.insert(var.to_owned(), v);
            out.push(r);
        }
    }
    out
}

/// Evaluate a term against a binding tuple.
pub fn eval_term(
    term: &Term,
    row: &Binding,
    schema: &Schema,
    store: &ObjectStore,
) -> Result<Value> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(name) => row
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::UnboundVariable(name.clone())),
        Term::Attr { var, attr } => {
            let v = row
                .get(var)
                .ok_or_else(|| ExecError::UnboundVariable(var.clone()))?;
            let Value::Ref(oid) = v else {
                return Err(ExecError::BadTerm(format!(
                    "`{var}` is not an object reference"
                )));
            };
            let obj = store.get(*oid)?;
            let aid = schema.attr_by_name(obj.class, attr)?;
            Ok(store.read_attr(*oid, aid)?.clone())
        }
        Term::Add(a, b) => arith(term, a, b, row, schema, store, Value::add),
        Term::Sub(a, b) => arith(term, a, b, row, schema, store, Value::sub),
        Term::Mul(a, b) => arith(term, a, b, row, schema, store, Value::mul),
    }
}

fn arith(
    whole: &Term,
    a: &Term,
    b: &Term,
    row: &Binding,
    schema: &Schema,
    store: &ObjectStore,
    op: impl Fn(&Value, &Value) -> Option<Value>,
) -> Result<Value> {
    let va = eval_term(a, row, schema, store)?;
    let vb = eval_term(b, row, schema, store)?;
    op(&va, &vb).ok_or_else(|| ExecError::BadTerm(format!("cannot evaluate `{whole}`")))
}

fn compare_holds(
    lhs: &Term,
    op: CmpOp,
    rhs: &Term,
    row: &Binding,
    schema: &Schema,
    store: &ObjectStore,
) -> Result<bool> {
    let lv = eval_term(lhs, row, schema, store)?;
    let rv = eval_term(rhs, row, schema, store)?;
    Ok(match lv.compare(&rv) {
        None => false, // incomparable (Null or type mismatch): predicate fails
        Some(ord) => match op {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_events::{EventType, Timestamp};
    use chimera_model::{AttrDef, AttrType, SchemaBuilder};
    use chimera_rules::condition::VarDecl;

    fn setup() -> (Schema, ObjectStore, EventBase) {
        let mut b = SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![
                AttrDef::new("quantity", AttrType::Integer),
                AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
            ],
        )
        .unwrap();
        let schema = b.build();
        let mut store = ObjectStore::new();
        store.begin().unwrap();
        (schema, store, EventBase::new())
    }

    fn create_stock(
        schema: &Schema,
        store: &mut ObjectStore,
        eb: &mut EventBase,
        qty: i64,
    ) -> Oid {
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let m = store.create(schema, stock, &[(q, Value::Int(qty))]).unwrap();
        eb.append(EventType::create(stock), m.oid);
        m.oid
    }

    /// The paper's `checkStockQty` condition:
    /// `stock(S), occurred(create, S), S.quantity > S.max_quantity`.
    #[test]
    fn check_stock_qty_condition() {
        let (schema, mut store, mut eb) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let ok = create_stock(&schema, &mut store, &mut eb, 50);
        let over = create_stock(&schema, &mut store, &mut eb, 150);
        let cond = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![
                Formula::Occurred {
                    expr: EventExpr::prim(EventType::create(stock)),
                    var: "S".into(),
                },
                Formula::Compare {
                    lhs: Term::attr("S", "quantity"),
                    op: CmpOp::Gt,
                    rhs: Term::attr("S", "max_quantity"),
                },
            ],
        };
        let w = Window::from_origin(eb.now());
        let rows = evaluate_condition(&cond, &schema, &store, &eb, w).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["S"], Value::Ref(over));
        let _ = ok;
    }

    #[test]
    fn empty_condition_succeeds_once() {
        let (schema, store, eb) = setup();
        let rows = evaluate_condition(
            &Condition::always(),
            &schema,
            &store,
            &eb,
            Window::from_origin(Timestamp(1)),
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].is_empty());
    }

    #[test]
    fn unbound_decl_ranges_over_extent() {
        let (schema, mut store, mut eb) = setup();
        let a = create_stock(&schema, &mut store, &mut eb, 1);
        let b = create_stock(&schema, &mut store, &mut eb, 2);
        let cond = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![],
        };
        let rows =
            evaluate_condition(&cond, &schema, &store, &eb, Window::from_origin(eb.now())).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["S"], Value::Ref(a));
        assert_eq!(rows[1]["S"], Value::Ref(b));
    }

    #[test]
    fn at_binds_time_variable() {
        let (schema, mut store, mut eb) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let oid = create_stock(&schema, &mut store, &mut eb, 1);
        store.modify(&schema, oid, q, Value::Int(2)).unwrap();
        eb.append(EventType::modify(stock, q), oid);
        store.modify(&schema, oid, q, Value::Int(3)).unwrap();
        eb.append(EventType::modify(stock, q), oid);
        // at(create <= modify(quantity), S, T): two instants (§3.3)
        let cond = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::At {
                expr: EventExpr::prim(EventType::create(stock))
                    .iprec(EventExpr::prim(EventType::modify(stock, q))),
                var: "S".into(),
                time_var: "T".into(),
            }],
        };
        let rows =
            evaluate_condition(&cond, &schema, &store, &eb, Window::from_origin(eb.now())).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["S"], Value::Ref(oid));
        assert_eq!(rows[0]["T"], Value::Time(2));
        assert_eq!(rows[1]["T"], Value::Time(3));
    }

    #[test]
    fn occurred_drops_deleted_objects() {
        let (schema, mut store, mut eb) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let oid = create_stock(&schema, &mut store, &mut eb, 1);
        store.delete(oid).unwrap();
        eb.append(EventType::delete(stock), oid);
        let cond = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock)),
                var: "S".into(),
            }],
        };
        let rows =
            evaluate_condition(&cond, &schema, &store, &eb, Window::from_origin(eb.now())).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn repeated_occurred_intersects() {
        let (schema, mut store, mut eb) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let a = create_stock(&schema, &mut store, &mut eb, 1);
        let _b = create_stock(&schema, &mut store, &mut eb, 2);
        store.modify(&schema, a, q, Value::Int(9)).unwrap();
        eb.append(EventType::modify(stock, q), a);
        let cond = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![
                Formula::Occurred {
                    expr: EventExpr::prim(EventType::create(stock)),
                    var: "S".into(),
                },
                Formula::Occurred {
                    expr: EventExpr::prim(EventType::modify(stock, q)),
                    var: "S".into(),
                },
            ],
        };
        let rows =
            evaluate_condition(&cond, &schema, &store, &eb, Window::from_origin(eb.now())).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["S"], Value::Ref(a));
    }

    #[test]
    fn formula_on_undeclared_variable_errors() {
        let (schema, store, eb) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let cond = Condition {
            decls: vec![],
            formulas: vec![Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock)),
                var: "S".into(),
            }],
        };
        assert!(matches!(
            evaluate_condition(&cond, &schema, &store, &eb, Window::from_origin(Timestamp(1))),
            Err(ExecError::UndeclaredFormulaVariable(_))
        ));
    }

    #[test]
    fn duplicate_declaration_errors() {
        let (schema, store, eb) = setup();
        let cond = Condition {
            decls: vec![
                VarDecl {
                    name: "S".into(),
                    class: "stock".into(),
                },
                VarDecl {
                    name: "S".into(),
                    class: "stock".into(),
                },
            ],
            formulas: vec![],
        };
        assert!(matches!(
            evaluate_condition(&cond, &schema, &store, &eb, Window::from_origin(Timestamp(1))),
            Err(ExecError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn term_arithmetic_and_errors() {
        let (schema, mut store, mut eb) = setup();
        let oid = create_stock(&schema, &mut store, &mut eb, 7);
        let mut row = Binding::new();
        row.insert("S".into(), Value::Ref(oid));
        let t = Term::Add(Box::new(Term::attr("S", "quantity")), Box::new(Term::int(3)));
        assert_eq!(eval_term(&t, &row, &schema, &store).unwrap(), Value::Int(10));
        let bad = Term::Add(
            Box::new(Term::Const(Value::Str("x".into()))),
            Box::new(Term::int(1)),
        );
        assert!(matches!(
            eval_term(&bad, &row, &schema, &store),
            Err(ExecError::BadTerm(_))
        ));
        assert!(matches!(
            eval_term(&Term::var("Z"), &row, &schema, &store),
            Err(ExecError::UnboundVariable(_))
        ));
        // Attr on a non-reference
        let mut row2 = Binding::new();
        row2.insert("S".into(), Value::Int(1));
        assert!(matches!(
            eval_term(&Term::attr("S", "quantity"), &row2, &schema, &store),
            Err(ExecError::BadTerm(_))
        ));
    }

    #[test]
    fn null_comparisons_fail_predicate() {
        let (schema, mut store, eb) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        // object with Null quantity (no default)
        store.create(&schema, stock, &[]).unwrap();
        let cond = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![Formula::Compare {
                lhs: Term::attr("S", "quantity"),
                op: CmpOp::Eq,
                rhs: Term::attr("S", "quantity"),
            }],
        };
        let rows =
            evaluate_condition(&cond, &schema, &store, &eb, Window::from_origin(Timestamp(1)))
                .unwrap();
        assert!(rows.is_empty(), "Null = Null must not hold");
    }
}
