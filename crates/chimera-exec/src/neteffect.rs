//! Net-effect derivation (§3.3 footnote).
//!
//! Old Chimera offered a `holds` predicate composing event types to
//! compute net effects. The paper notes it is subsumed by the calculus:
//! "net effect for the creation operation in presence of sequences of
//! modifications and deletions is given by the event formula
//! `create(C) += ( -=(delete(C)) )` …" — i.e. the instance-oriented
//! conjunction of the creation with the *absence* of a deletion on the
//! same object. These helpers spell out the three classic net effects.

use chimera_calculus::{occurred_objects, EventExpr};
use chimera_events::{EventBase, EventKind, EventType, Window};
use chimera_model::{AttrId, ClassId, Oid};

/// Objects *net-created* in the window: created and not subsequently
/// deleted — `create(C) += -=(delete(C))`.
pub fn net_created(eb: &EventBase, w: Window, class: ClassId) -> Vec<Oid> {
    let expr = EventExpr::prim(EventType::create(class))
        .iand(EventExpr::prim(EventType::delete(class)).inot());
    occurred_objects(&expr, eb, w).expect("well-formed net-effect expression")
}

/// Objects *net-deleted* in the window: deleted but **not** created inside
/// the window (a create+delete pair cancels out) —
/// `delete(C) += -=(create(C))`.
pub fn net_deleted(eb: &EventBase, w: Window, class: ClassId) -> Vec<Oid> {
    let expr = EventExpr::prim(EventType::delete(class))
        .iand(EventExpr::prim(EventType::create(class)).inot());
    occurred_objects(&expr, eb, w).expect("well-formed net-effect expression")
}

/// Objects *net-modified* on `attr` in the window: modified, still alive
/// (no later delete) and not net-created (a modify folded into a creation
/// is part of the create's net effect) —
/// `modify(C.a) += -=(delete(C)) += -=(create(C))`.
pub fn net_modified(eb: &EventBase, w: Window, class: ClassId, attr: AttrId) -> Vec<Oid> {
    let expr = EventExpr::prim(EventType::modify(class, attr))
        .iand(EventExpr::prim(EventType::delete(class)).inot())
        .iand(EventExpr::prim(EventType::create(class)).inot());
    occurred_objects(&expr, eb, w).expect("well-formed net-effect expression")
}

/// Does the event type denote an operation on `class`? Convenience used by
/// engine-level filtering.
pub fn on_class(ty: EventType, class: ClassId) -> bool {
    ty.class == class
}

/// Is the event kind a structural (create/delete/migration) operation?
pub fn is_structural(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Create | EventKind::Delete | EventKind::Generalize | EventKind::Specialize
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ClassId = ClassId(0);
    const A: AttrId = AttrId(0);

    #[test]
    fn create_then_delete_cancels() {
        let mut eb = EventBase::new();
        eb.append(EventType::create(C), Oid(1));
        eb.append(EventType::delete(C), Oid(1));
        eb.append(EventType::create(C), Oid(2));
        let w = Window::from_origin(eb.now());
        assert_eq!(net_created(&eb, w, C), vec![Oid(2)]);
        assert!(net_deleted(&eb, w, C).is_empty());
    }

    #[test]
    fn delete_of_preexisting_object_is_net_deleted() {
        let mut eb = EventBase::new();
        eb.append(EventType::delete(C), Oid(9));
        let w = Window::from_origin(eb.now());
        assert_eq!(net_deleted(&eb, w, C), vec![Oid(9)]);
        assert!(net_created(&eb, w, C).is_empty());
    }

    #[test]
    fn create_modify_sequence_is_net_create_only() {
        let mut eb = EventBase::new();
        eb.append(EventType::create(C), Oid(1));
        eb.append(EventType::modify(C, A), Oid(1));
        let w = Window::from_origin(eb.now());
        assert_eq!(net_created(&eb, w, C), vec![Oid(1)]);
        // modification folded into the creation
        assert!(net_modified(&eb, w, C, A).is_empty());
    }

    #[test]
    fn plain_modification_is_net_modified() {
        let mut eb = EventBase::new();
        eb.append(EventType::modify(C, A), Oid(3));
        let w = Window::from_origin(eb.now());
        assert_eq!(net_modified(&eb, w, C, A), vec![Oid(3)]);
    }

    #[test]
    fn modify_then_delete_is_net_delete_only() {
        let mut eb = EventBase::new();
        eb.append(EventType::modify(C, A), Oid(3));
        eb.append(EventType::delete(C), Oid(3));
        let w = Window::from_origin(eb.now());
        assert!(net_modified(&eb, w, C, A).is_empty());
        assert_eq!(net_deleted(&eb, w, C), vec![Oid(3)]);
    }

    #[test]
    fn helpers() {
        assert!(on_class(EventType::create(C), C));
        assert!(!on_class(EventType::create(ClassId(1)), C));
        assert!(is_structural(EventKind::Create));
        assert!(is_structural(EventKind::Generalize));
        assert!(!is_structural(EventKind::Modify(A)));
        assert!(!is_structural(EventKind::Select));
    }
}
