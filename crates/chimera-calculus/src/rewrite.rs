//! Algebraic laws of the calculus (§4.2) and a law-preserving simplifier.
//!
//! The paper's central design claim is that the twisted `ts` definitions
//! make the "obvious properties of calculus hold, such as De Morgan's
//! rules or distributivity, associativity and factoring of precedence
//! expressions". This module makes each law an explicit, testable object.
//!
//! Two equivalence strengths appear:
//!
//! * **strong** — identical `ts` value at every instant (activation stamp
//!   *and* the exact negative value when inactive);
//! * **weak** — identical activity and identical activation stamp when
//!   active (the negative values may differ; rule triggering only observes
//!   the sign, so weak equivalence preserves every observable behaviour).
//!
//! De Morgan, commutativity, associativity and double negation are strong;
//! the distributivity and precedence-factoring laws are weak (their
//! inactive branches can carry different `-ts` residues). The
//! `tests/algebraic_laws.rs` property suite verifies every law at its
//! declared strength, for both evaluators, on random histories.

use crate::expr::EventExpr;

/// Equivalence strength of a law (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strength {
    /// Exact `ts` equality at every instant.
    Strong,
    /// Same sign always; same activation stamp when active.
    Weak,
}

/// A named algebraic law: instantiating `build` with `arity` argument
/// expressions yields a `(lhs, rhs)` pair claimed equivalent.
#[derive(Clone, Copy)]
pub struct Law {
    /// Law name as cited in EXPERIMENTS.md.
    pub name: &'static str,
    /// Number of metavariables.
    pub arity: usize,
    /// Declared equivalence strength.
    pub strength: Strength,
    /// Some laws only hold when the metavariables are negation-free:
    /// `A < (B , C) ≡ (A < B) , (A < C)` evaluates `A` at *different*
    /// instants on the two sides, which negation's non-monotone `ts` can
    /// distinguish (see EXPERIMENTS.md for the counterexample).
    pub requires_negation_free: bool,
    /// Instantiate the two sides.
    pub build: fn(&[EventExpr]) -> (EventExpr, EventExpr),
}

impl std::fmt::Debug for Law {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Law")
            .field("name", &self.name)
            .field("arity", &self.arity)
            .field("strength", &self.strength)
            .finish()
    }
}

/// The §4.2 law catalogue (set-oriented level).
pub const LAWS: &[Law] = &[
    Law {
        name: "de-morgan-not-over-disjunction", // -(A , B) ≡ -A + -B
        arity: 2,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().or(a[1].clone()).not(),
                a[0].clone().not().and(a[1].clone().not()),
            )
        },
    },
    Law {
        name: "de-morgan-not-over-conjunction", // -(A + B) ≡ -A , -B
        arity: 2,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().and(a[1].clone()).not(),
                a[0].clone().not().or(a[1].clone().not()),
            )
        },
    },
    Law {
        name: "double-negation", // -(-A) ≡ A
        arity: 1,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| (a[0].clone().not().not(), a[0].clone()),
    },
    Law {
        name: "commutativity-conjunction", // A + B ≡ B + A
        arity: 2,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| (a[0].clone().and(a[1].clone()), a[1].clone().and(a[0].clone())),
    },
    Law {
        name: "commutativity-disjunction", // A , B ≡ B , A
        arity: 2,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| (a[0].clone().or(a[1].clone()), a[1].clone().or(a[0].clone())),
    },
    Law {
        name: "associativity-conjunction", // (A + B) + C ≡ A + (B + C)
        arity: 3,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().and(a[1].clone()).and(a[2].clone()),
                a[0].clone().and(a[1].clone().and(a[2].clone())),
            )
        },
    },
    Law {
        name: "associativity-disjunction", // (A , B) , C ≡ A , (B , C)
        arity: 3,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().or(a[1].clone()).or(a[2].clone()),
                a[0].clone().or(a[1].clone().or(a[2].clone())),
            )
        },
    },
    Law {
        name: "distributivity-conjunction-over-disjunction",
        // A + (B , C) ≡ (A + B) , (A + C)
        arity: 3,
        strength: Strength::Weak,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().and(a[1].clone().or(a[2].clone())),
                a[0].clone()
                    .and(a[1].clone())
                    .or(a[0].clone().and(a[2].clone())),
            )
        },
    },
    Law {
        name: "precedence-factoring-conjunction-left",
        // (A + B) < C ≡ (A < C) + (B < C)
        arity: 3,
        strength: Strength::Weak,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().and(a[1].clone()).prec(a[2].clone()),
                a[0].clone()
                    .prec(a[2].clone())
                    .and(a[1].clone().prec(a[2].clone())),
            )
        },
    },
    Law {
        name: "precedence-factoring-disjunction-left",
        // (A , B) < C ≡ (A < C) , (B < C)
        arity: 3,
        strength: Strength::Weak,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().or(a[1].clone()).prec(a[2].clone()),
                a[0].clone()
                    .prec(a[2].clone())
                    .or(a[1].clone().prec(a[2].clone())),
            )
        },
    },
    Law {
        name: "precedence-factoring-disjunction-right",
        // A < (B , C) ≡ (A < B) , (A < C) — negation-free arguments only:
        // the two sides probe A at or(B,C)'s stamp vs at B's and C's own
        // stamps, which differ observably when A can deactivate.
        arity: 3,
        strength: Strength::Weak,
        requires_negation_free: true,
        build: |a| {
            (
                a[0].clone().prec(a[1].clone().or(a[2].clone())),
                a[0].clone()
                    .prec(a[1].clone())
                    .or(a[0].clone().prec(a[2].clone())),
            )
        },
    },
];

/// The instance-oriented (per-object `ots`) analogues of the laws; §4.3:
/// "all the properties valid for the set-oriented operators can be easily
/// extended to the instance-oriented case". These hold as `ots`
/// identities; note that an `-=`-rooted rewrite changes the *boundary*
/// quantifier and is therefore **not** a set-level (`ts`) identity — see
/// `instance_de_morgan_is_not_a_boundary_identity` below.
pub const INSTANCE_LAWS: &[Law] = &[
    Law {
        name: "instance-de-morgan-not-over-disjunction",
        arity: 2,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().ior(a[1].clone()).inot(),
                a[0].clone().inot().iand(a[1].clone().inot()),
            )
        },
    },
    Law {
        name: "instance-double-negation",
        arity: 1,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| (a[0].clone().inot().inot(), a[0].clone()),
    },
    Law {
        name: "instance-commutativity-conjunction",
        arity: 2,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().iand(a[1].clone()),
                a[1].clone().iand(a[0].clone()),
            )
        },
    },
    Law {
        name: "instance-associativity-disjunction",
        arity: 3,
        strength: Strength::Strong,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().ior(a[1].clone()).ior(a[2].clone()),
                a[0].clone().ior(a[1].clone().ior(a[2].clone())),
            )
        },
    },
    Law {
        name: "instance-precedence-factoring-conjunction-left",
        arity: 3,
        strength: Strength::Weak,
        requires_negation_free: false,
        build: |a| {
            (
                a[0].clone().iand(a[1].clone()).iprec(a[2].clone()),
                a[0].clone()
                    .iprec(a[2].clone())
                    .iand(a[1].clone().iprec(a[2].clone())),
            )
        },
    },
];

/// Negation normal form for the **set-oriented** skeleton: push `-` inward
/// through `,`/`+` (De Morgan) and eliminate double negations. Instance
/// sub-expressions are left untouched — rewriting an `-=` root would
/// change the instance→set boundary quantifier (∃ vs ∄), which is not an
/// equivalence. Preserves strong `ts` equivalence.
pub fn nnf(expr: &EventExpr) -> EventExpr {
    match expr {
        EventExpr::Not(inner) => match inner.as_ref() {
            EventExpr::Not(e) => nnf(e),
            EventExpr::Or(a, b) => nnf(&a.clone().not()).and(nnf(&b.clone().not())),
            EventExpr::And(a, b) => nnf(&a.clone().not()).or(nnf(&b.clone().not())),
            // negation over precedence, primitives and instance roots is
            // irreducible.
            other => nnf(other).not(),
        },
        EventExpr::Or(a, b) => nnf(a).or(nnf(b)),
        EventExpr::And(a, b) => nnf(a).and(nnf(b)),
        EventExpr::Prec(a, b) => nnf(a).prec(nnf(b)),
        // primitives and instance-rooted subtrees pass through unchanged.
        other => other.clone(),
    }
}

/// Structural simplifier for the **set-oriented** skeleton:
/// double-negation elimination plus idempotence of identical operands
/// (`A + A → A`, `A , A → A`) — both strong `ts` identities.
///
/// Instance-rooted subtrees are left untouched, like in [`nnf`]: rewrites
/// that change the root operator of an instance subtree also change the
/// instance→set boundary quantifier (e.g. `-=(-=A)` means "*every*
/// affected object has A", which is not `A`), so they are not `ts`
/// identities even when the per-object `ots` identity holds.
pub fn simplify(expr: &EventExpr) -> EventExpr {
    match expr {
        EventExpr::Not(inner) => match simplify(inner) {
            EventExpr::Not(e) => *e,
            e => e.not(),
        },
        EventExpr::And(a, b) => {
            let (sa, sb) = (simplify(a), simplify(b));
            if sa == sb {
                sa
            } else {
                sa.and(sb)
            }
        }
        EventExpr::Or(a, b) => {
            let (sa, sb) = (simplify(a), simplify(b));
            if sa == sb {
                sa
            } else {
                sa.or(sb)
            }
        }
        EventExpr::Prec(a, b) => simplify(a).prec(simplify(b)),
        // primitives and instance-rooted subtrees pass through unchanged.
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ts::ts_logical;
    use chimera_events::{EventBase, EventType, Timestamp, Window};
    use chimera_model::{ClassId, Oid};

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    fn sample_history() -> EventBase {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(2), Timestamp(3));
        eb.append_at(et(0), Oid(2), Timestamp(5));
        eb.append_at(et(2), Oid(1), Timestamp(6));
        eb.append_at(et(1), Oid(1), Timestamp(8));
        eb
    }

    fn assert_law(law: &Law, args: &[EventExpr]) {
        let (lhs, rhs) = (law.build)(args);
        let eb = sample_history();
        let w = Window::from_origin(Timestamp(8));
        for t in 1..=8 {
            let lv = ts_logical(&lhs, &eb, w, Timestamp(t));
            let rv = ts_logical(&rhs, &eb, w, Timestamp(t));
            match law.strength {
                Strength::Strong => assert_eq!(lv, rv, "{} at t{t}", law.name),
                Strength::Weak => {
                    assert_eq!(lv.is_active(), rv.is_active(), "{} at t{t}", law.name);
                    if lv.is_active() {
                        assert_eq!(lv, rv, "{} stamps at t{t}", law.name);
                    }
                }
            }
        }
    }

    #[test]
    fn all_set_laws_hold_on_sample_history() {
        let args = [p(0), p(1), p(2)];
        for law in LAWS {
            assert_law(law, &args[..law.arity]);
        }
    }

    #[test]
    fn laws_hold_with_negated_arguments() {
        let args = [p(0).not(), p(1), p(2).not()];
        for law in LAWS.iter().filter(|l| !l.requires_negation_free) {
            assert_law(law, &args[..law.arity]);
        }
    }

    /// The documented counterexample for the negation-free restriction of
    /// `A < (B , C) ≡ (A < B) , (A < C)`: with A = -X, B@1, X@3, C@5 the
    /// right side resurrects an old witness (A active at B's stamp) that
    /// the left side, probing A at or(B,C)'s *latest* stamp, rejects.
    #[test]
    fn prec_disjunction_right_needs_negation_free() {
        let mut eb = EventBase::new();
        eb.append_at(et(1), Oid(1), Timestamp(1)); // B
        eb.append_at(et(3), Oid(1), Timestamp(3)); // X
        eb.append_at(et(2), Oid(1), Timestamp(5)); // C
        let w = Window::from_origin(Timestamp(5));
        let a = p(3).not();
        let lhs = a.clone().prec(p(1).or(p(2)));
        let rhs = a.clone().prec(p(1)).or(a.prec(p(2)));
        let lv = ts_logical(&lhs, &eb, w, Timestamp(5));
        let rv = ts_logical(&rhs, &eb, w, Timestamp(5));
        assert!(!lv.is_active());
        assert!(rv.is_active(), "the two sides genuinely differ");
    }

    #[test]
    fn laws_hold_with_composite_arguments() {
        let args = [p(0).and(p(1)), p(2).or(p(0)), p(1).prec(p(2))];
        for law in LAWS {
            assert_law(law, &args[..law.arity]);
        }
    }

    #[test]
    fn instance_laws_hold_per_object() {
        use crate::instance::ots_logical;
        let eb = {
            let mut eb = EventBase::new();
            eb.append_at(et(0), Oid(1), Timestamp(1));
            eb.append_at(et(1), Oid(1), Timestamp(3));
            eb.append_at(et(2), Oid(1), Timestamp(5));
            eb.append_at(et(0), Oid(2), Timestamp(7));
            eb
        };
        let w = Window::from_origin(Timestamp(7));
        let args = [p(0), p(1), p(2)];
        for law in INSTANCE_LAWS {
            let (lhs, rhs) = (law.build)(&args[..law.arity]);
            for oid in [Oid(1), Oid(2)] {
                for t in 1..=7 {
                    let lv = ots_logical(&lhs, &eb, w, Timestamp(t), oid);
                    let rv = ots_logical(&rhs, &eb, w, Timestamp(t), oid);
                    match law.strength {
                        Strength::Strong => {
                            assert_eq!(lv, rv, "{} {oid} t{t}", law.name)
                        }
                        Strength::Weak => {
                            assert_eq!(lv.is_active(), rv.is_active(), "{} {oid} t{t}", law.name);
                            if lv.is_active() {
                                assert_eq!(lv, rv, "{} {oid} t{t}", law.name);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Documents the boundary asymmetry: instance De Morgan is an `ots`
    /// identity but NOT a `ts` identity when the `-=` root crosses the
    /// instance→set boundary (∄-object vs ∃-object quantification).
    #[test]
    fn instance_de_morgan_is_not_a_boundary_identity() {
        // A on O1 only, B on O2 only.
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(2), Timestamp(2));
        let w = Window::from_origin(Timestamp(2));
        let lhs = p(0).ior(p(1)).inot(); // ∄ object with (A or B) → inactive
        let rhs = p(0).inot().iand(p(1).inot()); // ∃ object with neither → ?
        let lv = ts_logical(&lhs, &eb, w, Timestamp(2));
        let rv = ts_logical(&rhs, &eb, w, Timestamp(2));
        assert!(!lv.is_active(), "some object has A or B");
        // O1 lacks B but has A; O2 lacks A but has B → no object with
        // neither → rhs inactive as well *on this history*; use a third
        // object to separate:
        let mut eb2 = EventBase::new();
        eb2.append_at(et(0), Oid(1), Timestamp(1));
        eb2.append_at(et(1), Oid(2), Timestamp(2));
        eb2.append_at(et(2), Oid(3), Timestamp(3)); // O3 has neither A nor B
        let w2 = Window::from_origin(Timestamp(3));
        let lv2 = ts_logical(&lhs, &eb2, w2, Timestamp(3));
        let rv2 = ts_logical(&rhs, &eb2, w2, Timestamp(3));
        assert!(!lv2.is_active(), "O1 still has A");
        assert!(rv2.is_active(), "O3 activates the ∃ reading");
        let _ = (lv, rv);
    }

    #[test]
    fn nnf_pushes_negation_inward() {
        let e = p(0).or(p(1)).not();
        let n = nnf(&e);
        assert_eq!(n, p(0).not().and(p(1).not()));
        let e2 = p(0).and(p(1)).not().not();
        assert_eq!(nnf(&e2), p(0).and(p(1)));
        // negation over precedence is irreducible
        let e3 = p(0).prec(p(1)).not();
        assert_eq!(nnf(&e3), e3);
        // instance subtrees untouched
        let e4 = p(0).ior(p(1)).inot().not();
        assert_eq!(nnf(&e4), e4);
    }

    #[test]
    fn nnf_preserves_ts() {
        let eb = sample_history();
        let w = Window::from_origin(Timestamp(8));
        let exprs = [
            p(0).or(p(1)).not(),
            p(0).and(p(1)).not().or(p(2)),
            p(0).not().not().and(p(1).or(p(2)).not()),
            p(0).prec(p(1)).not().not(),
        ];
        for e in &exprs {
            let n = nnf(e);
            for t in 1..=8 {
                assert_eq!(
                    ts_logical(e, &eb, w, Timestamp(t)),
                    ts_logical(&n, &eb, w, Timestamp(t)),
                    "{e} vs {n} at t{t}"
                );
            }
        }
    }

    #[test]
    fn simplify_removes_double_negation_and_idempotence() {
        assert_eq!(simplify(&p(0).not().not()), p(0));
        assert_eq!(simplify(&p(0).and(p(0))), p(0));
        assert_eq!(simplify(&p(0).or(p(0))), p(0));
        // nested: -(-(A + A)) → A
        assert_eq!(simplify(&p(0).and(p(0)).not().not()), p(0));
        // precedence operands simplified but structure kept
        assert_eq!(
            simplify(&p(0).not().not().prec(p(1))),
            p(0).prec(p(1))
        );
        // instance subtrees are NOT rewritten (boundary quantifier!)
        assert_eq!(simplify(&p(0).inot().inot()), p(0).inot().inot());
        assert_eq!(simplify(&p(0).iand(p(0))), p(0).iand(p(0)));
    }

    /// The boundary counterexample that makes instance rewrites in
    /// `simplify` unsound: `-=(-=A)` in set context is "every affected
    /// object has A", which `A` is not.
    #[test]
    fn simplify_boundary_soundness_counterexample() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1)); // A on O1
        eb.append_at(et(1), Oid(2), Timestamp(2)); // B on O2 (no A)
        let w = Window::from_origin(Timestamp(2));
        let dd = p(0).inot().inot();
        assert!(ts_logical(&p(0), &eb, w, Timestamp(2)).is_active());
        assert!(
            !ts_logical(&dd, &eb, w, Timestamp(2)).is_active(),
            "∀-object reading differs from plain A"
        );
    }

    #[test]
    fn simplify_preserves_ts() {
        let eb = sample_history();
        let w = Window::from_origin(Timestamp(8));
        let exprs = [
            p(0).not().not().or(p(1).and(p(1))),
            p(0).or(p(0)).prec(p(1).not().not()),
            p(0).iand(p(0)).and(p(2)).not().not(),
        ];
        for e in &exprs {
            let s = simplify(e);
            assert!(s.size() <= e.size());
            for t in 1..=8 {
                assert_eq!(
                    ts_logical(e, &eb, w, Timestamp(t)),
                    ts_logical(&s, &eb, w, Timestamp(t)),
                    "{e} vs {s} at t{t}"
                );
            }
        }
    }

    #[test]
    fn law_debug_and_metadata() {
        assert!(LAWS.len() >= 10, "§4.2 lists ten equivalences");
        for law in LAWS {
            assert!(law.arity >= 1 && law.arity <= 3);
            let dbg = format!("{law:?}");
            assert!(dbg.contains(law.name));
        }
    }
}
