//! Property suite for the compiled evaluation plans (`calculus::plan`):
//! the planned boundary evaluation must agree **bit for bit** with the
//! existing recursive `boundary_ts_logical` / `boundary_ts_algebraic`
//! definitions on random expressions × random event histories, at every
//! arrival instant, earlier probe instants, gap instants, and across both
//! full and consumed (shifted lower-bound) windows.
//!
//! Run with `PROPTEST_CASES=256` locally for the PR-2 acceptance bar.

use chimera::calculus::{
    boundary_ts_algebraic, boundary_ts_logical, ts_algebraic, ts_algebraic_interpreted,
    ts_logical, ts_logical_interpreted, PlanEval,
};
use chimera::events::{EventBase, EventType, Timestamp, Window};
use chimera::model::{ClassId, Oid};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

/// A random history over 5 types × 4 objects with occasional gap ticks.
fn random_history(seed: u64, len: usize) -> EventBase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eb = EventBase::new();
    for _ in 0..len {
        if rng.random_bool(0.15) {
            eb.tick();
        }
        eb.append(et(rng.random_range(0..5u32)), Oid(rng.random_range(1..5u64)));
    }
    eb.tick(); // a gap instant after the last arrival
    eb
}

/// Probe instants: every instant of the history, `1..=now`.
fn probes(eb: &EventBase) -> Vec<Timestamp> {
    (1..=eb.now().raw()).map(Timestamp).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Instance-rooted expressions: the plan against *both* recursive
    /// boundary styles, over full and consumed windows.
    #[test]
    fn plan_matches_recursive_boundaries(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..24,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 5,
            max_depth: 4,
            instance_prob: 1.0,
            negation_prob: 0.35,
            seed: expr_seed,
        });
        let expr = g.generate_instance();
        let eb = random_history(stream_seed, len);
        let mut pe = PlanEval::compile(&expr).unwrap();
        let now = eb.now();
        let mid = Timestamp(now.raw() / 2);
        for w in [Window::from_origin(now), Window::new(mid, now)] {
            for t in probes(&eb) {
                let got = pe.eval(&eb, w, t);
                prop_assert_eq!(
                    got,
                    boundary_ts_logical(&expr, &eb, w, t),
                    "logical: {} over {:?} at {}", &expr, w, t
                );
                prop_assert_eq!(
                    got,
                    boundary_ts_algebraic(&expr, &eb, w, t),
                    "algebraic: {} over {:?} at {}", &expr, w, t
                );
            }
        }
    }

    /// General (set ∘ instance) expressions: the planned dispatch inside
    /// `ts_logical`/`ts_algebraic` against the fully recursive
    /// interpreters, plus a direct `PlanEval` on the whole expression.
    #[test]
    fn planned_ts_matches_interpreted_ts(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..24,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 5,
            max_depth: 4,
            instance_prob: 0.4,
            negation_prob: 0.3,
            seed: expr_seed,
        });
        let expr = g.generate();
        let eb = random_history(stream_seed, len);
        let mut pe = PlanEval::compile(&expr).unwrap();
        let now = eb.now();
        let mid = Timestamp(now.raw() / 2);
        for w in [Window::from_origin(now), Window::new(mid, now)] {
            for t in probes(&eb) {
                let want = ts_logical_interpreted(&expr, &eb, w, t);
                prop_assert_eq!(
                    ts_logical(&expr, &eb, w, t), want,
                    "planned ts_logical: {} over {:?} at {}", &expr, w, t
                );
                prop_assert_eq!(
                    pe.eval(&eb, w, t), want,
                    "whole-expression plan: {} over {:?} at {}", &expr, w, t
                );
                prop_assert_eq!(
                    ts_algebraic(&expr, &eb, w, t),
                    ts_algebraic_interpreted(&expr, &eb, w, t),
                    "planned ts_algebraic: {} over {:?} at {}", &expr, w, t
                );
            }
        }
    }

    /// Interleaved growth: one evaluator observing a growing event base
    /// (epoch invalidation) stays exact at every step.
    #[test]
    fn plan_scratch_tracks_growing_history(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 1usize..20,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 3,
            instance_prob: 1.0,
            negation_prob: 0.4,
            seed: expr_seed,
        });
        let expr = g.generate_instance();
        let mut pe = PlanEval::compile(&expr).unwrap();
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let mut eb = EventBase::new();
        for _ in 0..len {
            eb.append(et(rng.random_range(0..4u32)), Oid(rng.random_range(1..4u64)));
            let now = eb.now();
            let w = Window::from_origin(now);
            // two probes per arrival: the memoized repeat must agree too
            for _ in 0..2 {
                prop_assert_eq!(
                    pe.eval(&eb, w, now),
                    boundary_ts_logical(&expr, &eb, w, now),
                    "{} at {}", &expr, now
                );
            }
        }
    }
}
