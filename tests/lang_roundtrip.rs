//! Property suite for the surface language: printing any well-formed
//! event expression and reparsing it yields the identical AST, and full
//! trigger declarations survive a print/parse cycle.

use chimera::lang::{parse_event_expr, parse_program, print_event_expr, print_trigger};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;

const SCHEMA_SRC: &str = "
define class c0 attributes x: integer end
define class c1 attributes x: integer end
define class c2 attributes x: integer end
";

/// Map the generator's external event types onto parseable schema events
/// (create/delete/modify over three classes).
fn to_parseable(e: &chimera::calculus::EventExpr, schema: &chimera::model::Schema) -> chimera::calculus::EventExpr {
    use chimera::calculus::EventExpr;
    use chimera::events::{EventKind, EventType};
    let remap = |ty: &EventType| -> EventType {
        let n = match ty.kind {
            EventKind::External(n) => n,
            _ => 0,
        };
        let class = chimera::model::ClassId(n % 3);
        match n % 4 {
            0 => EventType::create(class),
            1 => EventType::delete(class),
            2 => {
                let attr = schema.attr_by_name(class, "x").unwrap();
                EventType::modify(class, attr)
            }
            // external events round-trip natively: `external(cK#n)`
            _ => EventType::external(class, n),
        }
    };
    fn walk(
        e: &chimera::calculus::EventExpr,
        remap: &dyn Fn(&chimera::events::EventType) -> chimera::events::EventType,
    ) -> chimera::calculus::EventExpr {
        match e {
            EventExpr::Prim(ty) => EventExpr::Prim(remap(ty)),
            EventExpr::Or(a, b) => walk(a, remap).or(walk(b, remap)),
            EventExpr::And(a, b) => walk(a, remap).and(walk(b, remap)),
            EventExpr::Not(a) => walk(a, remap).not(),
            EventExpr::Prec(a, b) => walk(a, remap).prec(walk(b, remap)),
            EventExpr::IOr(a, b) => walk(a, remap).ior(walk(b, remap)),
            EventExpr::IAnd(a, b) => walk(a, remap).iand(walk(b, remap)),
            EventExpr::INot(a) => walk(a, remap).inot(),
            EventExpr::IPrec(a, b) => walk(a, remap).iprec(walk(b, remap)),
        }
    }
    walk(e, &remap)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn event_expr_print_parse_roundtrip(seed in any::<u64>(), depth in 1usize..6) {
        let (_, schema) = parse_program(SCHEMA_SRC).unwrap();
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 6,
            max_depth: depth,
            instance_prob: 0.4,
            negation_prob: 0.35,
            seed,
        });
        let e = to_parseable(&g.generate(), &schema);
        let printed = print_event_expr(&e, &schema);
        let back = parse_event_expr(&printed, &schema, None)
            .map_err(|err| TestCaseError::fail(format!("`{printed}`: {err}")))?;
        prop_assert_eq!(back, e, "printed as `{}`", printed);
    }
}

#[test]
fn full_trigger_roundtrip() {
    let src = format!(
        "{SCHEMA_SRC}
define deferred preserving trigger audit for c0
  events (create , delete) + -modify(x)
  condition c0(S), occurred(create +=  -=delete, S),
            S.x >= 0, S.x != 99
  actions modify(S.x, S.x * 2 - 1);
          delete(S)
  priority -2
end"
    );
    let (prog, schema) = parse_program(&src).unwrap();
    let t = prog.triggers().next().unwrap();
    let printed = print_trigger(t, &schema);
    let (prog2, _) = parse_program(&format!("{SCHEMA_SRC}\n{printed}"))
        .unwrap_or_else(|e| panic!("reparsing failed:\n{printed}\n{e}"));
    assert_eq!(prog2.triggers().next().unwrap(), t, "\n{printed}");
}

#[test]
fn parse_errors_have_positions() {
    let err = parse_program("define class c attributes x: integer end\ndefine trigger t for c events bogus(c) end").unwrap_err();
    assert!(err.span.line >= 2, "{err}");
    let err2 = parse_program("define class c attributes x: nosuchtype end").unwrap_err();
    assert!(err2.to_string().contains("unknown attribute type"));
}
