//! Instance-oriented `ots` semantics (§4.3) and the instance→set boundary.
//!
//! `ots(E, t, oid)` is the per-object analogue of `ts`: it considers only
//! the occurrences affecting `oid`. The operators compose exactly as in the
//! set-oriented case, with per-object lookups at the leaves.
//!
//! ## The boundary (instance expression in set context)
//!
//! When an instance-oriented expression appears as operand of a
//! set-oriented operator, the paper's prose (§3.2) fixes the semantics:
//!
//! * conjunction / disjunction / precedence root: active iff **there is at
//!   least one object** the expression is active for —
//!   `ts(E,t) = max over oid of ots(E,t,oid)`;
//! * negation root `-=F`: active iff **there is no object** `F` is active
//!   for — `ts(-=F,t) = −max over oid of ots(F,t,oid)`.
//!
//! (The scanned formulas in §4.3 garble the min/max quantifiers; DESIGN.md
//! §3 records why the prose reading is the authoritative one.)
//!
//! The quantification domain is the set of objects affected inside the
//! window by the expression's own primitive event types; when the
//! expression contains an inner `-=` (and can therefore be active for an
//! object with no matching occurrences at all) the domain widens to every
//! object affected in the window.

use crate::expr::EventExpr;
use crate::ts::{u, TsVal};
use chimera_events::{EventBase, EventType, Timestamp, Window};
use chimera_model::Oid;
use std::sync::Arc;

/// `ots` of a primitive for one object.
fn ots_prim(eb: &EventBase, w: Window, t: Timestamp, ty: EventType, oid: Oid) -> TsVal {
    match eb.last_of_type_obj_in(ty, oid, w.clip_upto(t)) {
        Some(stamp) => TsVal::active(stamp),
        None => TsVal::inactive(t),
    }
}

/// Logical-style `ots(E, t, oid)` (§4.3). `E` must be instance-oriented
/// (validated expressions guarantee this; set operators below an instance
/// operator are rejected by [`EventExpr::validate`]).
pub fn ots_logical(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp, oid: Oid) -> TsVal {
    match expr {
        EventExpr::Prim(ty) => ots_prim(eb, w, t, *ty, oid),
        EventExpr::INot(e) => ots_logical(e, eb, w, t, oid).negate(),
        EventExpr::IAnd(a, b) => {
            let ta = ots_logical(a, eb, w, t, oid);
            let tb = ots_logical(b, eb, w, t, oid);
            if ta.is_active() && tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::IOr(a, b) => {
            let ta = ots_logical(a, eb, w, t, oid);
            let tb = ots_logical(b, eb, w, t, oid);
            if ta.is_active() || tb.is_active() {
                ta.max(tb)
            } else {
                ta.min(tb)
            }
        }
        EventExpr::IPrec(a, b) => {
            let tb = ots_logical(b, eb, w, t, oid);
            match tb.activation() {
                Some(b_stamp) => {
                    let ta_at_b = ots_logical(a, eb, w, b_stamp, oid);
                    if ta_at_b.is_active() {
                        tb
                    } else {
                        TsVal::inactive(t)
                    }
                }
                None => TsVal::inactive(t),
            }
        }
        // set-oriented operators have no per-object semantics; validated
        // expressions never reach here.
        _ => unreachable!("set-oriented operator inside instance evaluation: {expr}"),
    }
}

/// Algebraic-style `ots(E, t, oid)` — the §4.3 `u`-product formulas.
pub fn ots_algebraic(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp, oid: Oid) -> TsVal {
    match expr {
        EventExpr::Prim(ty) => ots_prim(eb, w, t, *ty, oid),
        EventExpr::INot(e) => TsVal(-ots_algebraic(e, eb, w, t, oid).0),
        EventExpr::IAnd(a, b) => {
            let x = ots_algebraic(a, eb, w, t, oid).0;
            let y = ots_algebraic(b, eb, w, t, oid).0;
            let both = u(x) * u(y);
            TsVal(x.min(y) * (1 - both) + x.max(y) * both)
        }
        EventExpr::IOr(a, b) => {
            let x = ots_algebraic(a, eb, w, t, oid).0;
            let y = ots_algebraic(b, eb, w, t, oid).0;
            let neither = u(-x) * u(-y);
            TsVal(x.max(y) * (1 - neither) + x.min(y) * neither)
        }
        EventExpr::IPrec(a, b) => {
            let y = ots_algebraic(b, eb, w, t, oid).0;
            let g = u(y);
            let z = if g == 1 {
                ots_algebraic(a, eb, w, Timestamp(y as u64), oid).0
            } else {
                -1
            };
            let hit = g * u(z);
            TsVal(-t.as_signed() * (1 - hit) + y * hit)
        }
        _ => unreachable!("set-oriented operator inside instance evaluation: {expr}"),
    }
}

/// Quantification domain for the boundary: the objects that could make the
/// instance expression active inside `w` up to `t` (a shared slice out of
/// the event base's domain cache).
pub(crate) fn boundary_domain(
    expr: &EventExpr,
    eb: &EventBase,
    w: Window,
    t: Timestamp,
) -> Arc<[Oid]> {
    let clipped = w.clip_upto(t);
    if expr.contains_negation() {
        // inner -= can make the expression active for objects that have no
        // occurrence of its own primitives; widen to all affected objects.
        eb.objects_in(clipped)
    } else {
        eb.objects_of_types_in(&expr.primitives(), clipped)
    }
}

/// §4.3 "ots to ts": fold an instance-rooted expression into set context,
/// logical-style evaluation.
///
/// This is the *recursive reference* definition — it walks the tree once
/// per domain object. The production path behind [`crate::ts_logical`]
/// evaluates the same function through a compiled plan ([`crate::plan`]);
/// `tests/plan_equivalence.rs` asserts the two agree bit for bit.
pub fn boundary_ts_logical(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
    match expr {
        EventExpr::INot(inner) => {
            // active iff no object activates `inner`.
            let dom = boundary_domain(inner, eb, w, t);
            let worst = dom
                .iter()
                .map(|&oid| ots_logical(inner, eb, w, t, oid))
                .max();
            match worst {
                Some(v) if v.is_active() => v.negate(), // ∃ active object → inactive
                Some(_) | None => TsVal::active(t),     // nobody active → active "now"
            }
        }
        _ => {
            let dom = boundary_domain(expr, eb, w, t);
            dom.iter()
                .map(|&oid| ots_logical(expr, eb, w, t, oid))
                .max()
                .unwrap_or(TsVal::inactive(t))
        }
    }
}

/// §4.3 "ots to ts", algebraic-style evaluation (recursive reference,
/// like [`boundary_ts_logical`]).
pub fn boundary_ts_algebraic(expr: &EventExpr, eb: &EventBase, w: Window, t: Timestamp) -> TsVal {
    match expr {
        EventExpr::INot(inner) => {
            let dom = boundary_domain(inner, eb, w, t);
            let max = dom
                .iter()
                .map(|&oid| ots_algebraic(inner, eb, w, t, oid).0)
                .max();
            match max {
                Some(m) => TsVal(-m * u(m) + t.as_signed() * (1 - u(m))),
                None => TsVal::active(t),
            }
        }
        _ => {
            let dom = boundary_domain(expr, eb, w, t);
            dom.iter()
                .map(|&oid| ots_algebraic(expr, eb, w, t, oid))
                .max()
                .unwrap_or(TsVal::inactive(t))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ts::{ts_algebraic, ts_logical};
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }
    fn ots(expr: &EventExpr, eb: &EventBase, w: Window, t: u64, oid: u64) -> TsVal {
        let l = ots_logical(expr, eb, w, Timestamp(t), Oid(oid));
        let a = ots_algebraic(expr, eb, w, Timestamp(t), Oid(oid));
        assert_eq!(l, a, "logical/algebraic ots disagree on {expr}");
        l
    }
    fn ts(expr: &EventExpr, eb: &EventBase, w: Window, t: u64) -> TsVal {
        let l = ts_logical(expr, eb, w, Timestamp(t));
        let a = ts_algebraic(expr, eb, w, Timestamp(t));
        assert_eq!(l, a, "logical/algebraic ts disagree on {expr}");
        l
    }

    /// §3.2 primitive: create on O1 at t1=1, on O2 at t2=5.
    #[test]
    fn section32_primitive_per_object() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(0), Oid(2), Timestamp(5));
        eb.tick();
        let w = Window::from_origin(Timestamp(6));
        let e = p(0);
        assert_eq!(ots(&e, &eb, w, 3, 1), TsVal(1)); // active for O1
        assert!(!ots(&e, &eb, w, 3, 2).is_active()); // not yet for O2
        assert_eq!(ots(&e, &eb, w, 6, 1), TsVal(1)); // still t1 for O1
        assert_eq!(ots(&e, &eb, w, 6, 2), TsVal(5)); // t2 for O2
    }

    /// §3.2 instance conjunction: create += modify on the same object.
    #[test]
    fn section32_instance_conjunction() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1)); // create O1
        eb.append_at(et(0), Oid(2), Timestamp(2)); // create O2
        eb.append_at(et(1), Oid(1), Timestamp(3)); // modify O1
        let w = Window::from_origin(Timestamp(3));
        let e = p(0).iand(p(1));
        assert_eq!(ots(&e, &eb, w, 3, 1), TsVal(3)); // both on O1
        assert!(!ots(&e, &eb, w, 3, 2).is_active()); // O2 only created
    }

    /// §3.2 instance disjunction timeline (adapted: the paper gives both
    /// modifies the same stamp t3; the logical clock forces distinct
    /// stamps 7 and 8, which does not change any activity transition).
    #[test]
    fn section32_instance_disjunction() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1)); // create O1   (t1)
        eb.append_at(et(0), Oid(2), Timestamp(5)); // create O2   (t2)
        eb.append_at(et(1), Oid(1), Timestamp(7)); // modify O1   (t3)
        eb.append_at(et(1), Oid(3), Timestamp(8)); // modify O3   (t3')
        let w = Window::from_origin(Timestamp(8));
        let e = p(0).ior(p(1));
        // before anything: inactive for all three
        assert!(!ots(&e, &eb, w, 1, 2).is_active());
        // t1 ≤ t < t2: active only for O1, stamp t1
        assert_eq!(ots(&e, &eb, w, 3, 1), TsVal(1));
        assert!(!ots(&e, &eb, w, 3, 2).is_active());
        assert!(!ots(&e, &eb, w, 3, 3).is_active());
        // t2 ≤ t < t3: O1 keeps t1, O2 now active with t2
        assert_eq!(ots(&e, &eb, w, 6, 1), TsVal(1));
        assert_eq!(ots(&e, &eb, w, 6, 2), TsVal(5));
        // after the modifies: O1's stamp advances, O3 becomes active
        assert_eq!(ots(&e, &eb, w, 8, 1), TsVal(7));
        assert_eq!(ots(&e, &eb, w, 8, 2), TsVal(5));
        assert_eq!(ots(&e, &eb, w, 8, 3), TsVal(8));
    }

    /// §3.2 instance negation: creates on O1 (t1) and O2 (t2).
    #[test]
    fn section32_instance_negation() {
        let mut eb = EventBase::new();
        eb.tick(); // t1 = 1 used as probe before any create
        eb.append_at(et(0), Oid(1), Timestamp(2));
        eb.append_at(et(0), Oid(2), Timestamp(5));
        let w = Window::from_origin(Timestamp(5));
        let e = p(0).inot();
        // before the first create: active for both, stamp = now
        assert_eq!(ots(&e, &eb, w, 1, 1), TsVal(1));
        assert_eq!(ots(&e, &eb, w, 1, 2), TsVal(1));
        // between: inactive for O1, still active for O2
        assert!(!ots(&e, &eb, w, 3, 1).is_active());
        assert_eq!(ots(&e, &eb, w, 3, 2), TsVal(3));
        // after both: inactive for both
        assert!(!ots(&e, &eb, w, 5, 1).is_active());
        assert!(!ots(&e, &eb, w, 5, 2).is_active());
    }

    /// §3.2 instance precedence: two modify(min_qty) on O1 (t1, t2), one
    /// modify(qty) on O1 (t3), t1 < t2 < t3.
    #[test]
    fn section32_instance_precedence() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(0), Oid(1), Timestamp(4));
        eb.append_at(et(1), Oid(1), Timestamp(6));
        let w = Window::from_origin(Timestamp(6));
        let e = p(0).iprec(p(1));
        assert!(!ots(&e, &eb, w, 2, 1).is_active());
        assert!(!ots(&e, &eb, w, 5, 1).is_active());
        assert_eq!(ots(&e, &eb, w, 6, 1), TsVal(6));
        // and only for that object
        assert!(!ots(&e, &eb, w, 6, 2).is_active());
    }

    /// §3.2 contrast: instance conjunction in set context vs set
    /// conjunction — different objects satisfy the set version only.
    #[test]
    fn section32_boundary_conjunction_contrast() {
        // create on O1, modify on O2 (never both on one object)
        let mut eb = EventBase::new();
        eb.append_at(et(9), Oid(5), Timestamp(1)); // modify(show.qty) on O5
        eb.append_at(et(0), Oid(1), Timestamp(2));
        eb.append_at(et(1), Oid(2), Timestamp(3));
        let w = Window::from_origin(Timestamp(3));
        // modify(show) + (create += modify): inactive (no single object)
        let inst = p(9).and(p(0).iand(p(1)));
        assert!(!ts(&inst, &eb, w, 3).is_active());
        // modify(show) + (create + modify): active (set-oriented)
        let set = p(9).and(p(0).and(p(1)));
        assert!(ts(&set, &eb, w, 3).is_active());
        // same object case: both become active
        let mut eb2 = EventBase::new();
        eb2.append_at(et(9), Oid(5), Timestamp(1));
        eb2.append_at(et(0), Oid(1), Timestamp(2));
        eb2.append_at(et(1), Oid(1), Timestamp(3));
        let w2 = Window::from_origin(Timestamp(3));
        assert!(ts(&inst, &eb2, w2, 3).is_active());
        assert!(ts(&set, &eb2, w2, 3).is_active());
    }

    /// §3.2 contrast: instance disjunction of primitives in set context is
    /// equivalent to set disjunction (the paper notes the effect is the
    /// same; the operator exists for orthogonality).
    #[test]
    fn section32_boundary_disjunction_equivalence() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(2));
        eb.append_at(et(1), Oid(2), Timestamp(4));
        let w = Window::from_origin(Timestamp(4));
        for t in 1..=4 {
            assert_eq!(
                ts(&p(0).ior(p(1)), &eb, w, t),
                ts(&p(0).or(p(1)), &eb, w, t),
                "t={t}"
            );
        }
    }

    /// §3.2 contrast: -=(create += modify) vs (-create + -modify).
    #[test]
    fn section32_boundary_negation_contrast() {
        // events on different objects: no object has both → -= active;
        // but both primitives occurred → set version inactive.
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(2), Timestamp(2));
        let w = Window::from_origin(Timestamp(2));
        let inst = p(0).iand(p(1)).inot();
        let set = p(0).not().and(p(1).not());
        assert!(ts(&inst, &eb, w, 2).is_active());
        assert!(!ts(&set, &eb, w, 2).is_active());
        // same object: both inactive
        let mut eb2 = EventBase::new();
        eb2.append_at(et(0), Oid(1), Timestamp(1));
        eb2.append_at(et(1), Oid(1), Timestamp(2));
        let w2 = Window::from_origin(Timestamp(2));
        assert!(!ts(&inst, &eb2, w2, 2).is_active());
        assert!(!ts(&set, &eb2, w2, 2).is_active());
    }

    /// Paper §3.2: -= applied to an *elementary* event type in set context
    /// equals the set-oriented negation.
    #[test]
    fn elementary_inot_equals_not() {
        let mut eb = EventBase::new();
        eb.tick();
        eb.append_at(et(0), Oid(1), Timestamp(2));
        eb.append_at(et(1), Oid(2), Timestamp(3));
        let w = Window::from_origin(Timestamp(3));
        for t in 1..=3 {
            assert_eq!(
                ts(&p(0).inot(), &eb, w, t).is_active(),
                ts(&p(0).not(), &eb, w, t).is_active(),
                "t={t}"
            );
        }
    }

    /// §3.2 contrast: instance precedence in set context vs set precedence.
    #[test]
    fn section32_boundary_precedence_contrast() {
        // create on O1 at t1, modify on O2 at t2: sequence across objects.
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(2), Timestamp(2));
        let w = Window::from_origin(Timestamp(2));
        let inst = p(0).iprec(p(1));
        let set = p(0).prec(p(1));
        assert!(!ts(&inst, &eb, w, 2).is_active()); // not on one object
        assert!(ts(&set, &eb, w, 2).is_active()); // set-level order holds
    }

    #[test]
    fn boundary_empty_domain() {
        let eb = EventBase::new();
        let w = Window::from_origin(Timestamp(4));
        // no objects at all: ∃-rooted boundary inactive, -= boundary active
        assert!(!ts(&p(0).iand(p(1)), &eb, w, 4).is_active());
        assert_eq!(ts(&p(0).iand(p(1)).inot(), &eb, w, 4), TsVal(4));
    }

    #[test]
    fn boundary_takes_max_over_objects() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(1), Timestamp(2)); // O1 complete at 2
        eb.append_at(et(0), Oid(2), Timestamp(3));
        eb.append_at(et(1), Oid(2), Timestamp(4)); // O2 complete at 4
        let w = Window::from_origin(Timestamp(4));
        assert_eq!(ts(&p(0).iand(p(1)), &eb, w, 4), TsVal(4));
        assert_eq!(ts(&p(0).iand(p(1)), &eb, w, 3), TsVal(2));
    }

    #[test]
    fn nested_inot_boundary_is_forall() {
        // -=(-=A) in set context: active iff every affected object has A.
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1)); // A on O1
        eb.append_at(et(1), Oid(2), Timestamp(2)); // B on O2 (no A!)
        let w = Window::from_origin(Timestamp(2));
        let e = p(0).inot().inot();
        assert!(!ts(&e, &eb, w, 2).is_active(), "O2 lacks A");
        let mut eb2 = EventBase::new();
        eb2.append_at(et(0), Oid(1), Timestamp(1));
        eb2.append_at(et(0), Oid(2), Timestamp(2));
        let w2 = Window::from_origin(Timestamp(2));
        assert!(ts(&e, &eb2, w2, 2).is_active(), "all objects have A");
    }
}
