//! Condition ASTs: the logical formula evaluated at rule consideration.
//!
//! A Chimera condition (§2) declares set-oriented variables over classes
//! (`stock(S)`), binds objects affected by events through *event formulas*
//! (`occurred(create, S)`, `at(create <= modify(quantity), S, T)`), and
//! constrains them with comparison predicates
//! (`S.quantity > S.max_quantity`). Evaluation (in `chimera-exec`)
//! produces the set of variable bindings for which every formula holds;
//! the action then runs once, set-oriented, over all bindings.

use chimera_calculus::EventExpr;
use chimera_model::Value;
use std::fmt;

/// A set-oriented variable declaration, e.g. `stock(S)`.
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Class name the variable ranges over (includes subclasses).
    pub class: String,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Value-producing terms inside conditions and actions.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Literal constant.
    Const(Value),
    /// Attribute access `Var.attr`.
    Attr {
        /// Variable name.
        var: String,
        /// Attribute name (resolved against the variable's class).
        attr: String,
    },
    /// A bound variable itself — an object reference for class variables,
    /// a time value for `at`-bound time variables.
    Var(String),
    /// Arithmetic `lhs + rhs`.
    Add(Box<Term>, Box<Term>),
    /// Arithmetic `lhs - rhs`.
    Sub(Box<Term>, Box<Term>),
    /// Arithmetic `lhs * rhs`.
    Mul(Box<Term>, Box<Term>),
}

impl Term {
    /// Literal integer convenience.
    pub fn int(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }
    /// Attribute access convenience.
    pub fn attr(var: impl Into<String>, attr: impl Into<String>) -> Term {
        Term::Attr {
            var: var.into(),
            attr: attr.into(),
        }
    }
    /// Variable reference convenience.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Attr { var, attr } => write!(f, "{var}.{attr}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Add(a, b) => write!(f, "({a} + {b})"),
            Term::Sub(a, b) => write!(f, "({a} - {b})"),
            Term::Mul(a, b) => write!(f, "({a} * {b})"),
        }
    }
}

/// One conjunct of a condition.
#[derive(Debug, Clone, PartialEq)]
pub enum Formula {
    /// `occurred(expr, Var)`: bind `Var` to the objects affected by the
    /// instance-oriented event expression within the rule's consumption
    /// window (§3.3).
    Occurred {
        /// Instance-oriented event expression.
        expr: EventExpr,
        /// Class variable receiving the bindings.
        var: String,
    },
    /// `at(expr, Var, TimeVar)`: like `occurred` but additionally binds
    /// every occurrence instant (§3.3, "occurrence time stamp" predicate).
    At {
        /// Instance-oriented, negation-free event expression.
        expr: EventExpr,
        /// Class variable receiving the object bindings.
        var: String,
        /// Time variable receiving the occurrence instants.
        time_var: String,
    },
    /// Comparison predicate over terms.
    Compare {
        /// Left term.
        lhs: Term,
        /// Operator.
        op: CmpOp,
        /// Right term.
        rhs: Term,
    },
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::Occurred { expr, var } => write!(f, "occurred({expr}, {var})"),
            Formula::At {
                expr,
                var,
                time_var,
            } => write!(f, "at({expr}, {var}, {time_var})"),
            Formula::Compare { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
        }
    }
}

/// A complete condition: declarations + conjunction of formulas.
///
/// An empty condition (no declarations, no formulas) is always satisfied
/// with a single empty binding — the rule's action then runs once.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Condition {
    /// Set-oriented variable declarations.
    pub decls: Vec<VarDecl>,
    /// Conjoined formulas.
    pub formulas: Vec<Formula>,
}

impl Condition {
    /// The always-true condition.
    pub fn always() -> Self {
        Condition::default()
    }

    /// Variables bound by `occurred`/`at` event formulas.
    pub fn event_bound_vars(&self) -> Vec<&str> {
        self.formulas
            .iter()
            .filter_map(|f| match f {
                Formula::Occurred { var, .. } | Formula::At { var, .. } => Some(var.as_str()),
                Formula::Compare { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_events::EventType;
    use chimera_model::ClassId;

    #[test]
    fn term_builders_and_display() {
        let t = Term::Add(
            Box::new(Term::attr("S", "quantity")),
            Box::new(Term::int(3)),
        );
        assert_eq!(t.to_string(), "(S.quantity + 3)");
        assert_eq!(Term::var("T").to_string(), "T");
        assert_eq!(
            Term::Mul(Box::new(Term::int(2)), Box::new(Term::int(3))).to_string(),
            "(2 * 3)"
        );
        assert_eq!(
            Term::Sub(Box::new(Term::int(2)), Box::new(Term::int(3))).to_string(),
            "(2 - 3)"
        );
    }

    #[test]
    fn cmp_display() {
        assert_eq!(CmpOp::Le.to_string(), "<=");
        assert_eq!(CmpOp::Ne.to_string(), "!=");
        assert_eq!(CmpOp::Eq.to_string(), "=");
    }

    #[test]
    fn formula_display() {
        let f = Formula::Occurred {
            expr: EventExpr::prim(EventType::create(ClassId(0))),
            var: "S".into(),
        };
        assert!(f.to_string().starts_with("occurred("));
        let c = Formula::Compare {
            lhs: Term::attr("S", "quantity"),
            op: CmpOp::Gt,
            rhs: Term::attr("S", "max_quantity"),
        };
        assert_eq!(c.to_string(), "S.quantity > S.max_quantity");
    }

    #[test]
    fn always_condition_is_empty() {
        let c = Condition::always();
        assert!(c.decls.is_empty());
        assert!(c.formulas.is_empty());
    }

    #[test]
    fn event_bound_vars_collected() {
        let c = Condition {
            decls: vec![VarDecl {
                name: "S".into(),
                class: "stock".into(),
            }],
            formulas: vec![
                Formula::Occurred {
                    expr: EventExpr::prim(EventType::create(ClassId(0))),
                    var: "S".into(),
                },
                Formula::Compare {
                    lhs: Term::int(1),
                    op: CmpOp::Eq,
                    rhs: Term::int(1),
                },
            ],
        };
        assert_eq!(c.event_bound_vars(), vec!["S"]);
    }
}
