//! PERF-3 — instance-oriented evaluation.
//!
//! Two axes:
//!
//! * **object population** (`instance_objects`): the §4.3 boundary
//!   quantifies over affected objects, so the *interpreted* `ts` of an
//!   instance expression scales with the population while the per-object
//!   `ots` stays flat;
//! * **window size** (`instance_window_{1k,10k,100k}`): the PR-2 target —
//!   the compiled-plan path versus the recursive path (`interpreted`,
//!   [`ts_logical_interpreted`]) versus the set-oriented baseline
//!   (`set_ts`). The plan is measured in both of its steady states:
//!   `planned_warm` keeps one [`PlanEval`] across iterations (what the
//!   engine holds per rule *between arrivals* — repeated probes hit the
//!   per-epoch memo), and `planned_cold` hands each iteration a fresh
//!   scratchpad (the price of the *first* probe after an arrival:
//!   domain lookup + stamp-matrix build + per-object fold; only the
//!   shared EB domain cache stays warm, as it does in production — since
//!   PR 3 this price is paid only when a window's *lower* bound moves).
//!   The ratio report adds the **arrival-incremental** tier: a persistent
//!   evaluator probed right after each arrival, whose scratch absorbs the
//!   delta instead of rebuilding (see `throughput.rs` for the full
//!   cold-vs-incremental advance numbers). The bench prints the ratios
//!   itself; the acceptance bar is ≤ 10× on the 10k-event window for the
//!   steady-state path (down from ~200× at the seed, which paid the cold
//!   cost on *every* probe).

use chimera_bench::{et, history, p};
use chimera_calculus::{ots_logical, ts_logical_interpreted, EventExpr, PlanEval};
use chimera_events::{EventBase, Window};
use chimera_model::Oid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn menu() -> Vec<(&'static str, EventExpr)> {
    vec![
        ("boundary_iand", p(0).iand(p(1))),
        ("boundary_iprec", p(0).iprec(p(1))),
        ("boundary_inot", p(0).iand(p(1)).inot()),
    ]
}

fn bench_population(c: &mut Criterion) {
    let mut g = c.benchmark_group("instance_objects");
    for &objects in &[10u64, 100, 1_000, 10_000] {
        // history size scales with population so every object is touched
        let eb = history(23, (objects as usize) * 4, 4, objects);
        let w = Window::from_origin(eb.now());
        let now = eb.now();
        for (name, expr) in menu() {
            g.bench_with_input(BenchmarkId::new(name, objects), &expr, |b, e| {
                b.iter(|| black_box(ts_logical_interpreted(e, &eb, w, now)));
            });
        }
        let conj = p(0).iand(p(1));
        g.bench_with_input(BenchmarkId::new("single_ots", objects), &conj, |b, e| {
            b.iter(|| black_box(ots_logical(e, &eb, w, now, Oid(1))));
        });
    }
    g.finish();
}

fn bench_window_scaling(c: &mut Criterion) {
    for &events in &[1_000usize, 10_000, 100_000] {
        let label = match events {
            1_000 => "instance_window_1k",
            10_000 => "instance_window_10k",
            _ => "instance_window_100k",
        };
        let mut g = c.benchmark_group(label);
        let eb = history(23, events, 4, (events / 4) as u64);
        let w = Window::from_origin(eb.now());
        let now = eb.now();
        // the set-oriented yardstick the ISSUE ratio is measured against
        let set = p(0).and(p(1));
        g.bench_with_input(BenchmarkId::new("set_ts", events), &set, |b, e| {
            b.iter(|| black_box(ts_logical_interpreted(e, &eb, w, now)));
        });
        for (name, expr) in menu() {
            g.bench_with_input(
                BenchmarkId::new(format!("{name}_interpreted"), events),
                &expr,
                |b, e| {
                    b.iter(|| black_box(ts_logical_interpreted(e, &eb, w, now)));
                },
            );
            let mut warm = PlanEval::compile(&expr).unwrap();
            g.bench_with_input(
                BenchmarkId::new(format!("{name}_planned_warm"), events),
                &expr,
                |b, _| {
                    b.iter(|| black_box(warm.eval(&eb, w, now)));
                },
            );
            let plan = warm.plan().clone();
            g.bench_with_input(
                BenchmarkId::new(format!("{name}_planned_cold"), events),
                &expr,
                |b, _| {
                    b.iter(|| {
                        // fresh scratch: pays the full post-arrival rebuild
                        let mut pe = PlanEval::new(plan.clone());
                        black_box(pe.eval(&eb, w, now))
                    });
                },
            );
        }
        g.finish();
    }
}

/// Honest wall-clock mean over an adaptive iteration count.
fn mean_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm
    let budget = Duration::from_millis(50);
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The ISSUE-2 acceptance ratio, reported by the bench itself.
fn report_ratio(c: &mut Criterion) {
    // run only in measure mode (cargo bench), not in cargo-test smoke mode
    if !std::env::args().any(|a| a == "--bench") {
        // still exercise the paths once so test mode covers them
        let eb: EventBase = history(23, 1_000, 4, 250);
        let w = Window::from_origin(eb.now());
        let mut plan = PlanEval::compile(&p(0).iand(p(1))).unwrap();
        black_box(plan.eval(&eb, w, eb.now()));
        return;
    }
    let _ = c; // the shim needs no handle for free-form reporting
    for &events in &[10_000usize] {
        let eb = history(23, events, 4, (events / 4) as u64);
        let w = Window::from_origin(eb.now());
        let now = eb.now();
        let set = p(0).and(p(1));
        let set_ns = mean_ns(|| {
            black_box(ts_logical_interpreted(&set, &eb, w, now));
        });
        for (name, expr) in menu() {
            let interp_ns = mean_ns(|| {
                black_box(ts_logical_interpreted(&expr, &eb, w, now));
            });
            let mut warm = PlanEval::compile(&expr).unwrap();
            let warm_ns = mean_ns(|| {
                black_box(warm.eval(&eb, w, now));
            });
            let plan = warm.plan().clone();
            let cold_ns = mean_ns(|| {
                let mut pe = PlanEval::new(plan.clone());
                black_box(pe.eval(&eb, w, now));
            });
            // the arrival-incremental tier: one persistent evaluator,
            // probed right after each single arrival (the post-arrival
            // cost the PR-3 acceptance criterion is about; `throughput.rs`
            // reports the probe-only number at 1/16 arrivals). Arrivals
            // cycle over the existing objects, so the domain is fixed and
            // the probe stays O(arrivals) while the log grows during the
            // measurement budget — the grown length is printed so the
            // label stays honest.
            let mut inc_eb = history(23, events, 4, (events / 4) as u64);
            let mut inc = PlanEval::compile(&expr).unwrap();
            inc.eval(&inc_eb, Window::from_origin(inc_eb.now()), inc_eb.now());
            let mut n = 0usize;
            let inc_ns = mean_ns(|| {
                n += 1;
                inc_eb.append(et((n % 4) as u32), Oid((n % (events / 4)) as u64 + 1));
                let inc_now = inc_eb.now();
                black_box(inc.eval(&inc_eb, Window::from_origin(inc_now), inc_now));
            });
            println!(
                "ratio @ {events} events: {name}: set_ts {set_ns:.0} ns, interpreted {interp_ns:.0} ns \
                 ({:.1}x), planned warm {warm_ns:.0} ns ({:.1}x, target <=10x), \
                 planned cold {cold_ns:.0} ns ({:.1}x, lower-bound moves only), \
                 planned incremental {inc_ns:.0} ns/arrival ({:.1}x, window grown to {}k)",
                interp_ns / set_ns,
                warm_ns / set_ns,
                cold_ns / set_ns,
                inc_ns / set_ns,
                inc_eb.len() / 1_000,
            );
        }
    }
}

criterion_group!(benches, bench_population, bench_window_scaling, report_ratio);
criterion_main!(benches);
