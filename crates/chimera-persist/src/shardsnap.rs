//! Full-fidelity per-shard tenant snapshots (job-log compaction).
//!
//! The redo-log snapshot in [`crate::snapshot`] captures one engine's
//! *object store* — enough for the transaction-scoped durability model of
//! [`crate::durable`]. The runtime's durable tenants need more: recovery
//! must reproduce each tenant bit-identically, so a shard snapshot also
//! carries the event log, trigger sources, per-rule processing stamps,
//! engine statistics and the shard's error bookkeeping. With all of that
//! captured, the job log ([`crate::joblog`]) can be truncated at the
//! snapshot's sequence and replay continues from there.
//!
//! Format (line-oriented text, FNV-1a 64 checksummed, like every other
//! durable file in this crate):
//!
//! ```text
//! V <seq> <tenant-count>
//! T <tenant> <jobs-applied> <job-errors> <next-oid> <nobj> <nev> <nsrc> <nrule>
//! L <escaped-last-error|->
//! S <blocks> <events> <considerations> <executions> <commits> <rollbacks>
//! P <oid> <class> <attrs>          × nobj
//! E <class>:<kind> <oid>           × nev
//! D <escaped-trigger-source>       × nsrc
//! R <escaped-name> <t> <lc> <lcons> <cu> <w>   × nrule
//! C <seq> <fnv1a-of-body>
//! ```
//!
//! Snapshots are only taken at *safe points* (no tenant in an open
//! transaction): the object store snapshot reflects committed state, and
//! any in-flight transaction is instead reproduced by replaying the job
//! log tail.

use crate::codec::{decode_object, encode_object, escape, unescape};
use crate::{fnv1a, PersistError, Result};
use chimera_events::{EventKind, EventType};
use chimera_model::{AttrId, ClassId, Object, Oid};
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// One rule's processing stamps — mirrors `chimera_rules::RuleState`
/// field-for-field (timestamps as raw `u64`).
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStampRec {
    /// Trigger name (the rule-table key).
    pub name: String,
    /// `RuleState::triggered`.
    pub triggered: bool,
    /// `RuleState::last_consideration` (raw timestamp).
    pub last_consideration: u64,
    /// `RuleState::last_consumption` (raw timestamp).
    pub last_consumption: u64,
    /// `RuleState::checked_upto` (raw timestamp).
    pub checked_upto: u64,
    /// `RuleState::witness`.
    pub witness: bool,
}

/// Everything needed to rebuild one tenant bit-identically (given the
/// shared schema and runtime-wide trigger set, which live in config).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Raw tenant id.
    pub tenant: u64,
    /// Jobs durably applied to this tenant (snapshot + log prefix
    /// accounting for the recovery oracle).
    pub jobs_applied: u64,
    /// Failed-job count (shard error bookkeeping).
    pub job_errors: u64,
    /// Most recent job error, if any.
    pub last_error: Option<String>,
    /// Committed objects, as the store reports them.
    pub objects: Vec<Object>,
    /// OID allocation counter.
    pub next_oid: u64,
    /// The event log as `(type, oid)` pairs in log order. Replaying them
    /// through a fresh event base reproduces eids and timestamps exactly
    /// (both are assigned densely per append).
    pub events: Vec<(EventType, Oid)>,
    /// Tenant-local trigger definitions, in definition order, as source
    /// text (re-parsed deterministically at restore).
    pub trigger_sources: Vec<String>,
    /// Per-rule processing stamps, restored *after* triggers are
    /// (re)defined.
    pub rules: Vec<RuleStampRec>,
    /// `EngineStats` as the fixed-order array
    /// `[blocks, events, considerations, executions, commits, rollbacks]`.
    pub stats: [u64; 6],
}

/// A whole shard's durable tenants at one job-log sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSnapshot {
    /// Last job-log group sequence the snapshot covers; recovery replays
    /// groups `seq + 1, seq + 2, …` on top.
    pub seq: u64,
    /// Tenants in stable (sorted) order.
    pub tenants: Vec<TenantSnapshot>,
}

fn encode_event_type(ty: &EventType) -> String {
    let kind = match ty.kind {
        EventKind::Create => "c".to_string(),
        EventKind::Delete => "d".to_string(),
        EventKind::Modify(attr) => format!("m{}", attr.0),
        EventKind::Generalize => "g".to_string(),
        EventKind::Specialize => "s".to_string(),
        EventKind::Select => "q".to_string(),
        EventKind::External(chan) => format!("x{chan}"),
    };
    format!("{}:{kind}", ty.class.0)
}

fn decode_event_type(tok: &str) -> Result<EventType> {
    let bad = || PersistError::Corrupt(format!("event type token `{tok}`"));
    let (class, kind) = tok.split_once(':').ok_or_else(bad)?;
    let class: u32 = class.parse().map_err(|_| bad())?;
    let kind = match kind {
        "c" => EventKind::Create,
        "d" => EventKind::Delete,
        "g" => EventKind::Generalize,
        "s" => EventKind::Specialize,
        "q" => EventKind::Select,
        _ => {
            if let Some(n) = kind.strip_prefix('m') {
                EventKind::Modify(AttrId(n.parse().map_err(|_| bad())?))
            } else if let Some(n) = kind.strip_prefix('x') {
                EventKind::External(n.parse().map_err(|_| bad())?)
            } else {
                return Err(bad());
            }
        }
    };
    Ok(EventType {
        class: ClassId(class),
        kind,
    })
}

impl ShardSnapshot {
    fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("V {} {}\n", self.seq, self.tenants.len()));
        for t in &self.tenants {
            body.push_str(&format!(
                "T {} {} {} {} {} {} {} {}\n",
                t.tenant,
                t.jobs_applied,
                t.job_errors,
                t.next_oid,
                t.objects.len(),
                t.events.len(),
                t.trigger_sources.len(),
                t.rules.len(),
            ));
            match &t.last_error {
                Some(e) => body.push_str(&format!("L {}\n", escape(e))),
                None => body.push_str("L -\n"),
            }
            body.push_str(&format!(
                "S {} {} {} {} {} {}\n",
                t.stats[0], t.stats[1], t.stats[2], t.stats[3], t.stats[4], t.stats[5]
            ));
            for obj in &t.objects {
                body.push_str(&format!("P {}\n", encode_object(obj)));
            }
            for (ty, oid) in &t.events {
                body.push_str(&format!("E {} {}\n", encode_event_type(ty), oid.0));
            }
            for src in &t.trigger_sources {
                body.push_str(&format!("D {}\n", escape(src)));
            }
            for r in &t.rules {
                body.push_str(&format!(
                    "R {} {} {} {} {} {}\n",
                    escape(&r.name),
                    u8::from(r.triggered),
                    r.last_consideration,
                    r.last_consumption,
                    r.checked_upto,
                    u8::from(r.witness),
                ));
            }
        }
        let crc = fnv1a(body.as_bytes());
        format!("{body}C {} {crc:016x}\n", self.seq)
    }

    /// Write atomically (temp file + fsync + rename), same crash
    /// guarantee as [`crate::snapshot::Snapshot::write`].
    pub fn write(&self, path: &Path) -> Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(self.render().as_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Read and verify. `Ok(None)` when the file does not exist;
    /// `Err(Corrupt)` when it exists but fails validation.
    pub fn read(path: &Path) -> Result<Option<ShardSnapshot>> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let corrupt = |what: &str| PersistError::Corrupt(format!("shard snapshot: {what}"));
        let text = String::from_utf8(bytes).map_err(|_| corrupt("invalid utf-8"))?;
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| corrupt("empty"))?;
        let (seq, count) = header
            .strip_prefix("V ")
            .and_then(|s| s.split_once(' '))
            .and_then(|(a, b)| Some((a.parse::<u64>().ok()?, b.parse::<usize>().ok()?)))
            .ok_or_else(|| corrupt("bad header"))?;
        let mut tenants = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            tenants.push(read_tenant(&mut lines, &corrupt)?);
        }
        let term = lines.next().ok_or_else(|| corrupt("missing terminator"))?;
        let body_len = text
            .len()
            .checked_sub(term.len() + 1)
            .ok_or_else(|| corrupt("bad terminator"))?;
        let ok = (|| {
            let rest = term.strip_prefix("C ")?;
            let (seq_s, crc_s) = rest.split_once(' ')?;
            let term_seq: u64 = seq_s.parse().ok()?;
            let crc = u64::from_str_radix(crc_s, 16).ok()?;
            (term_seq == seq && crc == fnv1a(&text.as_bytes()[..body_len])).then_some(())
        })();
        if ok.is_none() || lines.next().is_some() {
            return Err(corrupt("terminator mismatch"));
        }
        Ok(Some(ShardSnapshot { seq, tenants }))
    }
}

fn read_tenant<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    corrupt: &dyn Fn(&str) -> PersistError,
) -> Result<TenantSnapshot> {
    let header = lines.next().ok_or_else(|| corrupt("truncated tenants"))?;
    let mut nums = header
        .strip_prefix("T ")
        .ok_or_else(|| corrupt("expected tenant header"))?
        .split(' ')
        .map(|s| s.parse::<u64>());
    let mut next = || -> Result<u64> {
        nums.next()
            .and_then(|r| r.ok())
            .ok_or_else(|| corrupt("bad tenant header"))
    };
    let tenant = next()?;
    let jobs_applied = next()?;
    let job_errors = next()?;
    let next_oid = next()?;
    let nobj = next()? as usize;
    let nev = next()? as usize;
    let nsrc = next()? as usize;
    let nrule = next()? as usize;
    if nums.next().is_some() {
        return Err(corrupt("bad tenant header"));
    }

    let err_line = lines.next().ok_or_else(|| corrupt("missing error line"))?;
    let last_error = match err_line
        .strip_prefix("L ")
        .ok_or_else(|| corrupt("expected error line"))?
    {
        "-" => None,
        esc => Some(unescape(esc)?),
    };

    let stats_line = lines.next().ok_or_else(|| corrupt("missing stats line"))?;
    let stat_vals: Vec<u64> = stats_line
        .strip_prefix("S ")
        .ok_or_else(|| corrupt("expected stats line"))?
        .split(' ')
        .map(|s| s.parse::<u64>())
        .collect::<std::result::Result<_, _>>()
        .map_err(|_| corrupt("bad stats line"))?;
    let stats: [u64; 6] = stat_vals
        .try_into()
        .map_err(|_| corrupt("bad stats arity"))?;

    let cap = |n: usize| n.min(1 << 16);
    let mut objects = Vec::with_capacity(cap(nobj));
    for _ in 0..nobj {
        let line = lines.next().ok_or_else(|| corrupt("truncated objects"))?;
        let payload = line
            .strip_prefix("P ")
            .ok_or_else(|| corrupt("expected object record"))?;
        objects.push(decode_object(payload)?);
    }
    let mut events = Vec::with_capacity(cap(nev));
    for _ in 0..nev {
        let line = lines.next().ok_or_else(|| corrupt("truncated events"))?;
        let (ty, oid) = line
            .strip_prefix("E ")
            .and_then(|s| s.split_once(' '))
            .ok_or_else(|| corrupt("expected event record"))?;
        let oid: u64 = oid.parse().map_err(|_| corrupt("bad event oid"))?;
        events.push((decode_event_type(ty)?, Oid(oid)));
    }
    let mut trigger_sources = Vec::with_capacity(cap(nsrc));
    for _ in 0..nsrc {
        let line = lines.next().ok_or_else(|| corrupt("truncated sources"))?;
        let esc = line
            .strip_prefix("D ")
            .ok_or_else(|| corrupt("expected source record"))?;
        trigger_sources.push(unescape(esc)?);
    }
    let mut rules = Vec::with_capacity(cap(nrule));
    for _ in 0..nrule {
        let line = lines.next().ok_or_else(|| corrupt("truncated rules"))?;
        let toks: Vec<&str> = line
            .strip_prefix("R ")
            .ok_or_else(|| corrupt("expected rule record"))?
            .split(' ')
            .collect();
        let [name, t, lc, lcons, cu, w] = toks[..] else {
            return Err(corrupt("bad rule arity"));
        };
        let flag = |s: &str| -> Result<bool> {
            match s {
                "0" => Ok(false),
                "1" => Ok(true),
                _ => Err(corrupt("bad rule flag")),
            }
        };
        let ts = |s: &str| -> Result<u64> { s.parse().map_err(|_| corrupt("bad rule stamp")) };
        rules.push(RuleStampRec {
            name: unescape(name)?,
            triggered: flag(t)?,
            last_consideration: ts(lc)?,
            last_consumption: ts(lcons)?,
            checked_upto: ts(cu)?,
            witness: flag(w)?,
        });
    }
    Ok(TenantSnapshot {
        tenant,
        jobs_applied,
        job_errors,
        last_error,
        objects,
        next_oid,
        events,
        trigger_sources,
        rules,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::Value;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("chimera-persist-shardsnap-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.chi", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn snap() -> ShardSnapshot {
        ShardSnapshot {
            seq: 11,
            tenants: vec![
                TenantSnapshot {
                    tenant: 3,
                    jobs_applied: 17,
                    job_errors: 2,
                    last_error: Some("no active transaction, with spaces\n".into()),
                    objects: vec![Object {
                        oid: Oid(1),
                        class: ClassId(0),
                        attrs: vec![Value::Int(5), Value::Str("a b".into())],
                    }],
                    next_oid: 2,
                    events: vec![
                        (EventType::create(ClassId(0)), Oid(1)),
                        (
                            EventType {
                                class: ClassId(0),
                                kind: EventKind::Modify(AttrId(1)),
                            },
                            Oid(1),
                        ),
                        (
                            EventType {
                                class: ClassId(2),
                                kind: EventKind::External(7),
                            },
                            Oid(0),
                        ),
                    ],
                    trigger_sources: vec!["define trigger t\n  …\nend".into()],
                    rules: vec![RuleStampRec {
                        name: "watch low".into(),
                        triggered: true,
                        last_consideration: 4,
                        last_consumption: 2,
                        checked_upto: 5,
                        witness: false,
                    }],
                    stats: [1, 2, 3, 4, 5, 6],
                },
                TenantSnapshot {
                    tenant: 9,
                    jobs_applied: 0,
                    job_errors: 0,
                    last_error: None,
                    objects: vec![],
                    next_oid: 0,
                    events: vec![],
                    trigger_sources: vec![],
                    rules: vec![],
                    stats: [0; 6],
                },
            ],
        }
    }

    #[test]
    fn event_type_round_trips() {
        for ty in [
            EventType::create(ClassId(0)),
            EventType {
                class: ClassId(1),
                kind: EventKind::Delete,
            },
            EventType {
                class: ClassId(2),
                kind: EventKind::Modify(AttrId(13)),
            },
            EventType {
                class: ClassId(3),
                kind: EventKind::Generalize,
            },
            EventType {
                class: ClassId(4),
                kind: EventKind::Specialize,
            },
            EventType {
                class: ClassId(5),
                kind: EventKind::Select,
            },
            EventType {
                class: ClassId(6),
                kind: EventKind::External(42),
            },
        ] {
            let tok = encode_event_type(&ty);
            assert_eq!(decode_event_type(&tok).unwrap(), ty, "`{tok}`");
        }
        for tok in ["", "1", "1:z", "x:c", "1:m", "1:mx", "1:x"] {
            assert!(decode_event_type(tok).is_err(), "`{tok}` must fail");
        }
    }

    #[test]
    fn write_read_round_trip() {
        let path = tmp("round");
        let s = snap();
        s.write(&path).unwrap();
        assert_eq!(ShardSnapshot::read(&path).unwrap(), Some(s));
        assert!(!path.with_extension("tmp").exists());
    }

    #[test]
    fn missing_file_is_none() {
        assert_eq!(
            ShardSnapshot::read(Path::new("/nonexistent/shard.chi")).unwrap(),
            None
        );
    }

    #[test]
    fn any_flipped_byte_is_detected() {
        let path = tmp("flip");
        snap().write(&path).unwrap();
        let clean = fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[i] ^= 0x01;
            fs::write(&path, &dirty).unwrap();
            match ShardSnapshot::read(&path) {
                Err(PersistError::Corrupt(_)) => {}
                Ok(Some(s)) => panic!("flip at byte {i} went undetected: {s:?}"),
                other => panic!("unexpected outcome for flip at {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let path = tmp("trunc");
        snap().write(&path).unwrap();
        let clean = fs::read(&path).unwrap();
        for cut in (0..clean.len()).step_by(7) {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(
                ShardSnapshot::read(&path).is_err(),
                "truncation at {cut} must be detected"
            );
        }
    }
}
