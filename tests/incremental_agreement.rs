//! Property suite for the incremental detector: exact `ts` equality with
//! the from-scratch logical evaluator on random well-formed expressions
//! and random streams — at every arrival instant, at gap instants, and
//! across consumption resets.

use chimera::calculus::{ts_logical, IncrementalTs};
use chimera::events::{EventBase, EventType, Timestamp, Window};
use chimera::model::{ClassId, Oid};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn incremental_equals_ts_logical(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..30,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 5,
            max_depth: 4,
            instance_prob: 0.35,
            negation_prob: 0.35,
            seed: expr_seed,
        });
        let expr = g.generate();
        let mut inc = IncrementalTs::new(&expr).unwrap();
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let mut eb = EventBase::new();
        for i in 0..len {
            if rng.random_bool(0.15) {
                eb.tick(); // eventless instants interleave
            }
            let occ = eb.append(et(rng.random_range(0..5u32)), Oid(rng.random_range(1..5u64)));
            inc.observe(&occ);
            let now = eb.now();
            let w = Window::from_origin(now);
            prop_assert_eq!(
                inc.ts_at(now),
                ts_logical(&expr, &eb, w, now),
                "{} at {} (event {})", &expr, now, i
            );
        }
        // gap instants after the last arrival
        for _ in 0..3 {
            let now = eb.tick();
            let w = Window::from_origin(now);
            prop_assert_eq!(
                inc.ts_at(now),
                ts_logical(&expr, &eb, w, now),
                "{} at gap {}", &expr, now
            );
        }
    }

    #[test]
    fn incremental_tracks_consumption_resets(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 3,
            instance_prob: 0.3,
            negation_prob: 0.3,
            seed: expr_seed,
        });
        let expr = g.generate();
        let mut inc = IncrementalTs::new(&expr).unwrap();
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let mut eb = EventBase::new();
        let mut window_start = Timestamp::ZERO;
        for i in 0..24usize {
            if i % 8 == 7 {
                // consumption: the detector forgets, the window restarts
                inc.reset();
                window_start = eb.now();
                continue;
            }
            let occ = eb.append(et(rng.random_range(0..4u32)), Oid(rng.random_range(1..4u64)));
            inc.observe(&occ);
            let now = eb.now();
            let w = Window::new(window_start, now);
            prop_assert_eq!(
                inc.ts_at(now),
                ts_logical(&expr, &eb, w, now),
                "{} at {} after reset at {}", &expr, now, window_start
            );
            prop_assert_eq!(inc.window_nonempty(), eb.any_in(w));
        }
    }
}
