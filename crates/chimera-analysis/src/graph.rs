//! The triggering graph and the conservative termination verdict.
//!
//! Nodes are rules; there is an edge `r → s` whenever some event type the
//! actions of `r` can generate ([`crate::action_effects`]) may trigger `s`
//! ([`crate::TriggerSensitivity`]). If the graph is **acyclic** every
//! reaction cascade terminates: each consideration step consumes one
//! triggered rule, and re-triggering follows edges, so the cascade length
//! is bounded by the longest path times the number of blocks. Cycles are
//! *potential* non-termination only — conditions, the `R ≠ ∅` guard, or
//! data convergence may still stop them (both outcomes are exercised in
//! the integration tests).

use crate::effects::action_effects;
use crate::listens::TriggerSensitivity;
use crate::Result;
use chimera_events::EventType;
use chimera_model::Schema;
use chimera_rules::TriggerDef;
use std::collections::BTreeSet;
use std::fmt;

/// Conservative termination verdict for a rule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TerminationVerdict {
    /// The triggering graph is acyclic: every cascade terminates.
    Terminates,
    /// Cycles exist; each is reported as the rule names of one strongly
    /// connected component with more than one node or a self-loop.
    MayLoop {
        /// The potentially looping rule groups, in definition order.
        cycles: Vec<Vec<String>>,
    },
}

impl TerminationVerdict {
    /// Is this the acyclic (guaranteed-termination) verdict?
    pub fn is_terminating(&self) -> bool {
        matches!(self, TerminationVerdict::Terminates)
    }
}

impl fmt::Display for TerminationVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TerminationVerdict::Terminates => {
                write!(f, "terminates (acyclic triggering graph)")
            }
            TerminationVerdict::MayLoop { cycles } => {
                write!(f, "may loop: ")?;
                for (i, c) in cycles.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{{{}}}", c.join(" → "))?;
                }
                Ok(())
            }
        }
    }
}

/// One analysed rule.
#[derive(Debug, Clone)]
struct Node {
    name: String,
    effects: BTreeSet<EventType>,
    listens: TriggerSensitivity,
}

/// The triggering graph over a set of trigger definitions.
#[derive(Debug, Clone)]
pub struct TriggeringGraph {
    nodes: Vec<Node>,
    /// Adjacency: `edges[i]` = indices of rules that rule `i` may trigger.
    edges: Vec<Vec<usize>>,
}

impl TriggeringGraph {
    /// Build the graph for `defs` against `schema`.
    pub fn build(defs: &[TriggerDef], schema: &Schema) -> Result<Self> {
        let nodes: Vec<Node> = defs
            .iter()
            .map(|d| {
                Ok(Node {
                    name: d.name.clone(),
                    effects: action_effects(d, schema)?,
                    listens: TriggerSensitivity::new(&d.events),
                })
            })
            .collect::<Result<_>>()?;
        let edges = nodes
            .iter()
            .map(|from| {
                nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, to)| to.listens.may_trigger_on_any(from.effects.iter()))
                    .map(|(j, _)| j)
                    .collect()
            })
            .collect();
        Ok(TriggeringGraph { nodes, edges })
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rule names in definition order.
    pub fn rule_names(&self) -> impl Iterator<Item = &str> {
        self.nodes.iter().map(|n| n.name.as_str())
    }

    /// Edges as `(from, to)` name pairs, in definition order.
    pub fn edges(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        for (i, succs) in self.edges.iter().enumerate() {
            for &j in succs {
                out.push((self.nodes[i].name.as_str(), self.nodes[j].name.as_str()));
            }
        }
        out
    }

    /// Does rule `from` have an edge to rule `to`?
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        let Some(i) = self.index_of(from) else {
            return false;
        };
        let Some(j) = self.index_of(to) else {
            return false;
        };
        self.edges[i].contains(&j)
    }

    fn index_of(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// Strongly connected components (Tarjan, iterative), in reverse
    /// topological order of the condensation.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();

        // explicit DFS frames: (node, next-successor position)
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if let Some(&w) = self.edges[v].get(*pos) {
                    *pos += 1;
                    if index[w] == usize::MAX {
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// The potentially non-terminating rule groups: SCCs with more than
    /// one node, plus single nodes with a self-loop.
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut out: Vec<Vec<String>> = self
            .sccs()
            .into_iter()
            .filter(|c| c.len() > 1 || self.edges[c[0]].contains(&c[0]))
            .map(|c| c.into_iter().map(|i| self.nodes[i].name.clone()).collect())
            .collect();
        out.sort();
        out
    }

    /// The conservative termination verdict.
    pub fn termination(&self) -> TerminationVerdict {
        let cycles = self.cycles();
        if cycles.is_empty() {
            TerminationVerdict::Terminates
        } else {
            TerminationVerdict::MayLoop { cycles }
        }
    }

    /// An upper bound on cascade length per block for acyclic graphs: the
    /// longest path in the condensation (in rules). `None` when cyclic.
    pub fn max_cascade_depth(&self) -> Option<usize> {
        if !self.termination().is_terminating() {
            return None;
        }
        // longest path via memoized DFS (graph is acyclic here)
        fn depth(g: &TriggeringGraph, v: usize, memo: &mut [Option<usize>]) -> usize {
            if let Some(d) = memo[v] {
                return d;
            }
            let d = 1 + g.edges[v]
                .iter()
                .map(|&w| depth(g, w, memo))
                .max()
                .unwrap_or(0);
            memo[v] = Some(d);
            d
        }
        let mut memo = vec![None; self.nodes.len()];
        (0..self.nodes.len())
            .map(|v| depth(self, v, &mut memo))
            .max()
    }

    /// Graphviz DOT rendering (rules as nodes, may-trigger edges), with
    /// cyclic components highlighted.
    pub fn to_dot(&self) -> String {
        let mut looping: BTreeSet<&str> = BTreeSet::new();
        for c in self.cycles() {
            for name in &c {
                if let Some(i) = self.index_of(name) {
                    looping.insert(self.nodes[i].name.as_str());
                }
            }
        }
        let mut s = String::from("digraph triggering {\n");
        for node in &self.nodes {
            let attrs = if looping.contains(node.name.as_str()) {
                " [color=red, style=bold]"
            } else {
                ""
            };
            s.push_str(&format!("  \"{}\"{};\n", node.name, attrs));
        }
        for (from, to) in self.edges() {
            s.push_str(&format!("  \"{from}\" -> \"{to}\";\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_model::{AttrDef, AttrType, SchemaBuilder};
    use chimera_rules::{ActionStmt, Condition, Term, VarDecl};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class(
            "c",
            None,
            vec![
                AttrDef::new("x", AttrType::Integer),
                AttrDef::new("y", AttrType::Integer),
            ],
        )
        .unwrap();
        b.build()
    }

    /// Rule listening on `modify(c.{listen})` that modifies `c.{write}`.
    fn rule(name: &str, schema: &Schema, listen: &str, write: &str) -> TriggerDef {
        let c = schema.class_by_name("c").unwrap();
        let a = schema.attr_by_name(c, listen).unwrap();
        let mut def = TriggerDef::new(
            name,
            EventExpr::prim(EventType::modify(c, a)),
        );
        def.condition = Condition {
            decls: vec![VarDecl {
                name: "V".into(),
                class: "c".into(),
            }],
            formulas: vec![],
        };
        def.actions = vec![ActionStmt::Modify {
            var: "V".into(),
            attr: write.into(),
            value: Term::int(0),
        }];
        def
    }

    #[test]
    fn chain_is_acyclic_with_depth() {
        let s = schema();
        // x→y writer, y→(no listener) writer
        let defs = vec![rule("r1", &s, "x", "y"), rule("r2", &s, "y", "y")];
        // careful: r2 listens on y and writes y — that's a self-loop
        let g = TriggeringGraph::build(&defs, &s).unwrap();
        assert!(g.has_edge("r1", "r2"));
        assert!(g.has_edge("r2", "r2"));
        assert_eq!(
            g.termination(),
            TerminationVerdict::MayLoop {
                cycles: vec![vec!["r2".into()]]
            }
        );
        assert_eq!(g.max_cascade_depth(), None);
    }

    #[test]
    fn acyclic_chain_terminates() {
        let s = schema();
        let defs = vec![rule("a", &s, "x", "y")];
        let g = TriggeringGraph::build(&defs, &s).unwrap();
        assert!(!g.has_edge("a", "a"));
        assert!(g.termination().is_terminating());
        assert_eq!(g.max_cascade_depth(), Some(1));
    }

    #[test]
    fn two_rule_cycle_detected() {
        let s = schema();
        let defs = vec![rule("a", &s, "x", "y"), rule("b", &s, "y", "x")];
        let g = TriggeringGraph::build(&defs, &s).unwrap();
        let verdict = g.termination();
        assert_eq!(
            verdict,
            TerminationVerdict::MayLoop {
                cycles: vec![vec!["a".into(), "b".into()]]
            }
        );
        assert!(verdict.to_string().contains("may loop"));
    }

    #[test]
    fn longest_path_depth() {
        let s = schema();
        // a: x→y, b: y→(writes x? no, cycle) — build a 3-chain with distinct
        // attrs is limited by 2 attrs; use create/delete chain instead.
        let c = s.class_by_name("c").unwrap();
        let x = s.attr_by_name(c, "x").unwrap();
        let mut a = rule("a", &s, "x", "y"); // modify(x) → writes y
        a.events = EventExpr::prim(EventType::create(c));
        let b = rule("b", &s, "y", "y"); // self-loop on y… avoid
        let mut b = b;
        b.actions = vec![ActionStmt::Delete { var: "V".into() }];
        let mut d = rule("d", &s, "x", "x");
        d.events = EventExpr::prim(EventType::delete(c));
        d.actions = vec![];
        let defs = vec![a, b, d];
        let g = TriggeringGraph::build(&defs, &s).unwrap();
        // a → b (modify y), b → d (delete), a/b/d acyclic
        assert!(g.has_edge("a", "b"));
        assert!(g.has_edge("b", "d"));
        assert!(g.termination().is_terminating());
        assert_eq!(g.max_cascade_depth(), Some(3));
        let _ = x;
    }

    /// A universal listener (pure negation) gets an edge from every rule
    /// with a non-empty effect set, and none from effect-free rules.
    #[test]
    fn universal_listener_edges() {
        let s = schema();
        let c = s.class_by_name("c").unwrap();
        let x = s.attr_by_name(c, "x").unwrap();
        let producer = rule("p", &s, "x", "y");
        let mut watcher = TriggerDef::new(
            "w",
            EventExpr::prim(EventType::modify(c, x)).not(),
        );
        watcher.actions = vec![];
        let defs = vec![producer, watcher];
        let g = TriggeringGraph::build(&defs, &s).unwrap();
        assert!(g.has_edge("p", "w"));
        assert!(!g.has_edge("w", "p")); // w has no actions
        assert!(!g.has_edge("w", "w"));
    }

    #[test]
    fn dot_rendering_highlights_cycles() {
        let s = schema();
        let defs = vec![rule("a", &s, "x", "x"), rule("b", &s, "y", "x")];
        let g = TriggeringGraph::build(&defs, &s).unwrap();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"a\" [color=red, style=bold];"));
        assert!(dot.contains("\"a\" -> \"a\";"));
        assert!(dot.contains("\"b\""));
    }

    #[test]
    fn sccs_cover_all_nodes_once() {
        let s = schema();
        let defs = vec![
            rule("a", &s, "x", "y"),
            rule("b", &s, "y", "x"),
            rule("e", &s, "x", "y"),
        ];
        let g = TriggeringGraph::build(&defs, &s).unwrap();
        let sccs = g.sccs();
        let mut all: Vec<usize> = sccs.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }
}
