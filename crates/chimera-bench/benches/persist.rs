//! PERF-10 — the cost of durability.
//!
//! (a) Committed-transaction throughput: the in-memory engine vs the
//! durable wrapper at its two ends (WAL on tmpfs-backed temp dir; each
//! commit is one fsynced batch). Expected shape: durability costs a
//! near-constant per-commit overhead dominated by the fsync, independent
//! of how much history preceded it. (b) Recovery throughput: replaying N
//! committed batches is linear with a small constant — reopening a
//! database is milliseconds, not seconds.

use chimera_exec::{Engine, EngineConfig, Op};
use chimera_model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera_persist::DurableEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("v", AttrType::Integer)])
        .unwrap();
    b.build()
}

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("chimera-bench-persist-{tag}-{}", std::process::id()))
}

/// `txns` transactions of one create block each, in-memory.
fn run_memory(txns: usize) -> u64 {
    let schema = schema();
    let item = schema.class_by_name("item").unwrap();
    let v = schema.attr_by_name(item, "v").unwrap();
    let mut engine = Engine::new(schema);
    for i in 0..txns {
        engine.begin().unwrap();
        engine
            .exec_block(&[Op::Create {
                class: item,
                inits: vec![(v, Value::Int(i as i64))],
            }])
            .unwrap();
        engine.commit().unwrap();
    }
    engine.stats().commits
}

/// Same workload, durable.
fn run_durable(txns: usize, tag: &str) -> u64 {
    let dir = tmpdir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let schema = schema();
    let item = schema.class_by_name("item").unwrap();
    let v = schema.attr_by_name(item, "v").unwrap();
    let (mut db, _) =
        DurableEngine::open(schema, EngineConfig::default(), &dir, vec![]).unwrap();
    for i in 0..txns {
        db.begin().unwrap();
        db.exec_block(&[Op::Create {
            class: item,
            inits: vec![(v, Value::Int(i as i64))],
        }])
        .unwrap();
        db.commit().unwrap();
    }
    let seq = db.committed_seq();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    seq
}

fn bench_commit_throughput(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("commit_throughput");
    group.sample_size(10);
    for txns in [10usize, 50] {
        group.throughput(Throughput::Elements(txns as u64));
        group.bench_with_input(BenchmarkId::new("in_memory", txns), &txns, |b, &n| {
            b.iter(|| black_box(run_memory(n)))
        });
        group.bench_with_input(BenchmarkId::new("durable_fsync", txns), &txns, |b, &n| {
            b.iter(|| black_box(run_durable(n, "commit")))
        });
    }
    group.finish();
}

fn bench_recovery(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("recovery_replay");
    group.sample_size(10);
    for txns in [100usize, 1000] {
        // build the log once
        let dir = tmpdir(&format!("recover-{txns}"));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = schema();
        let item = schema.class_by_name("item").unwrap();
        let v = schema.attr_by_name(item, "v").unwrap();
        {
            let (mut db, _) =
                DurableEngine::open(schema.clone(), EngineConfig::default(), &dir, vec![])
                    .unwrap();
            for i in 0..txns {
                db.begin().unwrap();
                db.exec_block(&[Op::Create {
                    class: item,
                    inits: vec![(v, Value::Int(i as i64))],
                }])
                .unwrap();
                db.commit().unwrap();
            }
        }
        group.throughput(Throughput::Elements(txns as u64));
        group.bench_with_input(BenchmarkId::from_parameter(txns), &dir, |b, dir| {
            b.iter(|| {
                let (db, report) = DurableEngine::open(
                    schema.clone(),
                    EngineConfig::default(),
                    dir,
                    vec![],
                )
                .unwrap();
                assert_eq!(report.replayed as usize, txns);
                black_box(db.engine().store().len())
            })
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_commit_throughput, bench_recovery);
criterion_main!(benches);
