//! Streaming composite-event detection with the incremental evaluator:
//! the §5 implementation sketch taken to its conclusion — `ts` maintained
//! online in O(|expr|) per arrival, no event log retained.
//!
//! ```sh
//! cargo run --example incremental_detector
//! ```

use chimera::calculus::{ts_logical, EventExpr, IncrementalTs};
use chimera::events::{EventKind, EventType, Window};
use chimera::model::ClassId;
use chimera::workload::{StreamConfig, StreamGen};

fn main() {
    let p = |n: u32| EventExpr::prim(EventType::external(ClassId(0), n));
    // a rule someone would actually write: "a price change (0) preceded a
    // trade (1) on the same instrument, and no circuit-break (2) happened"
    let expr = p(0).iprec(p(1)).and(p(2).not());
    println!("watching: {expr}\n");

    let mut detector = IncrementalTs::new(&expr).expect("well-formed");
    let mut gen = StreamGen::new(StreamConfig {
        event_types: 3,
        objects: 6,
        seed: 7,
        skew: 0.5,
    });

    // stream until a handful of detections (capped so a broken generator
    // can't loop forever); report activations and consume on each detection
    let mut eb = chimera::events::EventBase::new();
    let mut detections = 0;
    let mut events = 0;
    let mut window_start = chimera::events::Timestamp::ZERO;
    while detections < 5 && events < 10_000 {
        events += 1;
        let verbose = events <= 40;
        let (ty, oid) = gen.next_arrival();
        let occ = eb.append(ty, oid);
        detector.observe(&occ);
        let now = eb.now();

        // cross-check against the from-scratch evaluator (exact equality)
        let reference = ts_logical(&expr, &eb, Window::new(window_start, now), now);
        assert_eq!(detector.ts_at(now), reference, "incremental must be exact");

        // a circuit-break refutes the negation for as long as it stays in
        // the window, so treat it as consuming: clear state and start a
        // fresh window once the halt has been handled
        if ty.kind == EventKind::External(2) {
            if verbose {
                println!("t{:<3} break  on {oid} -> window consumed, restarting", now.raw());
            }
            detector.reset();
            window_start = now;
            continue;
        }

        if detector.is_active() && detector.window_nonempty() {
            detections += 1;
            println!(
                "t{:<3} {} on {} -> ACTIVE (stamp {}), consuming window",
                now.raw(),
                match ty.kind {
                    chimera::events::EventKind::External(0) => "price ",
                    chimera::events::EventKind::External(1) => "trade ",
                    _ => "break ",
                },
                oid,
                detector.ts_at(now).activation().unwrap()
            );
            detector.reset(); // the rule was "considered": consume
            window_start = now;
        }
    }
    println!("\n{detections} detections over {events} events.");
    assert!(detections > 0, "the seeded stream produces detections");
}
