//! Synthetic event streams.

use chimera_events::{EventBase, EventType};
use chimera_model::{ClassId, Oid};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Stream generator configuration.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of distinct (external) event types.
    pub event_types: u32,
    /// Number of distinct objects.
    pub objects: u64,
    /// RNG seed (streams are fully reproducible).
    pub seed: u64,
    /// Skew: 0.0 = uniform type mix; larger values concentrate
    /// occurrences on low-numbered types (Zipf-like, s = `skew`).
    pub skew: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            event_types: 8,
            objects: 16,
            seed: 42,
            skew: 0.0,
        }
    }
}

/// A seeded generator of `(EventType, Oid)` arrivals.
#[derive(Debug)]
pub struct StreamGen {
    cfg: StreamConfig,
    rng: StdRng,
    /// Cumulative type distribution.
    cdf: Vec<f64>,
}

impl StreamGen {
    /// New generator.
    pub fn new(cfg: StreamConfig) -> Self {
        assert!(cfg.event_types > 0 && cfg.objects > 0);
        let mut weights: Vec<f64> = (1..=cfg.event_types)
            .map(|k| 1.0 / (k as f64).powf(cfg.skew))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        StreamGen {
            cfg,
            rng,
            cdf: weights,
        }
    }

    /// Next arrival.
    pub fn next_arrival(&mut self) -> (EventType, Oid) {
        let x: f64 = self.rng.random_range(0.0..1.0);
        let tyn = self.cdf.partition_point(|&c| c < x) as u32;
        let tyn = tyn.min(self.cfg.event_types - 1);
        let oid = self.rng.random_range(1..=self.cfg.objects);
        (EventType::external(ClassId(0), tyn), Oid(oid))
    }

    /// Append `n` arrivals to an event base (one clock tick each).
    pub fn fill(&mut self, eb: &mut EventBase, n: usize) {
        for _ in 0..n {
            let (ty, oid) = self.next_arrival();
            eb.append(ty, oid);
        }
    }

    /// Build a fresh event base with `n` arrivals.
    pub fn build(&mut self, n: usize) -> EventBase {
        let mut eb = EventBase::new();
        self.fill(&mut eb, n);
        eb
    }

    /// The event types this stream can produce.
    pub fn type_universe(&self) -> Vec<EventType> {
        (0..self.cfg.event_types)
            .map(|n| EventType::external(ClassId(0), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_with_same_seed() {
        let mut a = StreamGen::new(StreamConfig::default());
        let mut b = StreamGen::new(StreamConfig::default());
        for _ in 0..100 {
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StreamGen::new(StreamConfig {
            seed: 1,
            ..Default::default()
        });
        let mut b = StreamGen::new(StreamConfig {
            seed: 2,
            ..Default::default()
        });
        let sa: Vec<_> = (0..50).map(|_| a.next_arrival()).collect();
        let sb: Vec<_> = (0..50).map(|_| b.next_arrival()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn respects_population_bounds() {
        let mut g = StreamGen::new(StreamConfig {
            event_types: 3,
            objects: 5,
            seed: 7,
            skew: 0.0,
        });
        for _ in 0..200 {
            let (ty, oid) = g.next_arrival();
            match ty.kind {
                chimera_events::EventKind::External(n) => assert!(n < 3),
                _ => panic!("unexpected kind"),
            }
            assert!(oid.0 >= 1 && oid.0 <= 5);
        }
    }

    #[test]
    fn skew_concentrates_low_types() {
        let mut g = StreamGen::new(StreamConfig {
            event_types: 8,
            objects: 4,
            seed: 3,
            skew: 1.5,
        });
        let mut counts = [0usize; 8];
        for _ in 0..2000 {
            let (ty, _) = g.next_arrival();
            if let chimera_events::EventKind::External(n) = ty.kind {
                counts[n as usize] += 1;
            }
        }
        assert!(
            counts[0] > counts[7] * 3,
            "skewed stream should favour type 0: {counts:?}"
        );
    }

    #[test]
    fn fill_appends_monotonic_stamps() {
        let mut g = StreamGen::new(StreamConfig::default());
        let eb = g.build(50);
        assert_eq!(eb.len(), 50);
        let stamps: Vec<_> = eb.iter().map(|e| e.ts).collect();
        assert!(stamps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn type_universe_matches_config() {
        let g = StreamGen::new(StreamConfig {
            event_types: 4,
            ..Default::default()
        });
        assert_eq!(g.type_universe().len(), 4);
    }
}
