//! Scheduling-stress suite: many feeder threads racing into small queues
//! under both backpressure policies, with intra-shard check parallelism
//! on. Run repeatedly in CI (`for i in $(seq 1 10)`) to shake out
//! scheduling-dependent flakiness — every assertion here must hold for
//! *any* interleaving.

use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_exec::EngineConfig;
use chimera_model::{AttrDef, AttrType, Oid, Schema, SchemaBuilder};
use chimera_rules::TriggerDef;
use chimera_runtime::{Backpressure, Runtime, RuntimeConfig, TenantId};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("qty", AttrType::Integer)])
        .unwrap();
    b.build()
}

/// A handful of rules over external channels, including instance pairs,
/// so check rounds do real plan work.
fn triggers(schema: &Schema) -> Vec<TriggerDef> {
    let item = schema.class_by_name("item").unwrap();
    let p = |n: u32| EventExpr::prim(EventType::external(item, n));
    let mut defs = Vec::new();
    for i in 0..8u32 {
        let expr = match i % 4 {
            0 => p(i % 3),
            1 => p(i % 3).and(p((i + 1) % 3)),
            2 => p(i % 3).iand(p((i + 1) % 3)),
            _ => p(i % 3).iprec(p((i + 1) % 3)),
        };
        defs.push(TriggerDef::new(format!("r{i}"), expr));
    }
    defs
}

/// Feeders race into a blocking runtime; nothing may be lost and every
/// tenant must end with exactly its own event count.
#[test]
fn blocking_feeders_lose_nothing() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let rt = Runtime::new(
        s,
        triggers(&schema()),
        RuntimeConfig {
            shards: 4,
            queue_capacity: 2, // tiny: force constant backpressure
            backpressure: Backpressure::Block,
            engine: EngineConfig {
                check_workers: 2,
                ..EngineConfig::default()
            },
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    const FEEDERS: u64 = 8;
    const TENANTS_PER_FEEDER: u64 = 4;
    const BLOCKS: u64 = 12;
    std::thread::scope(|scope| {
        for f in 0..FEEDERS {
            let rt = &rt;
            scope.spawn(move || {
                for k in 0..TENANTS_PER_FEEDER {
                    let t = TenantId(f * TENANTS_PER_FEEDER + k);
                    rt.begin(t).unwrap();
                    for b in 0..BLOCKS {
                        rt.raise_external(t, vec![(item, (b % 3) as u32, Oid(b % 4 + 1))])
                            .unwrap();
                    }
                    rt.commit(t).unwrap();
                }
            });
        }
    });
    rt.flush().unwrap();
    for t in 0..FEEDERS * TENANTS_PER_FEEDER {
        let len = rt
            .with_tenant(TenantId(t), |e| e.event_base().len())
            .unwrap();
        // BLOCKS external events; rule considerations add no occurrences
        // (the triggers have no actions)
        assert_eq!(len as u64, BLOCKS, "tenant {t}");
        assert_eq!(rt.tenant_errors(TenantId(t)), Some((0, None)));
    }
    let stats = rt.stats();
    assert_eq!(stats.tenants, (FEEDERS * TENANTS_PER_FEEDER) as usize);
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(
        stats.jobs_submitted,
        FEEDERS * TENANTS_PER_FEEDER * (BLOCKS + 2)
    );
    assert_eq!(stats.jobs_shed, 0);
    assert_eq!(stats.job_errors + stats.job_panics, 0);
    assert_eq!(stats.engine.commits, FEEDERS * TENANTS_PER_FEEDER);
}

/// Shedding runtime under racing feeders: jobs may be dropped, but the
/// accounting must balance exactly and the runtime must stay live.
#[test]
fn shedding_accounting_balances() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let rt = Runtime::new(
        s,
        triggers(&schema()),
        RuntimeConfig {
            shards: 2,
            queue_capacity: 1,
            backpressure: Backpressure::Shed,
            engine: EngineConfig::default(),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    const FEEDERS: u64 = 6;
    const SUBMITS: u64 = 50;
    let mut accepted: u64 = 0;
    let mut shed: u64 = 0;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..FEEDERS)
            .map(|f| {
                let rt = &rt;
                scope.spawn(move || {
                    let t = TenantId(f);
                    let mut ok = 0u64;
                    let mut dropped = 0u64;
                    for i in 0..SUBMITS {
                        let job_ok = if i == 0 {
                            rt.begin(t).is_ok()
                        } else {
                            rt.raise_external(t, vec![(item, (i % 3) as u32, Oid(1))])
                                .is_ok()
                        };
                        if job_ok {
                            ok += 1;
                        } else {
                            dropped += 1;
                        }
                    }
                    (ok, dropped)
                })
            })
            .collect();
        for h in handles {
            let (ok, dropped) = h.join().unwrap();
            accepted += ok;
            shed += dropped;
        }
    });
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_submitted, accepted);
    assert_eq!(stats.jobs_processed, accepted);
    assert_eq!(stats.jobs_shed, shed);
    assert_eq!(accepted + shed, FEEDERS * SUBMITS);
    assert_eq!(stats.job_panics, 0);
    // a begin may have been shed: tolerate NoActiveTransaction errors,
    // but the error count is bounded by the processed jobs
    assert!(stats.job_errors <= stats.jobs_processed);
}

/// Multiple flushers racing feeders: flush must never return while its
/// shard still holds queued work, and never deadlock.
#[test]
fn concurrent_flush_is_safe() {
    let s = schema();
    let item = s.class_by_name("item").unwrap();
    let rt = Runtime::new(
        s,
        vec![],
        RuntimeConfig {
            shards: 3,
            queue_capacity: 4,
            backpressure: Backpressure::Block,
            engine: EngineConfig::default(),
            ..RuntimeConfig::default()
        },
    )
    .unwrap();
    std::thread::scope(|scope| {
        for f in 0..4u64 {
            let rt = &rt;
            scope.spawn(move || {
                let t = TenantId(f);
                rt.begin(t).unwrap();
                for i in 0..30u64 {
                    rt.raise_external(t, vec![(item, (i % 2) as u32, Oid(1))])
                        .unwrap();
                    if i % 10 == 0 {
                        rt.flush().unwrap();
                    }
                }
                rt.commit(t).unwrap();
            });
        }
        for _ in 0..2 {
            let rt = &rt;
            scope.spawn(move || {
                for _ in 0..20 {
                    rt.flush().unwrap();
                    std::thread::yield_now();
                }
            });
        }
    });
    rt.flush().unwrap();
    let stats = rt.stats();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.engine.commits, 4);
}
