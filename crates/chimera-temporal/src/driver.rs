//! Delivering clock events into a running engine.
//!
//! The driver owns a [`ClockScheduler`] and a reserved class acting as
//! the clock channel namespace. [`ClockDriver::pump`] is called between
//! blocks (the only points at which Chimera observes new events anyway):
//! it collects every firing due at the engine's current logical instant
//! and delivers them as **one external block**, so a batch of simultaneous
//! clock ticks triggers rules exactly once, like any other block.
//!
//! Delivery itself appends occurrences and therefore advances the logical
//! clock; the due-set is computed against the instant *before* delivery,
//! so a pump never feeds itself (a `period = 1` clock fires once per pump,
//! not unboundedly).

use crate::clock::{ClockScheduler, ClockSpec};
use crate::CLOCK_OID;
use chimera_events::EventOccurrence;
use chimera_exec::{Engine, Result};
use chimera_model::ClassId;

/// Pumps clock events into an [`Engine`].
#[derive(Debug, Clone)]
pub struct ClockDriver {
    scheduler: ClockScheduler,
    class: ClassId,
}

impl ClockDriver {
    /// Driver delivering on `class`'s external channels, anchored at the
    /// engine's current instant.
    pub fn new(engine: &Engine, class: ClassId) -> Self {
        ClockDriver {
            scheduler: ClockScheduler::new(engine.event_base().now()),
            class,
        }
    }

    /// Register a clock spec on `channel`.
    pub fn register(&mut self, spec: ClockSpec, channel: u32) -> &mut Self {
        self.scheduler.register(spec, channel);
        self
    }

    /// The underlying scheduler.
    pub fn scheduler(&self) -> &ClockScheduler {
        &self.scheduler
    }

    /// Deliver every firing due at the engine's current instant as one
    /// external block. Returns the delivered occurrences (empty when
    /// nothing was due — no block is executed then).
    pub fn pump(&mut self, engine: &mut Engine) -> Result<Vec<EventOccurrence>> {
        let events = self.collect_due(engine.event_base().now());
        if events.is_empty() {
            return Ok(Vec::new());
        }
        engine.raise_external(&events)
    }

    /// Collect the due firings at `now` as external-event triples without
    /// delivering them — for engine wrappers (e.g. a durable engine) that
    /// own the delivery path. Advances the poll cursor exactly like
    /// [`ClockDriver::pump`].
    pub fn collect_due(
        &mut self,
        now: chimera_events::Timestamp,
    ) -> Vec<(ClassId, u32, chimera_model::Oid)> {
        self.scheduler
            .due(now)
            .iter()
            .map(|&(_, channel)| (self.class, channel, CLOCK_OID))
            .collect()
    }

    /// Re-anchor at the engine's current instant (call at `begin`).
    pub fn reset(&mut self, engine: &Engine) {
        self.scheduler.reset(engine.event_base().now());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::EventExpr;
    use chimera_events::EventType;
    use chimera_exec::Op;
    use chimera_model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
    use chimera_rules::{ActionStmt, Condition, Term, TriggerDef, VarDecl};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class("clock", None, vec![]).unwrap();
        b.class(
            "task",
            None,
            vec![AttrDef::with_default(
                "done",
                AttrType::Integer,
                Value::Int(0),
            )],
        )
        .unwrap();
        b.build()
    }

    #[test]
    fn pump_delivers_due_ticks_as_one_block() {
        let schema = schema();
        let clock = schema.class_by_name("clock").unwrap();
        let task = schema.class_by_name("task").unwrap();
        let mut engine = Engine::new(schema);
        let mut driver = ClockDriver::new(&engine, clock);
        driver.register(ClockSpec::Every { period: 2, phase: 0 }, 7);

        engine.begin().unwrap();
        // advance the logical clock with ordinary work
        for _ in 0..3 {
            engine
                .exec_block(&[Op::Create {
                    class: task,
                    inits: vec![],
                }])
                .unwrap();
        }
        let blocks_before = engine.stats().blocks;
        // now = 3: the only due firing of (0, 3] is instant 2.
        let occs = driver.pump(&mut engine).unwrap();
        assert_eq!(occs.len(), 1);
        assert_eq!(occs[0].ty, EventType::external(clock, 7));
        assert_eq!(occs[0].oid, crate::CLOCK_OID);
        assert_eq!(engine.stats().blocks, blocks_before + 1);
        // delivery advanced the clock to 4, making instant 4 due…
        let second = driver.pump(&mut engine).unwrap();
        assert_eq!(second.len(), 1);
        // …whose delivery lands on 5; nothing is due in (4, 5] and the
        // feedback dies out instead of self-sustaining.
        assert!(driver.pump(&mut engine).unwrap().is_empty());
        engine.commit().unwrap();
    }

    #[test]
    fn pump_without_due_ticks_is_a_no_op() {
        let schema = schema();
        let clock = schema.class_by_name("clock").unwrap();
        let mut engine = Engine::new(schema);
        let mut driver = ClockDriver::new(&engine, clock);
        driver.register(ClockSpec::At(chimera_events::Timestamp(1_000)), 1);
        engine.begin().unwrap();
        let blocks = engine.stats().blocks;
        assert!(driver.pump(&mut engine).unwrap().is_empty());
        assert_eq!(engine.stats().blocks, blocks);
        engine.commit().unwrap();
    }

    /// The deadline pattern: a periodic tick plus negation of completion.
    /// `external(clock#1) + -modify(task.done)` — active at a tick iff no
    /// task was completed since the rule last considered.
    #[test]
    fn deadline_rule_fires_on_tick_without_completion() {
        let schema = schema();
        let clock = schema.class_by_name("clock").unwrap();
        let task = schema.class_by_name("task").unwrap();
        let done = schema.attr_by_name(task, "done").unwrap();
        let mut engine = Engine::new(schema);
        let mut driver = ClockDriver::new(&engine, clock);
        driver.register(ClockSpec::After { delay: 2 }, 1);

        let expr = EventExpr::prim(EventType::external(clock, 1))
            .and(EventExpr::prim(EventType::modify(task, done)).not());
        let mut alert = TriggerDef::new("deadline", expr);
        alert.condition = Condition {
            decls: vec![VarDecl {
                name: "T".into(),
                class: "task".into(),
            }],
            formulas: vec![],
        };
        alert.actions = vec![ActionStmt::Modify {
            var: "T".into(),
            attr: "done".into(),
            value: Term::int(-1), // mark overdue
        }];
        engine.define_trigger(alert).unwrap();

        engine.begin().unwrap();
        let oid = engine
            .exec_block(&[Op::Create {
                class: task,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid;
        engine
            .exec_block(&[Op::Create {
                class: task,
                inits: vec![],
            }])
            .unwrap();
        // the tick at anchor+2 is due now; no task.done modification
        // happened, so the deadline rule fires and marks tasks overdue.
        let occs = driver.pump(&mut engine).unwrap();
        assert_eq!(occs.len(), 1);
        assert_eq!(engine.read_attr(oid, "done").unwrap(), Value::Int(-1));
        engine.commit().unwrap();
    }

    /// Completion before the tick suppresses the alert: the negation is
    /// inactive at the tick instant (the `-1` marker never appears).
    #[test]
    fn deadline_rule_suppressed_by_completion() {
        let schema = schema();
        let clock = schema.class_by_name("clock").unwrap();
        let task = schema.class_by_name("task").unwrap();
        let done = schema.attr_by_name(task, "done").unwrap();
        let mut engine = Engine::new(schema);
        let mut driver = ClockDriver::new(&engine, clock);
        driver.register(ClockSpec::After { delay: 2 }, 1);

        let expr = EventExpr::prim(EventType::external(clock, 1))
            .and(EventExpr::prim(EventType::modify(task, done)).not());
        let mut alert = TriggerDef::new("deadline", expr);
        alert.condition = Condition {
            decls: vec![VarDecl {
                name: "T".into(),
                class: "task".into(),
            }],
            formulas: vec![],
        };
        alert.actions = vec![ActionStmt::Modify {
            var: "T".into(),
            attr: "done".into(),
            value: Term::int(-1),
        }];
        engine.define_trigger(alert).unwrap();

        engine.begin().unwrap();
        let oid = engine
            .exec_block(&[Op::Create {
                class: task,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid;
        engine
            .exec_block(&[Op::Modify {
                oid,
                attr: done,
                value: Value::Int(1),
            }])
            .unwrap();
        driver.pump(&mut engine).unwrap();
        // completed before the tick: still 1, not -1
        assert_eq!(engine.read_attr(oid, "done").unwrap(), Value::Int(1));
        engine.commit().unwrap();
    }

    #[test]
    fn reset_reanchors_to_engine_instant() {
        let schema = schema();
        let clock = schema.class_by_name("clock").unwrap();
        let task = schema.class_by_name("task").unwrap();
        let mut engine = Engine::new(schema);
        let mut driver = ClockDriver::new(&engine, clock);
        driver.register(ClockSpec::After { delay: 1 }, 1);
        engine.begin().unwrap();
        engine
            .exec_block(&[Op::Create {
                class: task,
                inits: vec![],
            }])
            .unwrap();
        driver.reset(&engine);
        assert_eq!(driver.scheduler().anchor(), engine.event_base().now());
        engine.commit().unwrap();
    }
}
