//! Property suite for the static rule analysis: the termination verdict
//! is *sound* — whenever the triggering graph is acyclic, the engine's
//! reaction loop terminates, for arbitrary rule sets and workloads.
//! (The converse direction is deliberately conservative and exercised by
//! the deterministic tests in `analysis_runtime.rs`.)

use chimera::analysis::{analyze, TriggeringGraph};
use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::{Engine, EngineConfig, Op};
use chimera::model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera::rules::{ActionStmt, Condition, Formula, Term, TriggerDef, VarDecl};
use proptest::prelude::*;

const ATTRS: usize = 5;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    let attrs = (0..ATTRS)
        .map(|i| AttrDef::new(format!("a{i}"), AttrType::Integer))
        .collect();
    b.class("c", None, attrs).unwrap();
    b.build()
}

/// A rule listening on `modify(c.a{listen})` (or `create` when `listen`
/// is None) that writes `a{write}` with a constant.
fn rule(name: String, schema: &Schema, listen: Option<usize>, write: usize) -> TriggerDef {
    let c = schema.class_by_name("c").unwrap();
    let events = match listen {
        Some(i) => {
            let a = schema.attr_by_name(c, &format!("a{i}")).unwrap();
            EventExpr::prim(EventType::modify(c, a))
        }
        None => EventExpr::prim(EventType::create(c)),
    };
    let mut def = TriggerDef::new(name, events.clone());
    def.condition = Condition {
        decls: vec![VarDecl {
            name: "V".into(),
            class: "c".into(),
        }],
        formulas: vec![Formula::Occurred {
            expr: events,
            var: "V".into(),
        }],
    };
    def.actions = vec![ActionStmt::Modify {
        var: "V".into(),
        attr: format!("a{write}"),
        value: Term::int(1),
    }];
    def
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness: acyclic verdict ⇒ the engine never hits its step limit.
    #[test]
    fn acyclic_verdict_implies_runtime_termination(
        links in prop::collection::vec((prop::option::of(0usize..ATTRS), 0usize..ATTRS), 1..6),
        creates in 1usize..4,
    ) {
        let schema = schema();
        let defs: Vec<TriggerDef> = links
            .iter()
            .enumerate()
            .map(|(i, &(listen, write))| rule(format!("r{i}"), &schema, listen, write))
            .collect();
        let graph = TriggeringGraph::build(&defs, &schema).unwrap();
        prop_assume!(graph.termination().is_terminating());

        let c = schema.class_by_name("c").unwrap();
        let a0 = schema.attr_by_name(c, "a0").unwrap();
        let mut engine = Engine::with_config(
            schema,
            EngineConfig {
                max_rule_steps: 100_000,
                ..EngineConfig::default()
            },
        );
        for d in defs {
            engine.define_trigger(d).unwrap();
        }
        engine.begin().unwrap();
        for _ in 0..creates {
            engine
                .exec_block(&[Op::Create { class: c, inits: vec![] }])
                .unwrap();
        }
        // kick every listen channel once
        let oid = engine.extent(c)[0];
        engine
            .exec_block(&[Op::Modify { oid, attr: a0, value: Value::Int(9) }])
            .unwrap();
        engine.commit().unwrap();
    }

    /// The graph's edge relation is exactly "some effect type is listened
    /// to" for this rule family (a self-check of effects × listens).
    #[test]
    fn edges_match_listen_write_overlap(
        links in prop::collection::vec((prop::option::of(0usize..ATTRS), 0usize..ATTRS), 1..6),
    ) {
        let schema = schema();
        let defs: Vec<TriggerDef> = links
            .iter()
            .enumerate()
            .map(|(i, &(listen, write))| rule(format!("r{i}"), &schema, listen, write))
            .collect();
        let graph = TriggeringGraph::build(&defs, &schema).unwrap();
        for (i, &(_, write_i)) in links.iter().enumerate() {
            for (j, &(listen_j, _)) in links.iter().enumerate() {
                let expect = listen_j == Some(write_i);
                prop_assert_eq!(
                    graph.has_edge(&format!("r{i}"), &format!("r{j}")),
                    expect,
                    "edge r{} → r{}", i, j
                );
            }
        }
    }

    /// Cyclic rule sets are flagged: a randomly-chosen ring of rules
    /// (r_k listens a_k, writes a_{k+1 mod n}) always produces MayLoop
    /// containing the whole ring.
    #[test]
    fn rings_are_always_flagged(n in 2usize..ATTRS) {
        let schema = schema();
        let defs: Vec<TriggerDef> = (0..n)
            .map(|k| rule(format!("r{k}"), &schema, Some(k), (k + 1) % n))
            .collect();
        let report = analyze(&defs, &schema).unwrap();
        let chimera::analysis::TerminationVerdict::MayLoop { cycles } = report.termination
        else {
            return Err(TestCaseError::fail("ring not flagged"));
        };
        prop_assert_eq!(cycles.len(), 1);
        prop_assert_eq!(cycles[0].len(), n);
    }
}
