//! Trigger sensitivity: which arrivals can trigger a rule.
//!
//! Reuses the §5.1 machinery: an arrival can make a rule's `ts` turn
//! positive only if it matches a positive-or-any entry of the variation
//! set `V(E)` — unless the expression is *vacuously active* (active over an
//! empty window, so the first arrival of **any** type opens the `R ≠ ∅`
//! gate) or *fresh-object sensitive* (an arrival of any type introduces a
//! new object that activates an inner `-=` boundary). In those two cases
//! the sensitivity is universal and the triggering graph must assume an
//! edge from every producer.

use chimera_calculus::{EventExpr, RelevanceFilter};
use chimera_events::EventType;
use std::collections::BTreeSet;

/// The set of event-type arrivals that can trigger a rule.
#[derive(Debug, Clone)]
pub struct TriggerSensitivity {
    /// Arrival-matching entries of `V(E)` (positive or any sign).
    specific: BTreeSet<EventType>,
    /// Sensitive to every arrival (vacuous activity or fresh-object
    /// paths) — `specific` is then only informative.
    universal: bool,
}

impl TriggerSensitivity {
    /// Analyse a triggering event expression.
    pub fn new(expr: &EventExpr) -> Self {
        let filter = RelevanceFilter::new(expr);
        let specific = filter
            .variations()
            .iter()
            .filter(|(_, v)| v.sign.matches_arrival())
            .map(|(ty, _)| *ty)
            .collect();
        TriggerSensitivity {
            specific,
            universal: filter.vacuously_active() || filter.arrival_sensitive(),
        }
    }

    /// Can an arrival of `ty` (possibly) trigger the rule?
    pub fn may_trigger_on(&self, ty: EventType) -> bool {
        self.universal || self.specific.contains(&ty)
    }

    /// Can *some* arrival from `types` trigger the rule? An empty producer
    /// set yields `false` even for universal listeners (the §4.4 guard:
    /// no arrivals, no triggering).
    pub fn may_trigger_on_any<'a>(&self, types: impl IntoIterator<Item = &'a EventType>) -> bool {
        types.into_iter().any(|ty| self.may_trigger_on(*ty))
    }

    /// Is the rule sensitive to every arrival?
    pub fn is_universal(&self) -> bool {
        self.universal
    }

    /// The specifically-matching event types (empty when only negative
    /// variations exist and the expression is not universal).
    pub fn specific_types(&self) -> &BTreeSet<EventType> {
        &self.specific
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    #[test]
    fn primitive_listens_to_itself_only() {
        let s = TriggerSensitivity::new(&p(0));
        assert!(s.may_trigger_on(et(0)));
        assert!(!s.may_trigger_on(et(1)));
        assert!(!s.is_universal());
    }

    #[test]
    fn disjunction_listens_to_both() {
        let s = TriggerSensitivity::new(&p(0).or(p(1)));
        assert!(s.may_trigger_on(et(0)));
        assert!(s.may_trigger_on(et(1)));
        assert!(!s.may_trigger_on(et(2)));
    }

    /// `B + -A`: arrivals of `B` can activate; arrivals of `A` can only
    /// *deactivate* — they never turn `ts` positive.
    #[test]
    fn negated_conjunct_is_not_an_activator() {
        let s = TriggerSensitivity::new(&p(1).and(p(0).not()));
        assert!(s.may_trigger_on(et(1)));
        assert!(!s.may_trigger_on(et(0)));
        assert!(!s.is_universal());
    }

    /// A pure negation is vacuously active: the first arrival of *any*
    /// type triggers it through the `R ≠ ∅` gate.
    #[test]
    fn pure_negation_is_universal() {
        let s = TriggerSensitivity::new(&p(0).not());
        assert!(s.is_universal());
        assert!(s.may_trigger_on(et(7)));
    }

    /// An inner `-=` boundary reacts to fresh objects of any event type.
    #[test]
    fn fresh_object_sensitivity_is_universal() {
        let s = TriggerSensitivity::new(&p(0).inot().ior(p(1)));
        assert!(s.is_universal());
    }

    /// `A , -A` has `Δ any` on A: both signs collapse, arrivals match.
    #[test]
    fn any_sign_matches_arrival() {
        let s = TriggerSensitivity::new(&p(0).or(p(0).not()));
        assert!(s.may_trigger_on(et(0)));
    }

    #[test]
    fn may_trigger_on_any_requires_nonempty_producer_set() {
        let s = TriggerSensitivity::new(&p(0).not());
        assert!(s.is_universal());
        // universal listener, but the producer generates nothing: no edge.
        assert!(!s.may_trigger_on_any([].iter()));
        assert!(s.may_trigger_on_any([et(5)].iter()));
    }
}
