//! Aggregated runtime counters.

use chimera_exec::EngineStats;
use chimera_rules::table::SupportStats;

/// A point-in-time aggregate over every shard and tenant engine of a
/// [`crate::Runtime`]: queue accounting (submitted / processed / shed /
/// blocked), job failures, and the summed engine + trigger-support work
/// counters. Obtained from [`crate::Runtime::stats`]; exact when the
/// runtime is quiesced (after [`crate::Runtime::flush`]), a live snapshot
/// otherwise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Shards (= worker threads) in the runtime.
    pub shards: usize,
    /// Tenants with a live engine.
    pub tenants: usize,
    /// Jobs accepted into a queue (shed submissions are not counted).
    pub jobs_submitted: u64,
    /// Jobs fully processed by a worker.
    pub jobs_processed: u64,
    /// Jobs rejected by the [`crate::Backpressure::Shed`] policy because
    /// the target shard's queue was full.
    pub jobs_shed: u64,
    /// Submissions that found the queue full and had to wait under the
    /// [`crate::Backpressure::Block`] policy.
    pub submits_blocked: u64,
    /// Jobs whose engine operation returned an error (recorded per
    /// tenant; the job still counts as processed).
    pub job_errors: u64,
    /// Worker-side panics while processing a job (the tenant's engine is
    /// discarded; the runtime keeps serving every other tenant).
    pub job_panics: u64,
    /// Job records appended to the shards' job logs (durable storage
    /// only; zero on in-memory runtimes).
    pub wal_appends: u64,
    /// fsyncs the shards' stores issued. Under group commit this counts
    /// *batches*, so `wal_appends / wal_syncs` is the achieved group
    /// size.
    pub wal_syncs: u64,
    /// Shard snapshots written (periodic job-log compaction).
    pub snapshots: u64,
    /// Tenants rebuilt from shard snapshots at startup.
    pub tenants_recovered: u64,
    /// Logged jobs replayed on top of snapshots at startup.
    pub jobs_replayed: u64,
    /// Engine work counters, summed over every tenant engine.
    pub engine: EngineStats,
    /// Trigger-support counters, summed over every tenant engine.
    pub support: SupportStats,
}

impl RuntimeStats {
    /// Fold one tenant engine's counters into the aggregate.
    pub(crate) fn add_engine(&mut self, e: EngineStats) {
        self.engine.blocks += e.blocks;
        self.engine.events += e.events;
        self.engine.considerations += e.considerations;
        self.engine.executions += e.executions;
        self.engine.commits += e.commits;
        self.engine.rollbacks += e.rollbacks;
    }

    /// Fold one tenant engine's trigger-support counters in.
    pub(crate) fn add_support(&mut self, s: SupportStats) {
        self.support.rules_checked += s.rules_checked;
        self.support.skipped_by_filter += s.skipped_by_filter;
        self.support.ts_probes += s.ts_probes;
        self.support.probe_memo_hits += s.probe_memo_hits;
        self.support.check_rounds += s.check_rounds;
        self.support.probe_sets_built += s.probe_sets_built;
    }
}
