//! Loopback server suite: a live end-to-end smoke over every request
//! kind, per-job completion semantics, and a malformed-input fuzz loop
//! against the server's frame parser (the server must never panic and
//! must keep serving well-formed clients afterwards).

use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera_net::wire::write_frame;
use chimera_net::{
    Client, ExternalEvent, NetError, Server, ServerConfig, TenantQuery, TenantReply, WireJob,
    WireOp, WireOutcome,
};
use chimera_rules::TriggerDef;
use chimera_runtime::{Backpressure, Runtime, RuntimeConfig};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "stock",
        None,
        vec![
            AttrDef::new("quantity", AttrType::Integer),
            AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
        ],
    )
    .unwrap();
    b.build()
}

/// One runtime-wide trigger: every external tick on channel 1 creates a
/// stock object (an observable firing).
fn tick_trigger(s: &Schema) -> TriggerDef {
    let stock = s.class_by_name("stock").unwrap();
    let mut def = TriggerDef::new("onTick", EventExpr::prim(EventType::external(stock, 1)));
    def.actions = vec![chimera_rules::ActionStmt::Create {
        class: "stock".into(),
        inits: vec![],
    }];
    def
}

fn start_server(triggers: Vec<TriggerDef>) -> Server {
    let s = schema();
    let rt = Runtime::new(
        s,
        triggers,
        RuntimeConfig {
            shards: 2,
            queue_capacity: 16,
            backpressure: Backpressure::Block,
            engine: Default::default(),
            ..Default::default()
        },
    )
    .unwrap();
    Server::bind("127.0.0.1:0", Arc::new(rt), ServerConfig::default()).unwrap()
}

#[test]
fn full_request_vocabulary_round_trips() {
    let server = start_server(vec![tick_trigger(&schema())]);
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    assert_eq!(c.server_name(), "chimera-net");
    assert_eq!(c.shards(), 2);

    let stock = 0u32; // ClassId(0) in this schema
    let tenant = 7u64;

    // begin + raise: the tick trigger fires, summary says so
    c.begin(tenant).unwrap();
    let done = c
        .submit_wait(
            tenant,
            WireJob::RaiseExternal(vec![ExternalEvent {
                class: stock,
                channel: 1,
                oid: 0,
            }]),
        )
        .unwrap();
    match done.outcome {
        WireOutcome::Done {
            events,
            considerations,
            executions,
        } => {
            assert_eq!(events, 2, "1 external + 1 rule-action create");
            assert_eq!(considerations, 1);
            assert_eq!(executions, 1);
        }
        other => panic!("expected Done, got {other:?}"),
    }

    // an exec block with a typed Value payload
    let done = c
        .submit_wait(
            tenant,
            WireJob::ExecBlock(vec![WireOp::Create {
                class: stock,
                inits: vec![(0, Value::Int(42))],
            }]),
        )
        .unwrap();
    assert!(done.outcome.is_done());
    c.commit(tenant).unwrap();

    // an engine error comes back as an Error outcome on the job itself
    let done = c.submit_wait(tenant, WireJob::Commit).unwrap();
    match &done.outcome {
        WireOutcome::Error { message } => assert!(message.contains("no active transaction")),
        other => panic!("expected Error outcome, got {other:?}"),
    }

    // tenant-local triggers defined over the wire, from concrete syntax
    let outcomes = c
        .define_triggers(
            tenant,
            "define immediate trigger clampQty for stock
               events modify(quantity)
               condition stock(S), S.quantity > S.max_quantity
               actions modify(S.quantity, S.max_quantity)
             end",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].name, "clampQty");
    assert!(outcomes[0].is_defined(), "{:?}", outcomes[0].error);
    // a bad one is a remote error, not a dead connection
    match c.define_triggers(tenant, "define trigger t events create(ghost) end") {
        Err(NetError::Remote(msg)) => assert!(msg.contains("parse error"), "{msg}"),
        other => panic!("expected Remote, got {other:?}"),
    }

    // flush + stats + tenant inspection
    c.flush().unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.job_errors, 1);
    assert_eq!(stats.commits, 1);
    match c.tenant_query(tenant, TenantQuery::Extent { class: stock }).unwrap() {
        // tick-created + block-created objects survived the commit
        TenantReply::Extent(oids) => assert_eq!(oids.len(), 2),
        other => panic!("expected Extent, got {other:?}"),
    }
    match c.tenant_query(tenant, TenantQuery::Errors).unwrap() {
        TenantReply::Errors { count, last } => {
            assert_eq!(count, 1);
            assert!(last.unwrap().contains("no active transaction"));
        }
        other => panic!("expected Errors, got {other:?}"),
    }
    // a tenant that never submitted has no engine
    assert_eq!(
        c.tenant_query(99, TenantQuery::EventLogLen).unwrap(),
        TenantReply::NoSuchTenant
    );

    server.shutdown();
}

#[test]
fn pipelined_submissions_all_complete_in_order() {
    let server = start_server(vec![]);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let stock = 0u32;
    const TENANTS: u64 = 16;
    const BLOCKS: u64 = 8;
    let mut completions = Vec::new();
    for t in 0..TENANTS {
        if let Some(d) = c.begin(t).unwrap() {
            completions.push(d);
        }
    }
    for b in 0..BLOCKS {
        for t in 0..TENANTS {
            let d = c
                .raise_external(
                    t,
                    vec![ExternalEvent {
                        class: stock,
                        channel: (b % 3) as u32,
                        oid: b,
                    }],
                )
                .unwrap();
            completions.extend(d);
        }
    }
    for t in 0..TENANTS {
        completions.extend(c.commit(t).unwrap());
    }
    completions.extend(c.drain().unwrap());
    // every submission got exactly one completion, in submission order,
    // with no flush anywhere
    assert_eq!(completions.len() as u64, TENANTS * (BLOCKS + 2));
    let ids: Vec<u64> = completions.iter().map(|d| d.job).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "completions arrive in submission order");
    assert!(completions.iter().all(|d| d.outcome.is_done()));
    let stats = c.stats().unwrap();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.tenants, TENANTS);
    server.shutdown();
}

#[test]
fn malformed_input_cannot_kill_the_server() {
    let server = start_server(vec![]);
    let addr = server.local_addr();
    let mut rng = StdRng::seed_from_u64(0xBADF00D);

    for round in 0..20 {
        let mut sock = TcpStream::connect(addr).unwrap();
        match round % 4 {
            // raw byte soup (usually an insane length prefix)
            0 => {
                let n = rng.random_range(1..64usize);
                let soup: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
                let _ = sock.write_all(&soup);
            }
            // a well-framed payload full of garbage
            1 => {
                let n = rng.random_range(1..48usize);
                let soup: Vec<u8> = (0..n).map(|_| rng.next_u32() as u8).collect();
                let _ = write_frame(&mut sock, &soup);
            }
            // a frame announcing more than it delivers, then a hangup
            2 => {
                let _ = sock.write_all(&1000u32.to_le_bytes());
                let _ = sock.write_all(&[0u8; 10]);
            }
            // a frame over the server's bound
            _ => {
                let _ = sock.write_all(&(u32::MAX).to_le_bytes());
            }
        }
        drop(sock);
    }

    // truncated *valid* requests: cut a real encoding mid-frame
    let hello = chimera_net::Request::Hello {
        version: chimera_net::PROTOCOL_VERSION,
        client: "fuzz".into(),
        durability: None,
    }
    .encode();
    for cut in 1..hello.len() {
        let mut sock = TcpStream::connect(addr).unwrap();
        let mut framed = Vec::new();
        write_frame(&mut framed, &hello).unwrap();
        let _ = sock.write_all(&framed[..4 + cut]);
        drop(sock);
    }

    // a garbage payload in a sound frame gets an Error *response* and
    // the connection keeps serving
    let mut sock = TcpStream::connect(addr).unwrap();
    write_frame(&mut sock, &[0xEE, 0x01, 0x02]).unwrap();
    let reply = chimera_net::read_frame(&mut sock, 1 << 20).unwrap().unwrap();
    match chimera_net::Response::decode(&reply).unwrap() {
        chimera_net::Response::Error { message } => {
            assert!(message.contains("unknown tag"), "{message}")
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // same connection, now a valid request
    write_frame(
        &mut sock,
        &chimera_net::Request::Hello {
            version: chimera_net::PROTOCOL_VERSION,
            client: "post-garbage".into(),
            durability: None,
        }
        .encode(),
    )
    .unwrap();
    let reply = chimera_net::read_frame(&mut sock, 1 << 20).unwrap().unwrap();
    assert!(matches!(
        chimera_net::Response::decode(&reply).unwrap(),
        chimera_net::Response::HelloAck { .. }
    ));
    drop(sock);

    // after all that, a fresh well-formed client still works end to end
    let mut c = Client::connect(addr).unwrap();
    c.begin(1).unwrap();
    c.commit(1).unwrap();
    let done = c.drain().unwrap();
    assert_eq!(done.len(), 2);
    assert!(done.iter().all(|d| d.outcome.is_done()));
    server.shutdown();
}

#[test]
fn wire_shutdown_stops_the_server() {
    let server = start_server(vec![]);
    let addr = server.local_addr();
    let mut c = Client::connect(addr).unwrap();
    c.begin(3).unwrap();
    c.commit(3).unwrap();
    c.drain().unwrap();
    c.shutdown_server().unwrap();
    assert!(server.is_stopped());
    server.shutdown(); // idempotent from the host side
    // the listener is gone: new connections fail outright
    assert!(Client::connect(addr).is_err());
}

#[test]
fn handshake_is_mandatory() {
    let server = start_server(vec![]);
    let addr = server.local_addr();
    // first well-formed request is not Hello: answered + closed
    let mut sock = TcpStream::connect(addr).unwrap();
    write_frame(&mut sock, &chimera_net::Request::Stats.encode()).unwrap();
    let reply = chimera_net::read_frame(&mut sock, 1 << 20).unwrap().unwrap();
    match chimera_net::Response::decode(&reply).unwrap() {
        chimera_net::Response::Error { message } => {
            assert!(message.contains("handshake required"), "{message}")
        }
        other => panic!("expected Error, got {other:?}"),
    }
    let mut rest = Vec::new();
    let _ = sock.read_to_end(&mut rest); // server closed the connection
    assert!(rest.is_empty());
    server.shutdown();
}

#[test]
fn version_mismatch_is_rejected() {
    let server = start_server(vec![]);
    let addr = server.local_addr();
    let mut sock = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut sock,
        &chimera_net::Request::Hello {
            version: 999,
            client: "time traveler".into(),
            durability: None,
        }
        .encode(),
    )
    .unwrap();
    let reply = chimera_net::read_frame(&mut sock, 1 << 20).unwrap().unwrap();
    match chimera_net::Response::decode(&reply).unwrap() {
        chimera_net::Response::Error { message } => {
            assert!(message.contains("version mismatch"), "{message}")
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // keep the read half open so the server-side write can't race the
    // hangup; explicit shutdown of our write half signals we're done
    let _ = sock.shutdown(std::net::Shutdown::Write);
    let mut rest = Vec::new();
    let _ = sock.read_to_end(&mut rest);
    server.shutdown();
}

#[test]
fn per_trigger_outcomes_survive_a_bad_declaration() {
    let server = start_server(vec![]);
    let mut c = Client::connect(server.local_addr()).unwrap();
    // three declarations: ok, duplicate name (engine refusal), ok — the
    // middle failure must not hide the third
    let outcomes = c
        .define_triggers(
            5,
            "define immediate trigger first for stock
               events modify(quantity)
               condition stock(S), S.quantity > S.max_quantity
               actions modify(S.quantity, S.max_quantity)
             end
             define immediate trigger first for stock
               events modify(quantity)
               condition stock(S), S.quantity > S.max_quantity
               actions modify(S.quantity, S.max_quantity)
             end
             define immediate trigger second for stock
               events modify(quantity)
               condition stock(S), S.quantity < 0
               actions modify(S.quantity, 0)
             end",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    assert!(outcomes[0].is_defined(), "{:?}", outcomes[0].error);
    assert!(!outcomes[1].is_defined(), "duplicate name must be refused");
    assert!(outcomes[2].is_defined(), "{:?}", outcomes[2].error);
    assert_eq!(
        outcomes.iter().map(|o| o.name.as_str()).collect::<Vec<_>>(),
        ["first", "first", "second"]
    );
    server.shutdown();
}

#[test]
fn connection_cap_refuses_with_typed_busy() {
    let s = schema();
    let rt = Runtime::new(s, vec![], RuntimeConfig::default()).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(rt),
        ServerConfig {
            max_connections: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let c1 = Client::connect(addr).unwrap();
    let c2 = Client::connect(addr).unwrap();
    // over the cap: one typed Busy frame, then the connection closes
    match Client::connect(addr) {
        Err(NetError::Busy { active: 2, limit: 2 }) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    // freeing a slot lets a new connection in (the accept loop reaps
    // finished handlers; give the dropped client's handler a moment)
    drop(c1);
    let mut again = Err(NetError::Closed);
    for _ in 0..100 {
        again = Client::connect(addr);
        if again.is_ok() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let c3 = again.expect("slot freed by dropping c1");
    drop(c3);
    drop(c2);
    server.shutdown();
}

#[test]
fn bytes_in_flight_cap_throttles_reads_but_answers_everything() {
    let s = schema();
    let rt = Runtime::new(
        s,
        vec![],
        RuntimeConfig {
            shards: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(rt),
        ServerConfig {
            // every request payload exceeds this budget, so the reader
            // must stop draining the socket after each decoded frame
            // until its response is flushed — maximum throttling, while
            // a pipelining client keeps pushing frames into the socket
            max_bytes_in_flight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let stock = 0u32;
    const BLOCKS: u64 = 64;
    let tenant = 9u64;
    let mut completions = Vec::new();
    completions.extend(c.begin(tenant).unwrap());
    for b in 0..BLOCKS {
        completions.extend(
            c.raise_external(
                tenant,
                vec![ExternalEvent {
                    class: stock,
                    channel: 0,
                    oid: b,
                }],
            )
            .unwrap(),
        );
    }
    completions.extend(c.commit(tenant).unwrap());
    completions.extend(c.drain().unwrap());
    // the cap slows the reader down; it must not lose or reorder anything
    assert_eq!(completions.len() as u64, BLOCKS + 2);
    assert!(completions.iter().all(|d| d.outcome.is_done()));
    let ids: Vec<u64> = completions.iter().map(|d| d.job).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted);
    let stats = c.stats().unwrap();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert!(
        stats.net_reads_throttled >= 1,
        "reader never hit the 1-byte budget: {stats:?}"
    );
    server.shutdown();
}

#[test]
fn silent_connection_is_reaped_at_handshake_deadline() {
    let s = schema();
    let rt = Runtime::new(s, vec![], RuntimeConfig::default()).unwrap();
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::new(rt),
        ServerConfig {
            handshake_timeout: std::time::Duration::from_millis(200),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    // connect and say nothing: the server must close the connection at
    // the handshake deadline without answering anything
    let start = std::time::Instant::now();
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let mut buf = [0u8; 16];
    let n = sock.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "a silent connection gets no bytes, just a close");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "the reap must happen at the deadline, not at some idle timeout"
    );
    drop(sock);
    // the reaped connection is counted, and well-behaved clients (which
    // complete the handshake immediately) are unaffected
    let mut c = Client::connect(addr).unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.net_conns_reaped >= 1, "stats = {stats:?}");
    c.begin(1).unwrap();
    c.commit(1).unwrap();
    assert!(c.drain().unwrap().iter().all(|d| d.outcome.is_done()));
    server.shutdown();
}

#[test]
fn handshake_negotiates_durability() {
    use chimera_net::WireDurability;
    let server = start_server(vec![]);
    let addr = server.local_addr();
    // this runtime is in-memory: requiring group commit must fail the
    // handshake with a typed reason, before any job is accepted
    match Client::connect_requiring(addr, "strict", WireDurability::GroupCommit) {
        Err(NetError::Remote(msg)) => {
            assert!(msg.contains("durability mismatch"), "{msg}")
        }
        other => panic!("expected Remote, got {other:?}"),
    }
    // requiring what the server provides succeeds, and the ack reports
    // the effective level either way
    let c = Client::connect_requiring(addr, "strict", WireDurability::InMemory).unwrap();
    assert_eq!(c.server_durability(), Some(WireDurability::InMemory));
    drop(c);
    let c = Client::connect(addr).unwrap();
    assert_eq!(c.server_durability(), Some(WireDurability::InMemory));
    drop(c);
    server.shutdown();
}

/// The PR's wire-level acceptance: a live durable server with telemetry
/// on answers `MetricsSnapshot` with non-zero stage histograms for
/// queue-wait, execute and group-commit, plus the postmortem trace tail
/// — and a telemetry-off server answers the same request with a
/// well-formed disabled snapshot, never an error.
#[test]
fn live_metrics_snapshot_over_the_wire() {
    use chimera_runtime::{DurabilityConfig, StorageMode};
    let dir = std::env::temp_dir().join(format!(
        "chimera-net-metrics-loopback-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = RuntimeConfig {
        shards: 2,
        storage: StorageMode::Durable(DurabilityConfig::new(&dir)),
        telemetry: true,
        ..Default::default()
    };
    let rt = Runtime::new(schema(), vec![tick_trigger(&schema())], config).unwrap();
    let server = Server::bind("127.0.0.1:0", Arc::new(rt), ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for tenant in 0..4u64 {
        c.raise_external(
            tenant,
            vec![ExternalEvent {
                class: 0,
                channel: 1,
                oid: 1 + tenant,
            }],
        )
        .unwrap();
    }
    c.drain().unwrap();
    c.flush().unwrap();

    let m = c.metrics_snapshot().unwrap();
    assert!(m.enabled, "server telemetry is on");
    for stage in ["queue_wait", "execute", "commit"] {
        let h = m.hist(stage).unwrap_or_else(|| panic!("{stage} missing"));
        assert!(h.count() > 0, "{stage} histogram is empty: {m:?}");
    }
    assert!(m.counter("batches_claimed").unwrap() > 0);
    assert!(m.counter("conns_accepted").unwrap() >= 1);
    assert!(
        m.traces.iter().any(|t| t.kind.name() == "job_claimed"),
        "trace tail should show claimed batches: {:?}",
        m.traces
    );
    // the text exposition renders every series it was asked about
    let text = m.render_text();
    assert!(text.contains("queue_wait"), "{text}");
    // the client's own recorder measured those synchronous calls
    let local = c.telemetry().snapshot();
    assert!(local.hist("client_request").unwrap().count() > 0);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // telemetry off (the default config): a typed disabled snapshot
    let rt = Runtime::new(schema(), vec![], RuntimeConfig::default()).unwrap();
    let server = Server::bind("127.0.0.1:0", Arc::new(rt), ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let m = c.metrics_snapshot().unwrap();
    assert!(!m.enabled);
    assert!(m.hists.is_empty() && m.traces.is_empty());
    server.shutdown();
}

#[test]
fn durable_server_round_trip() {
    use chimera_net::WireDurability;
    use chimera_runtime::{DurabilityConfig, StorageMode};
    let dir = std::env::temp_dir().join(format!(
        "chimera-net-durable-loopback-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = RuntimeConfig {
        shards: 2,
        storage: StorageMode::Durable(DurabilityConfig::new(&dir)),
        ..Default::default()
    };
    let rt = Runtime::new(schema(), vec![], config.clone()).unwrap();
    let server = Server::bind("127.0.0.1:0", Arc::new(rt), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut c = Client::connect_requiring(addr, "durable", WireDurability::GroupCommit).unwrap();
    assert_eq!(c.server_durability(), Some(WireDurability::GroupCommit));
    let outcomes = c
        .define_triggers(
            3,
            "define immediate trigger clampQty for stock
               events modify(quantity)
               condition stock(S), S.quantity > S.max_quantity
               actions modify(S.quantity, S.max_quantity)
             end",
        )
        .unwrap();
    assert!(outcomes.iter().all(|o| o.is_defined()));
    c.begin(3).unwrap();
    c.exec_block(
        3,
        vec![WireOp::Create {
            class: 0,
            inits: vec![(0, Value::Int(7))],
        }],
    )
    .unwrap();
    c.commit(3).unwrap();
    c.drain().unwrap();
    let stats = c.stats().unwrap();
    assert!(stats.wal_appends >= 4, "stats = {stats:?}");
    assert!(stats.wal_syncs >= 1);
    server.shutdown();

    // reopening the same directory recovers the tenant over the wire
    let rt = Runtime::new(schema(), vec![], config).unwrap();
    let server = Server::bind("127.0.0.1:0", Arc::new(rt), ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    let stats = c.stats().unwrap();
    // no snapshot was due yet (threshold 1024 groups), so the tenant was
    // rebuilt purely from job-log replay
    assert_eq!(stats.tenants, 1, "stats = {stats:?}");
    assert!(stats.jobs_replayed >= 4, "stats = {stats:?}");
    match c
        .tenant_query(3, TenantQuery::Extent { class: 0 })
        .unwrap()
    {
        TenantReply::Extent(oids) => assert_eq!(oids.len(), 1),
        other => panic!("expected Extent, got {other:?}"),
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
