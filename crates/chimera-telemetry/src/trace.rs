//! The postmortem trace ring: a fixed-capacity, lock-free flight
//! recorder of compact binary [`TraceEvent`]s.
//!
//! Each recorder shard owns one [`TraceRing`]. In the runtime a shard
//! maps to one worker thread, so each ring has a single producer; the
//! net layer hashes connections onto shards, so a ring *may* see
//! concurrent producers — the slot protocol below stays safe either
//! way (a seqlock version counter per slot: readers detect and skip
//! slots torn by a concurrent write).
//!
//! Writes never block and never allocate: a full ring overwrites its
//! oldest slot, and the drain accounts every overwritten event in the
//! `trace_dropped` counter — the ring's claim is "the most recent `C`
//! events, with honest loss accounting", exactly what a flight
//! recorder is for.
//!
//! Draining ([`TraceRing::drain`]) is oldest-first and consuming: each
//! event is delivered to at most one drain (per-ring read cursor), so
//! repeated metrics polls see an incremental event stream.

use std::sync::atomic::{AtomicU64, Ordering};

/// Events per ring. Power of two (index masking); 256 events × one
/// cache line each ≈ 16 KiB per shard — small enough to always carry,
/// deep enough to cover the seconds before a poisoning or a reap.
pub const TRACE_CAPACITY: usize = 256;

/// What kind of thing happened. The `u8` values are the wire encoding
/// — append-only, never renumber.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceKind {
    /// A worker claimed a tenant's batch (`a` = tenant, `b` = batch len).
    JobClaimed = 0,
    /// A store operation hit the transient-retry path (`a` = home shard).
    StoreRetried = 1,
    /// A job's success was demoted to a durability refusal at
    /// group-commit time (`a` = tenant, `b` = home shard).
    JobDemoted = 2,
    /// A home shard's durability was poisoned (`a` = home shard).
    HomePoisoned = 3,
    /// The server accepted a connection (`a` = connection id).
    ConnAccepted = 4,
    /// The server reaped a silent connection at a deadline
    /// (`a` = connection id).
    ConnReaped = 5,
    /// A connection ended on a transport error (`a` = connection id).
    ConnCut = 6,
    /// A home shard wrote a snapshot and truncated its log
    /// (`a` = home shard, `b` = tenants snapshotted).
    SnapshotTaken = 7,
    /// A poisoned home's store was replaced and the poison cleared
    /// (`a` = home shard).
    StoreReopened = 8,
    /// A cold tenant's engine was snapshotted to its home store and
    /// dropped from RAM (`a` = tenant, `b` = home shard).
    TenantEvicted = 9,
    /// An evicted tenant's engine was rebuilt in RAM at claim time
    /// (`a` = tenant, `b` = home shard).
    TenantRehydrated = 10,
}

impl TraceKind {
    /// Decode a wire byte. Unknown values are a decode error upstream.
    pub fn from_u8(v: u8) -> Option<TraceKind> {
        Some(match v {
            0 => TraceKind::JobClaimed,
            1 => TraceKind::StoreRetried,
            2 => TraceKind::JobDemoted,
            3 => TraceKind::HomePoisoned,
            4 => TraceKind::ConnAccepted,
            5 => TraceKind::ConnReaped,
            6 => TraceKind::ConnCut,
            7 => TraceKind::SnapshotTaken,
            8 => TraceKind::StoreReopened,
            9 => TraceKind::TenantEvicted,
            10 => TraceKind::TenantRehydrated,
            _ => return None,
        })
    }

    /// Stable lowercase name for text rendering.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::JobClaimed => "job_claimed",
            TraceKind::StoreRetried => "store_retried",
            TraceKind::JobDemoted => "job_demoted",
            TraceKind::HomePoisoned => "home_poisoned",
            TraceKind::ConnAccepted => "conn_accepted",
            TraceKind::ConnReaped => "conn_reaped",
            TraceKind::ConnCut => "conn_cut",
            TraceKind::SnapshotTaken => "snapshot_taken",
            TraceKind::StoreReopened => "store_reopened",
            TraceKind::TenantEvicted => "tenant_evicted",
            TraceKind::TenantRehydrated => "tenant_rehydrated",
        }
    }
}

/// One compact trace event: 40 bytes of plain data, no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Registry-wide monotone sequence number (drain order).
    pub seq: u64,
    /// Nanoseconds since the recorder was created.
    pub at_ns: u64,
    /// What happened.
    pub kind: TraceKind,
    /// First operand (tenant, home shard, or connection id — see
    /// [`TraceKind`]).
    pub a: u64,
    /// Second operand (batch length, home shard, ... — see
    /// [`TraceKind`]).
    pub b: u64,
}

/// One slot: the event's fields behind a seqlock version counter.
/// `ver` is even when the slot is stable, odd while a write is in
/// flight; a reader that observes an odd or changed version discards
/// its read (the slot was being overwritten — the event is lost to the
/// wrap, which the drain already accounts).
#[derive(Default)]
struct Slot {
    ver: AtomicU64,
    seq: AtomicU64,
    at_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

/// The fixed-capacity ring. See the module docs for the protocol.
pub struct TraceRing {
    slots: Vec<Slot>,
    /// Next write position (monotone; slot index is `write & mask`).
    write: AtomicU64,
    /// Everything below this position has been drained (or dropped).
    drained: AtomicU64,
}

impl Default for TraceRing {
    fn default() -> Self {
        TraceRing::new()
    }
}

impl TraceRing {
    pub fn new() -> TraceRing {
        TraceRing {
            slots: (0..TRACE_CAPACITY).map(|_| Slot::default()).collect(),
            write: AtomicU64::new(0),
            drained: AtomicU64::new(0),
        }
    }

    /// Push one event (never blocks; a full ring overwrites oldest).
    pub fn push(&self, ev: TraceEvent) {
        let pos = self.write.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(pos as usize) & (TRACE_CAPACITY - 1)];
        // odd = write in flight; Release orders the payload stores
        // after it from a reader's point of view
        slot.ver.fetch_add(1, Ordering::Release);
        slot.seq.store(ev.seq, Ordering::Relaxed);
        slot.at_ns.store(ev.at_ns, Ordering::Relaxed);
        slot.kind.store(ev.kind as u8 as u64, Ordering::Relaxed);
        slot.a.store(ev.a, Ordering::Relaxed);
        slot.b.store(ev.b, Ordering::Relaxed);
        slot.ver.fetch_add(1, Ordering::Release);
    }

    /// Drain every undelivered event, oldest first. Returns the events
    /// plus the number of events lost to ring wrap (overwritten before
    /// this drain could read them) — torn slots (a write raced the
    /// read) count as lost too, so accounting never lies low.
    pub fn drain(&self) -> (Vec<TraceEvent>, u64) {
        let write = self.write.load(Ordering::Acquire);
        let drained = self.drained.load(Ordering::Relaxed);
        let start = drained.max(write.saturating_sub(TRACE_CAPACITY as u64));
        let mut dropped = start - drained;
        let mut out = Vec::with_capacity((write - start) as usize);
        for pos in start..write {
            let slot = &self.slots[(pos as usize) & (TRACE_CAPACITY - 1)];
            let v1 = slot.ver.load(Ordering::Acquire);
            let ev = TraceEvent {
                seq: slot.seq.load(Ordering::Relaxed),
                at_ns: slot.at_ns.load(Ordering::Relaxed),
                kind: TraceKind::from_u8(slot.kind.load(Ordering::Relaxed) as u8)
                    .unwrap_or(TraceKind::JobClaimed),
                a: slot.a.load(Ordering::Relaxed),
                b: slot.b.load(Ordering::Relaxed),
            };
            let v2 = slot.ver.load(Ordering::Acquire);
            if v1 == v2 && v1 % 2 == 0 {
                out.push(ev);
            } else {
                dropped += 1;
            }
        }
        self.drained.store(write, Ordering::Relaxed);
        (out, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            at_ns: seq * 10,
            kind: TraceKind::JobClaimed,
            a: seq,
            b: 0,
        }
    }

    #[test]
    fn drain_is_oldest_first_and_consuming() {
        let ring = TraceRing::new();
        for i in 0..5 {
            ring.push(ev(i));
        }
        let (got, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(got.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        // consumed: a second drain sees only what came after
        ring.push(ev(5));
        let (got, dropped) = ring.drain();
        assert_eq!(dropped, 0);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].seq, 5);
        assert!(ring.drain().0.is_empty());
    }

    #[test]
    fn wrap_keeps_newest_and_counts_dropped() {
        let ring = TraceRing::new();
        let n = TRACE_CAPACITY as u64 + 37;
        for i in 0..n {
            ring.push(ev(i));
        }
        let (got, dropped) = ring.drain();
        assert_eq!(dropped, 37);
        assert_eq!(got.len(), TRACE_CAPACITY);
        assert_eq!(got.first().unwrap().seq, 37);
        assert_eq!(got.last().unwrap().seq, n - 1);
    }

    #[test]
    fn kind_round_trips_through_u8() {
        for k in [
            TraceKind::JobClaimed,
            TraceKind::StoreRetried,
            TraceKind::JobDemoted,
            TraceKind::HomePoisoned,
            TraceKind::ConnAccepted,
            TraceKind::ConnReaped,
            TraceKind::ConnCut,
            TraceKind::SnapshotTaken,
            TraceKind::StoreReopened,
            TraceKind::TenantEvicted,
            TraceKind::TenantRehydrated,
        ] {
            assert_eq!(TraceKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(TraceKind::from_u8(200), None);
    }
}
