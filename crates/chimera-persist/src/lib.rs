//! # chimera-persist
//!
//! Durability for the Chimera engine. The paper's prototype is an
//! in-memory research system; a database a downstream user would adopt
//! needs its committed state to survive a crash. This crate adds that in
//! the standard redo-log + snapshot architecture, deliberately kept at
//! the *store* level so that none of the paper's semantics is touched:
//!
//! * **no transaction survives a crash** — Chimera rule state, the event
//!   base and triggering windows are all transaction-scoped, so recovery
//!   only needs the last committed object store;
//! * the [`wal`] module writes one checksummed **redo batch per commit**
//!   (full post-state of every object the transaction touched — physical
//!   redo, idempotent by construction);
//! * the [`snapshot`] module compacts the log into a checksummed full
//!   snapshot;
//! * the [`durable`] module wraps [`chimera_exec::Engine`] with
//!   open/commit/compact, and recovery that tolerates torn tails: a batch
//!   whose terminator line is missing or whose checksum mismatches is
//!   discarded along with everything after it.
//!
//! On top of that sits the **pluggable storage layer** the multi-tenant
//! runtime composes (this is what `chimera-runtime` threads through its
//! shard workers):
//!
//! * the [`joblog`] module is *logical* command logging — every runtime
//!   job is one line, and a whole drained queue batch becomes durable
//!   with one fsync (**group commit**);
//! * the [`shardsnap`] module writes full-fidelity tenant snapshots
//!   (objects, event log, trigger sources, rule stamps, stats) so the
//!   job log can be truncated;
//! * the [`store`] module ties them together behind the [`StateStore`]
//!   trait, with [`InMemoryStore`] (no-op) and [`DurableStore`]
//!   (log + snapshot) backends.
//!
//! The format is line-oriented text (consistent with the repository's
//! no-serde decision — see DESIGN.md §8), checksummed with FNV-1a 64.

pub mod codec;
pub mod durable;
pub mod joblog;
pub mod shardsnap;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use durable::{DurableEngine, RecoveryReport};
pub use joblog::{JobGroup, JobLog, JobLogOutcome, JobRecord};
pub use shardsnap::{RuleStampRec, ShardSnapshot, TenantSnapshot};
pub use store::{
    DurableStore, EvictedTenant, InMemoryStore, ShardRecovery, StateStore, StoreCounters,
    SyncPolicy,
};
pub use wal::{RedoBatch, RedoRecord, Wal};

use std::fmt;

/// Errors raised by the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line or record failed to parse (includes torn-tail details; the
    /// WAL reader converts these into a clean recovery cut instead).
    Corrupt(String),
    /// Engine/model error during replay or passthrough.
    Engine(chimera_exec::ExecError),
    /// Store error during replay.
    Model(chimera_model::ModelError),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Corrupt(what) => write!(f, "corrupt durable state: {what}"),
            PersistError::Engine(e) => write!(f, "engine error: {e}"),
            PersistError::Model(e) => write!(f, "store error: {e}"),
        }
    }
}

impl PersistError {
    /// Would a retry plausibly succeed? Transient I/O conditions — the
    /// kinds an interrupted syscall, a saturated device queue, or a
    /// timed-out operation surface as — are worth a bounded retry before
    /// escalating; corrupt state and replay/logic errors are not. This
    /// is the classifier the runtime's retry-before-poison policy (and
    /// the chaos layer's injected faults) is written against.
    pub fn is_transient(&self) -> bool {
        match self {
            PersistError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::ResourceBusy
            ),
            _ => false,
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}
impl From<chimera_exec::ExecError> for PersistError {
    fn from(e: chimera_exec::ExecError) -> Self {
        PersistError::Engine(e)
    }
}
impl From<chimera_model::ModelError> for PersistError {
    fn from(e: chimera_model::ModelError) -> Self {
        PersistError::Model(e)
    }
}

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, PersistError>;

/// FNV-1a 64 over bytes — the checksum used by WAL batches and snapshots.
/// Not cryptographic; it detects torn writes and bit rot, which is the
/// failure model here.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        // documented reference value so the format is stable across builds
        assert_eq!(fnv1a(b"chimera"), fnv1a(b"chimera"));
    }

    #[test]
    fn error_display() {
        let e = PersistError::Corrupt("bad line 3".into());
        assert!(e.to_string().contains("bad line 3"));
    }
}
