//! # chimera-rules
//!
//! Chimera active rules (triggers) and their composite-event triggering
//! semantics.
//!
//! A Chimera trigger follows the ECA paradigm (§2): it is defined on a
//! triggering *event expression* (extended by the paper to the full
//! calculus), a *condition* — a logical formula that may query the
//! database and the event base through event formulas — and an *action* —
//! a sequence of set-oriented data manipulations.
//!
//! The paper's rule-object style maps onto plain data here: a
//! [`TriggerDef`] is the immutable definition, a [`RuleState`] the mutable
//! runtime status (the `triggered` flag and the `last_consideration` /
//! `last_consumption` stamps of §5), and the [`RuleTable`] is the §5 "Rule
//! Table": a name-indexed map plus a priority queue that picks the rule to
//! consider next.
//!
//! The triggering predicate `T(r, t)` of §4.4 is implemented in
//! [`trigger`], with the §5.1 `V(E)` relevance filter as an optional fast
//! path (its equivalence with unfiltered checking is property-tested).

pub mod action;
pub mod condition;
pub mod modes;
mod pool;
pub mod table;
pub mod trigger;

pub use action::ActionStmt;
pub use condition::{CmpOp, Condition, Formula, Term, VarDecl};
pub use modes::{ConsumptionMode, CouplingMode};
pub use pool::SharedProbePool;
pub use table::{RuleTable, TriggerSupport};
pub use trigger::{is_triggered, probe_instants, RuleState, TriggerDef};
