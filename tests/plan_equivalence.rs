//! Property suite for the compiled evaluation plans (`calculus::plan`):
//! the planned boundary evaluation must agree **bit for bit** with the
//! existing recursive `boundary_ts_logical` / `boundary_ts_algebraic`
//! definitions on random expressions × random event histories, at every
//! arrival instant, earlier probe instants, gap instants, and across both
//! full and consumed (shifted lower-bound) windows — and the
//! arrival-incrementally advanced scratch matrix must equal a
//! from-scratch cold rebuild cell for cell under arbitrary interleavings
//! of arrivals, window advances, and probes.
//!
//! The configured default is 1024 cases (the PR-3 acceptance bar); the
//! shim treats `PROPTEST_CASES` as a downward clamp (CI runs this suite
//! at 256, other suites at 32).

use chimera::calculus::{
    boundary_ts_algebraic, boundary_ts_logical, ts_algebraic, ts_algebraic_interpreted,
    ts_logical, ts_logical_interpreted, PlanEval,
};
use chimera::events::{EventBase, EventType, Timestamp, Window};
use chimera::model::{ClassId, Oid};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

/// A random history over 5 types × 4 objects with occasional gap ticks.
fn random_history(seed: u64, len: usize) -> EventBase {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut eb = EventBase::new();
    for _ in 0..len {
        if rng.random_bool(0.15) {
            eb.tick();
        }
        eb.append(et(rng.random_range(0..5u32)), Oid(rng.random_range(1..5u64)));
    }
    eb.tick(); // a gap instant after the last arrival
    eb
}

/// Probe instants: every instant of the history, `1..=now`.
fn probes(eb: &EventBase) -> Vec<Timestamp> {
    (1..=eb.now().raw()).map(Timestamp).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// Instance-rooted expressions: the plan against *both* recursive
    /// boundary styles, over full and consumed windows.
    #[test]
    fn plan_matches_recursive_boundaries(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..24,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 5,
            max_depth: 4,
            instance_prob: 1.0,
            negation_prob: 0.35,
            seed: expr_seed,
        });
        let expr = g.generate_instance();
        let eb = random_history(stream_seed, len);
        let mut pe = PlanEval::compile(&expr).unwrap();
        let now = eb.now();
        let mid = Timestamp(now.raw() / 2);
        for w in [Window::from_origin(now), Window::new(mid, now)] {
            for t in probes(&eb) {
                let got = pe.eval(&eb, w, t);
                prop_assert_eq!(
                    got,
                    boundary_ts_logical(&expr, &eb, w, t),
                    "logical: {} over {:?} at {}", &expr, w, t
                );
                prop_assert_eq!(
                    got,
                    boundary_ts_algebraic(&expr, &eb, w, t),
                    "algebraic: {} over {:?} at {}", &expr, w, t
                );
            }
        }
    }

    /// General (set ∘ instance) expressions: the planned dispatch inside
    /// `ts_logical`/`ts_algebraic` against the fully recursive
    /// interpreters, plus a direct `PlanEval` on the whole expression.
    #[test]
    fn planned_ts_matches_interpreted_ts(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 0usize..24,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 5,
            max_depth: 4,
            instance_prob: 0.4,
            negation_prob: 0.3,
            seed: expr_seed,
        });
        let expr = g.generate();
        let eb = random_history(stream_seed, len);
        let mut pe = PlanEval::compile(&expr).unwrap();
        let now = eb.now();
        let mid = Timestamp(now.raw() / 2);
        for w in [Window::from_origin(now), Window::new(mid, now)] {
            for t in probes(&eb) {
                let want = ts_logical_interpreted(&expr, &eb, w, t);
                prop_assert_eq!(
                    ts_logical(&expr, &eb, w, t), want,
                    "planned ts_logical: {} over {:?} at {}", &expr, w, t
                );
                prop_assert_eq!(
                    pe.eval(&eb, w, t), want,
                    "whole-expression plan: {} over {:?} at {}", &expr, w, t
                );
                prop_assert_eq!(
                    ts_algebraic(&expr, &eb, w, t),
                    ts_algebraic_interpreted(&expr, &eb, w, t),
                    "planned ts_algebraic: {} over {:?} at {}", &expr, w, t
                );
            }
        }
    }

    /// The PR-3 tentpole invariant: an evaluator kept across epochs — its
    /// scratch *advanced* arrival-incrementally instead of rebuilt —
    /// holds bit for bit the same domain + stamp matrix a from-scratch
    /// cold rebuild produces, and returns identical values, under
    /// arbitrary interleavings of arrival bursts, eventless ticks, window
    /// (consumption) advances, and probes at past instants.
    #[test]
    fn incremental_matrix_equals_cold_rebuild(
        expr_seed in any::<u64>(),
        script_seed in any::<u64>(),
        steps in 1usize..24,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 4,
            instance_prob: 1.0,
            negation_prob: 0.3,
            seed: expr_seed,
        });
        let expr = g.generate_instance();
        let mut pe = PlanEval::compile(&expr).unwrap();
        let plan = pe.plan().clone();
        let mut rng = StdRng::seed_from_u64(script_seed);
        let mut eb = EventBase::new();
        let mut after = Timestamp::ZERO;
        for _ in 0..steps {
            match rng.random_range(0..8u32) {
                // an arrival burst (one transaction block)
                0..=4 => {
                    for _ in 0..rng.random_range(1..4usize) {
                        eb.append(
                            et(rng.random_range(0..4u32)),
                            Oid(rng.random_range(1..5u64)),
                        );
                    }
                }
                // an eventless instant
                5 => {
                    eb.tick();
                }
                // window consumption: the lower bound advances
                6 => {
                    after = Timestamp(rng.random_range(after.raw()..=eb.now().raw()));
                }
                // probe-only step (re-probes memoized instants)
                _ => {}
            }
            let now = eb.now();
            if now == Timestamp::ZERO {
                continue; // no instant to probe yet
            }
            let w = Window::new(after, now);
            let mut cold = PlanEval::new(plan.clone());
            // value equivalence at a past instant and at the frontier
            let mid = Timestamp((after.raw() + now.raw()) / 2 + 1).min(now);
            for t in [mid, now] {
                let got = pe.eval(&eb, w, t);
                prop_assert_eq!(
                    got, cold.eval(&eb, w, t),
                    "cold: {} over {:?} at {}", &expr, w, t
                );
                prop_assert_eq!(
                    got, boundary_ts_logical(&expr, &eb, w, t),
                    "reference: {} over {:?} at {}", &expr, w, t
                );
            }
            // matrix equivalence with both prepared at the frontier (the
            // memo may have answered the probes above without touching a
            // widened boundary's per-instant matrix, so force it)
            pe.prepare_frontier(&eb, w);
            cold.prepare_frontier(&eb, w);
            prop_assert_eq!(
                pe.boundary_scratch(), cold.boundary_scratch(),
                "matrix diverged: {} over {:?}", &expr, w
            );
        }
    }

    /// Interleaved growth: one evaluator observing a growing event base
    /// (epoch invalidation) stays exact at every step.
    #[test]
    fn plan_scratch_tracks_growing_history(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        len in 1usize..20,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 4,
            max_depth: 3,
            instance_prob: 1.0,
            negation_prob: 0.4,
            seed: expr_seed,
        });
        let expr = g.generate_instance();
        let mut pe = PlanEval::compile(&expr).unwrap();
        let mut rng = StdRng::seed_from_u64(stream_seed);
        let mut eb = EventBase::new();
        for _ in 0..len {
            eb.append(et(rng.random_range(0..4u32)), Oid(rng.random_range(1..4u64)));
            let now = eb.now();
            let w = Window::from_origin(now);
            // two probes per arrival: the memoized repeat must agree too
            for _ in 0..2 {
                prop_assert_eq!(
                    pe.eval(&eb, w, now),
                    boundary_ts_logical(&expr, &eb, w, now),
                    "{} at {}", &expr, now
                );
            }
        }
    }
}
