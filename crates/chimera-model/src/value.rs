//! Attribute values and their types.
//!
//! Chimera attributes are typed; the engine checks values against the
//! declared [`AttrType`] at object creation and modification time.

use crate::ids::Oid;
use std::cmp::Ordering;
use std::fmt;

/// Declared type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Integer,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    String,
    /// Boolean.
    Boolean,
    /// Logical time value (used by the `at` event formula's `T` variable).
    Time,
    /// Reference to another object (untyped reference: any class).
    ObjectRef,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttrType::Integer => "integer",
            AttrType::Float => "float",
            AttrType::String => "string",
            AttrType::Boolean => "boolean",
            AttrType::Time => "time",
            AttrType::ObjectRef => "object",
        };
        f.write_str(s)
    }
}

/// An `f64` with **bitwise** `Eq`/`Ord`/`Hash` (IEEE-754 `totalOrder`).
///
/// The repo-wide float policy: *container equality is representation
/// equality*. Derived `PartialEq` on a bare `f64` follows IEEE semantics,
/// making any container holding a NaN unequal to itself — which broke WAL
/// round-trip assertions and forbids keying caches or indexes on values.
/// `TotalF64` compares and hashes by bit pattern (`-0.0 < +0.0`, NaNs
/// ordered by payload), so [`Value`] is `Eq + Ord + Hash` throughout.
///
/// *Predicate* comparison semantics are unchanged: condition predicates go
/// through [`Value::compare`], which still uses IEEE `partial_cmp` and
/// therefore still fails on NaN operands.
#[derive(Debug, Clone, Copy)]
pub struct TotalF64(f64);

impl TotalF64 {
    /// Wrap a float.
    #[inline]
    pub fn new(v: f64) -> Self {
        TotalF64(v)
    }

    /// The wrapped float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Raw bit pattern (the equality/hash key).
    #[inline]
    pub fn to_bits(self) -> u64 {
        self.0.to_bits()
    }

    /// Reconstruct from a bit pattern (exact round-trip, NaNs included).
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        TotalF64(f64::from_bits(bits))
    }
}

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    /// IEEE-754 `totalOrder`: consistent with bitwise equality.
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for TotalF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for TotalF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for TotalF64 {
    fn from(v: f64) -> Self {
        TotalF64(v)
    }
}
impl From<TotalF64> for f64 {
    fn from(v: TotalF64) -> f64 {
        v.0
    }
}

/// Runtime attribute value.
///
/// `Null` is the default for attributes without an explicit default value;
/// comparisons against `Null` are always false (three-valued logic is not
/// needed for the paper's examples, so predicates simply fail on `Null`).
///
/// `Value` is `Eq + Ord + Hash` so caches and indexes can key on it;
/// floats follow the bitwise [`TotalF64`] policy (the derived `Ord` is the
/// structural variant-then-payload order, *not* the predicate comparison —
/// that remains [`Value::compare`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent value.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value (bitwise equality/order/hash; see [`TotalF64`]).
    Float(TotalF64),
    /// String value.
    Str(String),
    /// Boolean value.
    Bool(bool),
    /// Logical timestamp value.
    Time(u64),
    /// Object reference.
    Ref(Oid),
}

impl Value {
    /// Float value from a bare `f64`.
    #[inline]
    pub fn float(v: f64) -> Self {
        Value::Float(TotalF64::new(v))
    }

    /// Does this value conform to `ty`? `Null` conforms to every type.
    pub fn conforms_to(&self, ty: AttrType) -> bool {
        matches!(
            (self, ty),
            (Value::Null, _)
                | (Value::Int(_), AttrType::Integer)
                | (Value::Float(_), AttrType::Float)
                | (Value::Str(_), AttrType::String)
                | (Value::Bool(_), AttrType::Boolean)
                | (Value::Time(_), AttrType::Time)
                | (Value::Ref(_), AttrType::ObjectRef)
        )
    }

    /// The [`AttrType`] this value naturally has, if any (`Null` has none).
    pub fn natural_type(&self) -> Option<AttrType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(AttrType::Integer),
            Value::Float(_) => Some(AttrType::Float),
            Value::Str(_) => Some(AttrType::String),
            Value::Bool(_) => Some(AttrType::Boolean),
            Value::Time(_) => Some(AttrType::Time),
            Value::Ref(_) => Some(AttrType::ObjectRef),
        }
    }

    /// True iff the value is `Null`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Comparison used by condition predicates.
    ///
    /// Returns `None` when the values are incomparable (type mismatch or
    /// either side `Null`), in which case the predicate fails. Integers and
    /// floats compare numerically with each other.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            // predicates keep IEEE semantics: NaN operands are incomparable
            (Value::Float(a), Value::Float(b)) => a.get().partial_cmp(&b.get()),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(&b.get()),
            (Value::Float(a), Value::Int(b)) => a.get().partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Time(a), Value::Time(b)) => Some(a.cmp(b)),
            (Value::Ref(a), Value::Ref(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Equality used by condition predicates (`None`-safe wrapper).
    pub fn predicate_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// Arithmetic addition for action expressions (`Int`/`Float` mix).
    pub fn add(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_add(*b))),
            (Value::Float(a), Value::Float(b)) => Some(Value::float(a.get() + b.get())),
            (Value::Int(a), Value::Float(b)) => Some(Value::float(*a as f64 + b.get())),
            (Value::Float(a), Value::Int(b)) => Some(Value::float(a.get() + *b as f64)),
            _ => None,
        }
    }

    /// Arithmetic subtraction for action expressions.
    pub fn sub(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_sub(*b))),
            (Value::Float(a), Value::Float(b)) => Some(Value::float(a.get() - b.get())),
            (Value::Int(a), Value::Float(b)) => Some(Value::float(*a as f64 - b.get())),
            (Value::Float(a), Value::Int(b)) => Some(Value::float(a.get() - *b as f64)),
            _ => None,
        }
    }

    /// Arithmetic multiplication for action expressions.
    pub fn mul(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(Value::Int(a.wrapping_mul(*b))),
            (Value::Float(a), Value::Float(b)) => Some(Value::float(a.get() * b.get())),
            (Value::Int(a), Value::Float(b)) => Some(Value::float(*a as f64 * b.get())),
            (Value::Float(a), Value::Int(b)) => Some(Value::float(a.get() * *b as f64)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Time(v) => write!(f, "t{v}"),
            Value::Ref(o) => write!(f, "{o}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Oid> for Value {
    fn from(v: Oid) -> Self {
        Value::Ref(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance() {
        assert!(Value::Int(3).conforms_to(AttrType::Integer));
        assert!(!Value::Int(3).conforms_to(AttrType::Float));
        assert!(Value::Null.conforms_to(AttrType::String));
        assert!(Value::Ref(Oid(1)).conforms_to(AttrType::ObjectRef));
        assert!(Value::Time(9).conforms_to(AttrType::Time));
        assert!(!Value::Bool(true).conforms_to(AttrType::Integer));
    }

    #[test]
    fn natural_types() {
        assert_eq!(Value::Null.natural_type(), None);
        assert_eq!(Value::Int(1).natural_type(), Some(AttrType::Integer));
        assert_eq!(
            Value::Str("x".into()).natural_type(),
            Some(AttrType::String)
        );
    }

    #[test]
    fn null_is_incomparable() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Null), None);
        assert!(!Value::Null.predicate_eq(&Value::Null));
    }

    #[test]
    fn numeric_cross_comparison() {
        assert_eq!(
            Value::Int(2).compare(&Value::float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::float(3.0).compare(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn mismatched_types_incomparable() {
        assert_eq!(Value::Int(1).compare(&Value::Str("1".into())), None);
        assert_eq!(Value::Bool(true).compare(&Value::Int(1)), None);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Some(Value::Int(5)));
        assert_eq!(
            Value::Int(2).add(&Value::float(0.5)),
            Some(Value::float(2.5))
        );
        assert_eq!(Value::Int(7).sub(&Value::Int(2)), Some(Value::Int(5)));
        assert_eq!(Value::Int(3).mul(&Value::Int(4)), Some(Value::Int(12)));
        assert_eq!(Value::Str("a".into()).add(&Value::Int(1)), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(Value::Time(4).to_string(), "t4");
        assert_eq!(Value::Ref(Oid(2)).to_string(), "o2");
        assert_eq!(Value::Null.to_string(), "null");
    }

    #[test]
    fn total_float_policy_is_reflexive_and_hashable() {
        let nan = Value::float(f64::NAN);
        // container equality is representation equality — NaN == NaN
        assert_eq!(nan, nan.clone());
        // distinct NaN payloads are distinct values
        assert_ne!(
            Value::Float(TotalF64::from_bits(0x7ff8_0000_0000_0001)),
            Value::Float(TotalF64::from_bits(0x7ff8_0000_0000_0002))
        );
        // -0.0 and +0.0 are distinct representations, ordered
        assert_ne!(Value::float(-0.0), Value::float(0.0));
        assert!(TotalF64::new(-0.0) < TotalF64::new(0.0));
        // but predicates keep IEEE semantics
        assert!(Value::float(-0.0).predicate_eq(&Value::float(0.0)));
        assert!(!nan.predicate_eq(&nan));
        // values key hash maps (the point of the policy)
        let mut m = std::collections::HashMap::new();
        m.insert(nan.clone(), 1);
        m.insert(Value::Str("k".into()), 2);
        assert_eq!(m.get(&nan), Some(&1));
        // and BTree maps via the structural Ord
        let mut b = std::collections::BTreeMap::new();
        b.insert(nan.clone(), 1);
        assert_eq!(b.get(&nan), Some(&1));
    }

    #[test]
    fn total_float_round_trips_bits() {
        for bits in [0u64, 1, 0x8000_0000_0000_0000, 0x7ff8_dead_beef_0001] {
            assert_eq!(TotalF64::from_bits(bits).to_bits(), bits);
        }
        assert_eq!(f64::from(TotalF64::new(2.5)), 2.5);
        assert_eq!(TotalF64::from(2.5).get(), 2.5);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(Oid(3)), Value::Ref(Oid(3)));
    }
}
