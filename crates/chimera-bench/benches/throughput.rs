//! PERF-7 — end-to-end ingestion throughput and the PR-3 acceptance
//! numbers.
//!
//! Two experiments:
//!
//! * **`throughput_{1k,10k,100k}`**: events/sec through
//!   [`Engine::exec_block`] at 1/16/256 arrivals per block, against a rule
//!   table holding a frequently-triggering instance pair (small windows,
//!   cold rebuilds at every consumption), a never-triggering sequence
//!   whose trigger window grows to the full prefill size (the
//!   arrival-incremental hot case), and a primitive rule. The window
//!   label is the number of prefilled occurrences the never-triggering
//!   rule's window spans when measurement starts.
//! * **`advance_10k` + the self-reported criterion**: the cost of the
//!   *first* compiled-plan probe after a small arrival batch on a
//!   10k-event window — incremental (one persistent [`PlanEval`] whose
//!   scratch absorbs the delta) versus cold (a fresh scratchpad paying
//!   the full domain + stamp-matrix rebuild). The PR-3 acceptance bar is
//!   ≤ 10 µs for the incremental probe at ≤ 16 arrivals; the bench
//!   prints both sides itself (`cargo bench -p chimera-bench --bench
//!   throughput`).

use chimera_bench::{et, history, p};
use chimera_calculus::{EventExpr, PlanEval};
use chimera_events::{EventType, Window};
use chimera_exec::{Engine, EngineConfig, Op};
use chimera_model::{AttrDef, AttrType, Oid, SchemaBuilder, Value};
use chimera_rules::TriggerDef;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::{Duration, Instant};

const OBJECTS: usize = 256;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// An engine with three representative rules and a prefilled event
/// window, ready to ingest modify blocks.
fn engine_with_window(window: usize) -> (Engine, Vec<Op>, Vec<Oid>) {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("qty", AttrType::Integer),
            AttrDef::new("price", AttrType::Integer),
        ],
    )
    .unwrap();
    let schema = b.build();
    let item = schema.class_by_name("item").unwrap();
    let qty = schema.attr_by_name(item, "qty").unwrap();
    let price = schema.attr_by_name(item, "price").unwrap();
    let mut engine = Engine::with_config(
        schema,
        EngineConfig {
            max_rule_steps: usize::MAX / 2,
            ..EngineConfig::default()
        },
    );
    let m_qty = EventExpr::prim(EventType::modify(item, qty));
    let m_price = EventExpr::prim(EventType::modify(item, price));
    let never = EventExpr::prim(EventType::external(item, 99));
    engine
        .define_trigger(TriggerDef::new("hot_pair", m_qty.clone().iand(m_price.clone())))
        .unwrap();
    engine
        .define_trigger(TriggerDef::new("cold_seq", m_qty.clone().iand(never)))
        .unwrap();
    engine
        .define_trigger(TriggerDef::new("prim", m_price))
        .unwrap();
    engine.begin().unwrap();
    let oids: Vec<Oid> = (0..OBJECTS)
        .map(|_| {
            engine
                .exec_block(&[Op::Create {
                    class: item,
                    inits: vec![],
                }])
                .unwrap()[0]
                .oid
        })
        .collect();
    // prefill the observation window in 256-event blocks
    let mut n = 0usize;
    while engine.event_base().len() < window {
        let block = modify_block(&oids, qty, price, n, 256);
        engine.exec_block(&block).unwrap();
        n += 256;
    }
    let ops = modify_block(&oids, qty, price, n, 256);
    (engine, ops, oids)
}

/// A block of `k` modifies cycling over the objects and both attributes.
fn modify_block(
    oids: &[Oid],
    qty: chimera_model::AttrId,
    price: chimera_model::AttrId,
    start: usize,
    k: usize,
) -> Vec<Op> {
    (0..k)
        .map(|i| {
            let n = start + i;
            Op::Modify {
                oid: oids[n % oids.len()],
                attr: if n % 2 == 0 { qty } else { price },
                value: Value::Int(n as i64),
            }
        })
        .collect()
}

fn bench_throughput(c: &mut Criterion) {
    // the 100k prefill is pointless in smoke mode (every closure runs once)
    let windows: &[(usize, &str)] = if measure_mode() {
        &[
            (1_000, "throughput_1k"),
            (10_000, "throughput_10k"),
            (100_000, "throughput_100k"),
        ]
    } else {
        &[(1_000, "throughput_1k")]
    };
    for &(window, label) in windows {
        let mut g = c.benchmark_group(label);
        for &k in &[1usize, 16, 256] {
            let (mut engine, ops, _) = engine_with_window(window);
            let block = &ops[..k];
            g.throughput(Throughput::Elements(k as u64));
            g.bench_with_input(BenchmarkId::new("exec_block", k), &k, |b, _| {
                b.iter(|| black_box(engine.exec_block(block).unwrap()));
            });
        }
        g.finish();
    }
}

/// Cold-vs-incremental advance cost at the calculus layer, as wall-clock
/// means that land in `CHIMERA_BENCH_JSON`.
///
/// The incremental side appends `k` fresh arrivals per iteration and pays
/// one probe through a single persistent evaluator whose scratch absorbs
/// the delta. The arrivals cycle over the existing objects/types, so the
/// quantification domain never grows and the probe cost is O(arrivals) —
/// window-length independent — which is why the log growing during the
/// adaptive measurement loop does not bias the mean. The cold side hands
/// every probe a fresh scratchpad over the *static* prefilled window (a
/// cold rebuild's price depends only on the window length, not on fresh
/// arrivals), so its label — and its O(window) cost — stay exact.
fn bench_advance(c: &mut Criterion) {
    let events = if measure_mode() { 10_000 } else { 1_000 };
    let mut g = c.benchmark_group("advance_10k");
    for &k in &[1usize, 16] {
        for cold in [false, true] {
            let mut eb = history(23, events, 4, (events / 4) as u64);
            let expr = p(0).iand(p(1));
            let mut pe = PlanEval::compile(&expr).unwrap();
            let plan = pe.plan().clone();
            pe.eval(&eb, Window::from_origin(eb.now()), eb.now());
            let mut n = 0usize;
            let name = if cold { "cold_probe" } else { "incremental_probe" };
            g.bench_with_input(BenchmarkId::new(name, k), &k, |b, &k| {
                b.iter(|| {
                    if cold {
                        let now = eb.now();
                        let w = Window::from_origin(now);
                        let mut fresh = PlanEval::new(plan.clone());
                        black_box(fresh.eval(&eb, w, now))
                    } else {
                        for _ in 0..k {
                            n += 1;
                            eb.append(et((n % 4) as u32), Oid((n % (events / 4)) as u64 + 1));
                        }
                        let now = eb.now();
                        let w = Window::from_origin(now);
                        black_box(pe.eval(&eb, w, now))
                    }
                });
            });
        }
    }
    g.finish();
}

/// Mean ns of the *probe alone* (appends excluded) after `k` arrivals —
/// the number the PR-3 acceptance criterion is stated in. Returns the
/// mean and the final window length (arrivals cycle over the existing
/// objects, so the domain is fixed and the incremental probe stays
/// O(arrivals) as the log grows; the reported length keeps the label
/// honest). `fresh_scratch` measures the cold tier instead: a full
/// rebuild over the *static* prefilled window, whose price depends on
/// the window length alone — no arrivals are appended there.
fn post_arrival_probe_ns(events: usize, k: usize, fresh_scratch: bool) -> (f64, usize) {
    let mut eb = history(23, events, 4, (events / 4) as u64);
    let expr = p(0).iand(p(1));
    let mut warm = PlanEval::compile(&expr).unwrap();
    let plan = warm.plan().clone();
    warm.eval(&eb, Window::from_origin(eb.now()), eb.now());
    let iters = 300usize;
    let mut total = Duration::ZERO;
    let mut n = 0usize;
    for _ in 0..iters {
        if !fresh_scratch {
            for _ in 0..k {
                n += 1;
                eb.append(et((n % 4) as u32), Oid((n % (events / 4)) as u64 + 1));
            }
        }
        let now = eb.now();
        let w = Window::from_origin(now);
        let start = Instant::now();
        if fresh_scratch {
            let mut pe = PlanEval::new(plan.clone());
            black_box(pe.eval(&eb, w, now));
        } else {
            black_box(warm.eval(&eb, w, now));
        }
        total += start.elapsed();
    }
    (total.as_nanos() as f64 / iters as f64, eb.len())
}

/// The PR-3 acceptance numbers, reported by the bench itself.
fn report_acceptance(c: &mut Criterion) {
    let _ = c;
    if !measure_mode() {
        // still exercise the measured path once so test mode covers it
        black_box(post_arrival_probe_ns(200, 1, false));
        return;
    }
    for &k in &[1usize, 16] {
        let (inc, grown) = post_arrival_probe_ns(10_000, k, false);
        let (cold, _) = post_arrival_probe_ns(10_000, k, true);
        println!(
            "post-arrival probe, {k} arrivals: incremental {:.2} µs \
             (target <=10 µs; window 10k->{:.1}k over the run), \
             cold {:.2} µs (static 10k window, {:.0}x)",
            inc / 1_000.0,
            grown as f64 / 1_000.0,
            cold / 1_000.0,
            cold / inc.max(1.0),
        );
    }
}

criterion_group!(benches, bench_throughput, bench_advance, report_acceptance);
criterion_main!(benches);
