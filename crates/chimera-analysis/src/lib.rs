//! # chimera-analysis
//!
//! Static analysis of Chimera trigger sets.
//!
//! The paper's §5.1 optimization analyses a *single* rule's event
//! expression to decide when its `ts` needs recomputation. This crate
//! lifts the same machinery to the *rule-set* level, the classic companion
//! analyses of the active-database literature (Widom & Ceri, ch. 4; the
//! IDEA project applied them to Chimera itself):
//!
//! * [`effects`] — which event types a rule's **actions** can generate,
//!   inferred from the action statements against the schema (inheritance
//!   included: a variable ranges over the deep extent of its class, so a
//!   `modify` through it can surface as a `modify` event on any
//!   descendant class);
//! * [`listens`] — which event-type arrivals can **trigger** a rule,
//!   derived from the §5.1 variation set `V(E)` plus the two
//!   completion flags (vacuous activity, fresh-object sensitivity) that
//!   make some rules sensitive to *every* arrival;
//! * [`graph`] — the **triggering graph**: an edge `r → s` whenever some
//!   event type `r`'s actions can generate may trigger `s`. Cycles
//!   (Tarjan SCCs) are *potential* non-termination; an acyclic graph is a
//!   conservative **termination guarantee** for the reaction loop;
//! * [`confluence`] — priority-tie detection: two rules that can be
//!   triggered by a common event, are not priority-ordered, and whose
//!   actions conflict (write/write or write/delete on overlapping class
//!   extents) make the final state depend on the tie-breaking order.
//!
//! All verdicts are conservative in the safe direction: `Terminates` is a
//! guarantee, `MayLoop` is a warning (the §4.4 `R ≠ ∅` guard or the
//! condition part may still stop a flagged cycle at runtime — see the
//! crate's integration tests for both outcomes).

pub mod confluence;
pub mod effects;
pub mod graph;
pub mod listens;
pub mod report;

pub use confluence::{confluence_warnings, ConfluenceWarning, WriteSet};
pub use effects::action_effects;
pub use graph::{TerminationVerdict, TriggeringGraph};
pub use listens::TriggerSensitivity;
pub use report::{analyze, AnalysisReport};

/// Crate-level result alias (analysis reuses the rule-crate error type for
/// name/schema resolution failures).
pub type Result<T> = std::result::Result<T, chimera_model::ModelError>;
