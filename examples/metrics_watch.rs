//! Watch a live chimera-net server through the wire metrics endpoint.
//!
//! A telemetry-enabled runtime serves loopback traffic from a feeder
//! thread while the main thread plays operator: it polls
//! `MetricsSnapshot` over its own TCP connection and renders the stage
//! latency histograms as they fill — queue-wait, execute, group commit,
//! frame decode, per-connection RTT, rehydrate — then dumps the
//! Prometheus-style text exposition and the postmortem trace tail at
//! the end. The runtime runs with a lifecycle cap well below the
//! tenant count, so the `tenants_resident` gauge and the eviction /
//! rehydration counters move while the feeder cycles through tenants.
//!
//! Run with `cargo run --example metrics_watch`.

use chimera::lifecycle::LifecycleConfig;
use chimera::model::{AttrDef, AttrType, SchemaBuilder};
use chimera::net::{Client, ExternalEvent, Server, ServerConfig, WireOutcome};
use chimera::runtime::{Backpressure, Runtime, RuntimeConfig};
use std::sync::Arc;
use std::time::Duration;

const TENANTS: u64 = 16;
const RESIDENT_CAP: usize = 6;
const BLOCKS: u64 = 30;
const ROUNDS: u64 = 2;
const POLLS: u32 = 5;

fn main() {
    let mut b = SchemaBuilder::new();
    b.class("reading", None, vec![AttrDef::new("v", AttrType::Integer)])
        .unwrap();
    let schema = b.build();
    let reading = schema.class_by_name("reading").unwrap();
    let runtime = Arc::new(
        Runtime::new(
            schema,
            vec![],
            RuntimeConfig {
                shards: 4,
                queue_capacity: 64,
                backpressure: Backpressure::Block,
                telemetry: true,
                lifecycle: LifecycleConfig::with_max_resident(RESIDENT_CAP),
                ..Default::default()
            },
        )
        .unwrap(),
    );
    let server = Server::bind("127.0.0.1:0", runtime, ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}");

    std::thread::scope(|scope| {
        // the feeder: steady pipelined traffic for the poller to watch
        scope.spawn(move || {
            let mut c = Client::connect_with(addr, "feeder", 1 << 20).unwrap();
            // two rounds over the tenants: with only RESIDENT_CAP of
            // them allowed in RAM, the second round re-claims tenants
            // the lifecycle layer evicted after the first — every one
            // of those claims is a rehydration the poller can watch
            for round in 0..ROUNDS {
                for t in 0..TENANTS {
                    c.begin(t).unwrap();
                    if round == 0 {
                        c.exec_block(
                            t,
                            vec![chimera::net::WireOp::Create {
                                class: reading.0,
                                inits: vec![],
                            }],
                        )
                        .unwrap();
                    }
                    for i in 0..BLOCKS {
                        c.raise_external(
                            t,
                            vec![ExternalEvent {
                                class: reading.0,
                                channel: (i % 2) as u32 + 1,
                                oid: 0,
                            }],
                        )
                        .unwrap();
                    }
                    c.commit(t).unwrap();
                }
            }
            for done in c.drain().unwrap() {
                assert!(!matches!(done.outcome, WireOutcome::Error { .. }));
            }
            // the feeder's own view: client-side request latency from
            // its local always-on recorder, no server round trip needed
            let local = c.telemetry().snapshot();
            let h = local.hist("client_request").unwrap();
            println!(
                "feeder done: {} requests, p50={}ns p99={}ns",
                h.count(),
                h.p50(),
                h.p99()
            );
        });

        // the operator: a second connection polling the registry while
        // the feeder runs. Each snapshot is a merged view of every
        // worker's shard; the trace ring drains into the *last* poll
        let mut c = Client::connect(addr).unwrap();
        let mut traces = Vec::new();
        for poll in 1..=POLLS {
            std::thread::sleep(Duration::from_millis(120));
            let m = c.metrics_snapshot().unwrap();
            assert!(m.enabled, "the runtime was built with telemetry on");
            traces.extend(m.traces.iter().copied());
            println!("-- poll {poll} --");
            println!(
                "  residency: {} of {RESIDENT_CAP} tenants in RAM, {} evicted, {} rehydrated",
                m.gauge("tenants_resident").unwrap_or(0),
                m.counter("tenants_evicted").unwrap_or(0),
                m.counter("tenants_rehydrated").unwrap_or(0),
            );
            for stage in [
                "queue_wait",
                "execute",
                "commit",
                "rehydrate",
                "net_frame_decode",
                "net_conn_rtt",
            ] {
                let h = m.hist(stage).unwrap();
                if h.count() == 0 {
                    continue;
                }
                println!(
                    "  {stage:<16} n={:<7} p50={}ns p90={}ns p99={}ns max={}ns",
                    h.count(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max()
                );
            }
        }

        // final picture: the text exposition (what a scraper would
        // ingest) and the postmortem trace tail. Each snapshot *drains*
        // the ring, so the tail accumulates across the polls above
        let m = c.metrics_snapshot().unwrap();
        traces.extend(m.traces.iter().copied());
        println!("\n{}", m.render_text());
        println!("trace tail ({} events):", traces.len());
        for ev in traces.iter().rev().take(8).rev() {
            println!(
                "  #{:<6} +{:>12}ns {:<14} a={} b={}",
                ev.seq,
                ev.at_ns,
                ev.kind.name(),
                ev.a,
                ev.b
            );
        }
        c.shutdown_server().unwrap();
    });
    server.shutdown();
    println!("server stopped");
}
