//! Set-oriented action execution.
//!
//! A rule's action runs once per consideration, over *all* binding tuples
//! the condition produced (§2). Each statement is applied in order; class
//! mutations are collected and handed back to the engine, whose Event
//! Handler appends them to the Event Base as one non-interruptible block.

use crate::error::ExecError;
use crate::formula::{eval_term, Binding};
use crate::Result;
use chimera_model::{Mutation, ObjectStore, Oid, Schema, Value};
use chimera_rules::action::ActionStmt;
use std::collections::HashSet;

/// Execute the statements over all binding tuples. Returns the mutations
/// in execution order (the engine turns them into event occurrences).
pub fn execute_actions(
    actions: &[ActionStmt],
    bindings: &[Binding],
    schema: &Schema,
    store: &mut ObjectStore,
) -> Result<Vec<Mutation>> {
    let mut muts = Vec::new();
    for stmt in actions {
        match stmt {
            ActionStmt::Create { class, inits } => {
                let cid = schema.class_by_name(class)?;
                for row in bindings {
                    let mut resolved = Vec::with_capacity(inits.len());
                    for (attr, term) in inits {
                        let aid = schema.attr_by_name(cid, attr)?;
                        resolved.push((aid, eval_term(term, row, schema, store)?));
                    }
                    muts.push(store.create(schema, cid, &resolved)?);
                }
            }
            ActionStmt::Modify { var, attr, value } => {
                for row in bindings {
                    let oid = bound_oid(row, var)?;
                    if !store.contains(oid) {
                        continue; // deleted by an earlier statement
                    }
                    let class = store.get(oid)?.class;
                    let aid = schema.attr_by_name(class, attr)?;
                    let v = eval_term(value, row, schema, store)?;
                    muts.push(store.modify(schema, oid, aid, v)?);
                }
            }
            ActionStmt::Delete { var } => {
                let mut seen = HashSet::new();
                for row in bindings {
                    let oid = bound_oid(row, var)?;
                    if seen.insert(oid) && store.contains(oid) {
                        muts.push(store.delete(oid)?);
                    }
                }
            }
            ActionStmt::Specialize { var, target } => {
                let tid = schema.class_by_name(target)?;
                let mut seen = HashSet::new();
                for row in bindings {
                    let oid = bound_oid(row, var)?;
                    if seen.insert(oid) && store.contains(oid) {
                        muts.push(store.specialize(schema, oid, tid)?);
                    }
                }
            }
            ActionStmt::Generalize { var, target } => {
                let tid = schema.class_by_name(target)?;
                let mut seen = HashSet::new();
                for row in bindings {
                    let oid = bound_oid(row, var)?;
                    if seen.insert(oid) && store.contains(oid) {
                        muts.push(store.generalize(schema, oid, tid)?);
                    }
                }
            }
        }
    }
    Ok(muts)
}

fn bound_oid(row: &Binding, var: &str) -> Result<Oid> {
    match row.get(var) {
        Some(Value::Ref(oid)) => Ok(*oid),
        Some(_) => Err(ExecError::BadTerm(format!(
            "`{var}` is not an object reference"
        ))),
        None => Err(ExecError::UnboundVariable(var.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::{AttrDef, AttrType, MutationKind, SchemaBuilder};
    use chimera_rules::condition::Term;

    fn setup() -> (Schema, ObjectStore) {
        let mut b = SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![
                AttrDef::new("quantity", AttrType::Integer),
                AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
            ],
        )
        .unwrap();
        b.class("perishable", Some("stock"), vec![]).unwrap();
        let mut store = ObjectStore::new();
        store.begin().unwrap();
        (b.build(), store)
    }

    fn bind(oid: Oid) -> Binding {
        let mut b = Binding::new();
        b.insert("S".into(), Value::Ref(oid));
        b
    }

    /// The paper's checkStockQty action: set quantity to max_quantity.
    #[test]
    fn modify_per_binding() {
        let (schema, mut store) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let a = store.create(&schema, stock, &[(q, Value::Int(200))]).unwrap();
        let b = store.create(&schema, stock, &[(q, Value::Int(300))]).unwrap();
        let actions = vec![ActionStmt::Modify {
            var: "S".into(),
            attr: "quantity".into(),
            value: Term::attr("S", "max_quantity"),
        }];
        let bindings = vec![bind(a.oid), bind(b.oid)];
        let muts = execute_actions(&actions, &bindings, &schema, &mut store).unwrap();
        assert_eq!(muts.len(), 2);
        assert!(muts.iter().all(|m| m.kind == MutationKind::Modify(q)));
        assert_eq!(store.read_attr(a.oid, q).unwrap(), &Value::Int(100));
        assert_eq!(store.read_attr(b.oid, q).unwrap(), &Value::Int(100));
    }

    #[test]
    fn create_runs_once_per_tuple() {
        let (schema, mut store) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let a = store.create(&schema, stock, &[]).unwrap();
        let b = store.create(&schema, stock, &[]).unwrap();
        let actions = vec![ActionStmt::Create {
            class: "stock".into(),
            inits: vec![("quantity".into(), Term::int(1))],
        }];
        let muts =
            execute_actions(&actions, &[bind(a.oid), bind(b.oid)], &schema, &mut store).unwrap();
        assert_eq!(muts.len(), 2);
        assert_eq!(store.extent(stock).count(), 4);
    }

    #[test]
    fn delete_deduplicates_oids() {
        let (schema, mut store) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let a = store.create(&schema, stock, &[]).unwrap();
        // same object bound twice (join duplicates)
        let actions = vec![ActionStmt::Delete { var: "S".into() }];
        let muts =
            execute_actions(&actions, &[bind(a.oid), bind(a.oid)], &schema, &mut store).unwrap();
        assert_eq!(muts.len(), 1);
        assert!(!store.contains(a.oid));
    }

    #[test]
    fn migrations() {
        let (schema, mut store) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let perishable = schema.class_by_name("perishable").unwrap();
        let a = store.create(&schema, stock, &[]).unwrap();
        let down = vec![ActionStmt::Specialize {
            var: "S".into(),
            target: "perishable".into(),
        }];
        let muts = execute_actions(&down, &[bind(a.oid)], &schema, &mut store).unwrap();
        assert_eq!(muts[0].kind, MutationKind::Specialize);
        assert_eq!(store.get(a.oid).unwrap().class, perishable);
        let up = vec![ActionStmt::Generalize {
            var: "S".into(),
            target: "stock".into(),
        }];
        let muts = execute_actions(&up, &[bind(a.oid)], &schema, &mut store).unwrap();
        assert_eq!(muts[0].kind, MutationKind::Generalize);
        assert_eq!(store.get(a.oid).unwrap().class, stock);
    }

    #[test]
    fn modify_after_delete_skips_gone_objects() {
        let (schema, mut store) = setup();
        let stock = schema.class_by_name("stock").unwrap();
        let a = store.create(&schema, stock, &[]).unwrap();
        let actions = vec![
            ActionStmt::Delete { var: "S".into() },
            ActionStmt::Modify {
                var: "S".into(),
                attr: "quantity".into(),
                value: Term::int(1),
            },
        ];
        let muts = execute_actions(&actions, &[bind(a.oid)], &schema, &mut store).unwrap();
        assert_eq!(muts.len(), 1, "modify on deleted object silently skipped");
    }

    #[test]
    fn no_bindings_means_no_effects() {
        let (schema, mut store) = setup();
        let actions = vec![ActionStmt::Create {
            class: "stock".into(),
            inits: vec![],
        }];
        let muts = execute_actions(&actions, &[], &schema, &mut store).unwrap();
        assert!(muts.is_empty());
    }

    #[test]
    fn unbound_variable_errors() {
        let (schema, mut store) = setup();
        let actions = vec![ActionStmt::Delete { var: "Z".into() }];
        let err = execute_actions(&actions, &[Binding::new()], &schema, &mut store).unwrap_err();
        assert!(matches!(err, ExecError::UnboundVariable(_)));
        let mut row = Binding::new();
        row.insert("Z".into(), Value::Int(1));
        let err = execute_actions(&actions, &[row], &schema, &mut store).unwrap_err();
        assert!(matches!(err, ExecError::BadTerm(_)));
    }
}
