//! Zipf-skewed tenant populations.
//!
//! The runtime's hot-tenant failure mode is not an exotic corner: real
//! multi-tenant traffic is Zipf-distributed, so one tenant is orders of
//! magnitude hotter than the median. This module draws *tenant ranks*
//! from a parameterized Zipf law — rank 0 is the hottest — with an
//! optional extra boost on rank 0 for the "1 blazing tenant + N cold"
//! soak shape the scheduling benchmarks use (`benches/skew.rs`). The
//! caller maps ranks to actual tenant ids (dense, colliding, whatever
//! the experiment needs); this type only owns the draw.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Zipf tenant-population configuration.
#[derive(Debug, Clone)]
pub struct ZipfTenantsConfig {
    /// Number of distinct tenants (ranks `0..tenants`).
    pub tenants: u64,
    /// The Zipf exponent: rank `k` has weight `1 / (k+1)^s`. `0.0` is a
    /// uniform population; `~1.0` is classic web-traffic skew; larger
    /// values concentrate harder.
    pub s: f64,
    /// Extra multiplicative weight on rank 0, on top of its Zipf weight.
    /// `1.0` = pure Zipf; the skew benches use large boosts to model one
    /// blazing tenant against a long cold tail.
    pub hot_boost: f64,
    /// RNG seed (draws are fully reproducible).
    pub seed: u64,
}

impl Default for ZipfTenantsConfig {
    fn default() -> Self {
        ZipfTenantsConfig {
            tenants: 64,
            s: 1.1,
            hot_boost: 1.0,
            seed: 42,
        }
    }
}

/// A seeded generator of Zipf-distributed tenant ranks.
#[derive(Debug)]
pub struct ZipfTenants {
    /// Cumulative rank distribution.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfTenants {
    /// New generator.
    pub fn new(cfg: ZipfTenantsConfig) -> Self {
        assert!(cfg.tenants > 0, "need at least one tenant");
        assert!(cfg.hot_boost > 0.0, "hot_boost must be positive");
        let mut weights: Vec<f64> = (0..cfg.tenants)
            .map(|k| 1.0 / ((k + 1) as f64).powf(cfg.s))
            .collect();
        weights[0] *= cfg.hot_boost;
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        ZipfTenants {
            cdf: weights,
            rng: StdRng::seed_from_u64(cfg.seed),
        }
    }

    /// Number of ranks in the population.
    pub fn tenants(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draw the next tenant rank (0 = hottest).
    pub fn next_rank(&mut self) -> u64 {
        let x: f64 = self.rng.random_range(0.0..1.0);
        let rank = self.cdf.partition_point(|&c| c < x) as u64;
        rank.min(self.tenants() - 1)
    }

    /// Draw `n` ranks — the tenant sequence of a soak run.
    pub fn ranks(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_rank()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible_with_same_seed() {
        let mut a = ZipfTenants::new(ZipfTenantsConfig::default());
        let mut b = ZipfTenants::new(ZipfTenantsConfig::default());
        assert_eq!(a.ranks(200), b.ranks(200));
    }

    #[test]
    fn ranks_stay_in_bounds() {
        let mut g = ZipfTenants::new(ZipfTenantsConfig {
            tenants: 5,
            s: 2.0,
            hot_boost: 10.0,
            seed: 7,
        });
        assert!(g.ranks(500).iter().all(|&r| r < 5));
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let mut g = ZipfTenants::new(ZipfTenantsConfig {
            tenants: 16,
            s: 1.2,
            hot_boost: 1.0,
            seed: 3,
        });
        let mut counts = vec![0usize; 16];
        for r in g.ranks(4000) {
            counts[r as usize] += 1;
        }
        assert!(
            counts[0] > counts[15] * 4,
            "Zipf draw should favour rank 0: {counts:?}"
        );
    }

    #[test]
    fn hot_boost_makes_rank_zero_dominate() {
        let mut g = ZipfTenants::new(ZipfTenantsConfig {
            tenants: 32,
            s: 1.0,
            hot_boost: 64.0,
            seed: 11,
        });
        let hot = g.ranks(2000).iter().filter(|&&r| r == 0).count();
        assert!(
            hot > 1000,
            "a 64x boost should give rank 0 the majority, got {hot}/2000"
        );
    }

    #[test]
    fn zero_s_is_roughly_uniform() {
        let mut g = ZipfTenants::new(ZipfTenantsConfig {
            tenants: 4,
            s: 0.0,
            hot_boost: 1.0,
            seed: 9,
        });
        let mut counts = [0usize; 4];
        for r in g.ranks(4000) {
            counts[r as usize] += 1;
        }
        for (rank, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1300).contains(&c),
                "rank {rank} count {c} far from uniform: {counts:?}"
            );
        }
    }
}
