//! Incremental `ts` maintenance — the §5 engineering taken to its
//! conclusion.
//!
//! The paper's Trigger Support recomputes `ts` by querying the Occurred
//! Events structure. This module instead maintains, per expression, a
//! compact node-state array updated in O(|expr|) per arrival (plus
//! per-object state for instance subtrees, mirroring §5's "sparse data
//! structure … each item stores the OID of an object affected by some
//! event type … and the list of event occurrences affecting that object").
//! Queries between arrivals need **no** event-base access, so a detector
//! can run without retaining the log at all.
//!
//! The expression *shape* — the flat postorder op arenas with interned
//! leaf slots — is the compiled [`crate::plan::Plan`]; this module only
//! adds the per-node symbolic state, so the detector and the query-time
//! plan evaluator can never disagree about compilation. The two are
//! complementary arrival-driven designs: this detector folds each
//! occurrence into O(|expr|) node state at *observe* time and answers
//! queries without the event base, while [`crate::plan::PlanEval`]
//! leaves the log authoritative and advances its per-object stamp
//! matrix lazily by the epoch's delta at *query* time.
//!
//! Values are kept in an exact symbolic form: a sign plus a stamp that is
//! either a fixed instant or the symbolic *current instant* (negation is
//! active by absence with stamp `t`, and inactive sub-expressions carry
//! `-t`). Under this representation every §4.2 equation evaluates exactly,
//! so [`IncrementalTs::ts_at`] reproduces `ts_logical` *bit for bit* —
//! including the structured negative residues — which the unit tests and
//! the `tests/incremental_agreement.rs` property suite assert.
//!
//! Precedence needs one historical fact: "was `A` active at `B`'s
//! activation instant?". Each node therefore records its activity
//! *toggle* history (instants where its sign flipped). Negation-free
//! sub-expressions toggle at most once, so the common case stays O(1)
//! memory; with negation the history is bounded by the number of arrivals
//! that actually flip the sign.

use crate::expr::EventExpr;
use crate::plan::{BoundaryPlan, InstOp, Plan, SetOp};
use crate::ts::TsVal;
use crate::Result;
use chimera_events::{EventOccurrence, Timestamp};
use chimera_model::Oid;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A stamp magnitude: fixed instant or the symbolic current instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stamp {
    Fixed(Timestamp),
    /// Resolves to the query instant `t`; since every fixed stamp is ≤
    /// the current time, `Now` is the largest magnitude.
    Now,
}

impl Stamp {
    fn resolve(self, now: Timestamp) -> i64 {
        match self {
            Stamp::Fixed(s) => s.as_signed(),
            Stamp::Now => now.as_signed(),
        }
    }
}

/// An exact symbolic `ts` value: `+stamp` or `-stamp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SVal {
    pos: bool,
    stamp: Stamp,
}

impl SVal {
    const INACTIVE_NOW: SVal = SVal {
        pos: false,
        stamp: Stamp::Now,
    };

    fn active_at(ts: Timestamp) -> SVal {
        SVal {
            pos: true,
            stamp: Stamp::Fixed(ts),
        }
    }

    /// Total order of the signed values, valid because fixed magnitudes
    /// never exceed the current instant:
    /// `-t < -s₂ < -s₁ < +s₁ < +s₂ < +t` for `s₁ < s₂ ≤ t`.
    fn key(self) -> (i8, i64) {
        match (self.pos, self.stamp) {
            (false, Stamp::Now) => (0, 0),
            (false, Stamp::Fixed(s)) => (1, -s.as_signed()),
            (true, Stamp::Fixed(s)) => (2, s.as_signed()),
            (true, Stamp::Now) => (3, 0),
        }
    }

    fn min(self, other: SVal) -> SVal {
        if self.key() <= other.key() {
            self
        } else {
            other
        }
    }

    fn max(self, other: SVal) -> SVal {
        if self.key() >= other.key() {
            self
        } else {
            other
        }
    }

    fn negate(self) -> SVal {
        SVal {
            pos: !self.pos,
            stamp: self.stamp,
        }
    }

    /// §4.2 conjunction: both active → max, else min.
    fn and(self, other: SVal) -> SVal {
        if self.pos && other.pos {
            self.max(other)
        } else {
            self.min(other)
        }
    }

    /// §4.2 disjunction: any active → max, else min.
    fn or(self, other: SVal) -> SVal {
        if self.pos || other.pos {
            self.max(other)
        } else {
            self.min(other)
        }
    }

    fn resolve(self, now: Timestamp) -> TsVal {
        let m = self.stamp.resolve(now);
        TsVal(if self.pos { m } else { -m })
    }
}

/// Activity toggle history: `(instant, active-from-that-instant)` entries,
/// first entry at `t0`. Lookup is "activity at instant `s`" (inclusive).
#[derive(Debug, Clone, Default)]
struct History(Vec<(Timestamp, bool)>);

impl History {
    fn new(initial: bool) -> Self {
        History(vec![(Timestamp::ZERO, initial)])
    }

    fn record(&mut self, at: Timestamp, active: bool) {
        if self.0.last().map(|&(_, a)| a) != Some(active) {
            self.0.push((at, active));
        }
    }

    fn active_at(&self, s: Timestamp) -> bool {
        match self.0.partition_point(|&(t, _)| t <= s) {
            0 => false,
            i => self.0[i - 1].1,
        }
    }
}

/// Per-object state of an instance subtree (one [`SVal`] + toggle history
/// per [`InstOp`] of the boundary's compiled plan).
#[derive(Debug, Clone)]
struct ObjState {
    vals: Vec<SVal>,
    hist: Vec<History>,
}

/// Runtime state of one compiled boundary: the §5 "sparse data structure"
/// keyed by affected OID. The *shape* (op array, interned leaves, the
/// `inot` / widening flags) lives in the shared [`BoundaryPlan`].
#[derive(Debug, Clone)]
struct BoundaryState {
    objects: BTreeMap<Oid, ObjState>,
    /// Template state for freshly joining objects.
    fresh: ObjState,
}

/// Incremental evaluator for one (validated) event expression; observably
/// *and* numerically equivalent to [`crate::ts_logical`] over the window
/// started at construction / last [`IncrementalTs::reset`].
///
/// ```
/// use chimera_calculus::{EventExpr, IncrementalTs};
/// use chimera_events::{EventBase, EventType};
/// use chimera_model::{ClassId, Oid};
///
/// let approve = EventType::external(ClassId(0), 0);
/// let ship = EventType::external(ClassId(0), 1);
/// // approval then shipment on the same object
/// let expr = EventExpr::prim(approve).iprec(EventExpr::prim(ship));
///
/// let mut det = IncrementalTs::new(&expr).unwrap();
/// let mut eb = EventBase::new();
/// det.observe(&eb.append(ship, Oid(1)));    // wrong order: inactive
/// assert!(!det.is_active());
/// det.observe(&eb.append(approve, Oid(1)));
/// det.observe(&eb.append(ship, Oid(1)));    // now in order
/// assert!(det.is_active());
/// det.reset();                              // rule considered: consume
/// assert!(!det.is_active());
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalTs {
    /// Shared compiled shape (op arenas, interned leaves); see
    /// [`crate::plan`].
    plan: Arc<Plan>,
    vals: Vec<SVal>,
    hist: Vec<History>,
    /// Runtime state per compiled boundary, parallel to
    /// `plan.boundaries()`.
    bstates: Vec<BoundaryState>,
    nonempty: bool,
}

impl IncrementalTs {
    /// Compile a validated expression.
    pub fn new(expr: &EventExpr) -> Result<Self> {
        let plan = Arc::new(Plan::compile(expr)?);
        let bstates: Vec<BoundaryState> = plan
            .boundaries()
            .iter()
            .map(BoundaryState::new)
            .collect();
        let vals = initial_vals(&plan, &bstates);
        let hist = vals.iter().map(|v| History::new(v.pos)).collect();
        Ok(IncrementalTs {
            plan,
            vals,
            hist,
            bstates,
            nonempty: false,
        })
    }

    /// Has any occurrence been observed since the last reset (`R ≠ ∅`)?
    pub fn window_nonempty(&self) -> bool {
        self.nonempty
    }

    /// Observe one arrival (stamps strictly increasing across calls).
    pub fn observe(&mut self, occ: &EventOccurrence) {
        self.nonempty = true;
        let plan = self.plan.clone();
        let ops = plan.set_ops();
        for (i, op) in ops.iter().enumerate() {
            let val = match *op {
                SetOp::Leaf(slot) => {
                    if plan.set_leaves[slot as usize] == occ.ty {
                        SVal::active_at(occ.ts)
                    } else {
                        self.vals[i]
                    }
                }
                SetOp::Not(c) => self.vals[c as usize].negate(),
                SetOp::And(a, b) => self.vals[a as usize].and(self.vals[b as usize]),
                SetOp::Or(a, b) => self.vals[a as usize].or(self.vals[b as usize]),
                SetOp::Prec(a, b) => {
                    prec_val(self.vals[b as usize], &self.hist[a as usize], occ.ts)
                }
                SetOp::Boundary(bi) => {
                    let bp = &plan.boundaries()[bi as usize];
                    let state = &mut self.bstates[bi as usize];
                    state.observe(bp, occ);
                    state.boundary_val(bp)
                }
            };
            self.vals[i] = val;
            self.hist[i].record(occ.ts, val.pos);
        }
    }

    /// The exact `ts` value at instant `now` (`now` ≥ the last observed
    /// stamp). Matches `ts_logical` over the same window bit for bit.
    pub fn ts_at(&self, now: Timestamp) -> TsVal {
        self.vals[self.vals.len() - 1].resolve(now)
    }

    /// Sign of `ts` (activity).
    pub fn is_active(&self) -> bool {
        self.vals[self.vals.len() - 1].pos
    }

    /// Consumption reset: the observation window restarts empty.
    pub fn reset(&mut self) {
        for state in &mut self.bstates {
            state.objects.clear();
        }
        self.vals = initial_vals(&self.plan, &self.bstates);
        self.hist = self.vals.iter().map(|v| History::new(v.pos)).collect();
        self.nonempty = false;
    }
}

/// `ts(a < b)` from b's current value and a's activity history.
fn prec_val(b: SVal, a_hist: &History, now: Timestamp) -> SVal {
    if !b.pos {
        return SVal::INACTIVE_NOW;
    }
    let a_active = match b.stamp {
        Stamp::Fixed(s) => a_hist.active_at(s),
        Stamp::Now => a_hist.active_at(now),
    };
    if a_active {
        b
    } else {
        SVal::INACTIVE_NOW
    }
}

/// Node values over the empty window (primitives inactive, negations
/// active with the symbolic stamp).
fn initial_vals(plan: &Plan, bstates: &[BoundaryState]) -> Vec<SVal> {
    let ops = plan.set_ops();
    let mut vals = vec![SVal::INACTIVE_NOW; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        vals[i] = match *op {
            SetOp::Leaf(_) => SVal::INACTIVE_NOW,
            SetOp::Not(c) => vals[c as usize].negate(),
            SetOp::And(a, b) => vals[a as usize].and(vals[b as usize]),
            SetOp::Or(a, b) => vals[a as usize].or(vals[b as usize]),
            SetOp::Prec(a, b) => {
                let bb = vals[b as usize];
                if bb.pos && vals[a as usize].pos {
                    bb
                } else {
                    SVal::INACTIVE_NOW
                }
            }
            SetOp::Boundary(bi) => {
                bstates[bi as usize].boundary_val(&plan.boundaries()[bi as usize])
            }
        };
    }
    vals
}

impl BoundaryState {
    fn new(bp: &BoundaryPlan) -> Self {
        BoundaryState {
            objects: BTreeMap::new(),
            fresh: Self::fresh_state(bp),
        }
    }

    fn fresh_state(bp: &BoundaryPlan) -> ObjState {
        let mut vals = vec![SVal::INACTIVE_NOW; bp.ops.len()];
        for (i, op) in bp.ops.iter().enumerate() {
            vals[i] = match *op {
                InstOp::Leaf(_) => SVal::INACTIVE_NOW,
                InstOp::Not(c) => vals[c as usize].negate(),
                InstOp::And(a, b) => vals[a as usize].and(vals[b as usize]),
                InstOp::Or(a, b) => vals[a as usize].or(vals[b as usize]),
                InstOp::Prec(a, b) => {
                    let bb = vals[b as usize];
                    if bb.pos && vals[a as usize].pos {
                        bb
                    } else {
                        SVal::INACTIVE_NOW
                    }
                }
            };
        }
        let hist = vals.iter().map(|v| History::new(v.pos)).collect();
        ObjState { vals, hist }
    }

    fn observe(&mut self, bp: &BoundaryPlan, occ: &EventOccurrence) {
        let relevant = bp.leaves.contains(&occ.ty);
        if !(relevant || bp.widen) {
            return;
        }
        let state = self
            .objects
            .entry(occ.oid)
            .or_insert_with(|| self.fresh.clone());
        if !relevant {
            return; // joins the domain with the fresh (vacuous) state
        }
        for (i, op) in bp.ops.iter().enumerate() {
            let val = match *op {
                InstOp::Leaf(slot) => {
                    if bp.leaves[slot as usize] == occ.ty {
                        SVal::active_at(occ.ts)
                    } else {
                        state.vals[i]
                    }
                }
                InstOp::Not(c) => state.vals[c as usize].negate(),
                InstOp::And(a, b) => state.vals[a as usize].and(state.vals[b as usize]),
                InstOp::Or(a, b) => state.vals[a as usize].or(state.vals[b as usize]),
                InstOp::Prec(a, b) => {
                    prec_val(state.vals[b as usize], &state.hist[a as usize], occ.ts)
                }
            };
            state.vals[i] = val;
            state.hist[i].record(occ.ts, val.pos);
        }
    }

    /// §4.3 boundary: `max` over the object domain; `-=` root negates the
    /// max when some object is active, else is active at the symbolic
    /// current instant.
    fn boundary_val(&self, bp: &BoundaryPlan) -> SVal {
        let root = bp.ops.len() - 1;
        let max = self
            .objects
            .values()
            .map(|s| s.vals[root])
            .fold(None, |acc: Option<SVal>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            });
        if bp.inot {
            match max {
                Some(v) if v.pos => v.negate(),
                _ => SVal {
                    pos: true,
                    stamp: Stamp::Now,
                },
            }
        } else {
            match max {
                Some(v) => v,
                None => SVal::INACTIVE_NOW,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ts::ts_logical;
    use chimera_events::{EventBase, EventType, Window};
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    /// Drive both evaluators over a scripted stream; assert *exact* ts
    /// equality at every arrival instant and one gap instant.
    fn agree(expr: &EventExpr, stream: &[(u32, u64)]) {
        let mut inc = IncrementalTs::new(expr).unwrap();
        let mut eb = EventBase::new();
        for &(tyn, oid) in stream {
            let occ = eb.append(et(tyn), Oid(oid));
            inc.observe(&occ);
            let now = eb.now();
            let w = Window::from_origin(now);
            assert_eq!(
                inc.ts_at(now),
                ts_logical(expr, &eb, w, now),
                "{expr} at {now} (stream {stream:?})"
            );
        }
        let now = eb.tick();
        let w = Window::from_origin(now);
        assert_eq!(
            inc.ts_at(now),
            ts_logical(expr, &eb, w, now),
            "{expr} at gap instant {now}"
        );
    }

    #[test]
    fn primitive_and_boolean_ops() {
        let stream = [(0, 1), (1, 2), (0, 2), (2, 1)];
        agree(&p(0), &stream);
        agree(&p(0).or(p(1)), &stream);
        agree(&p(0).and(p(1)), &stream);
        agree(&p(0).not(), &stream);
        agree(&p(0).and(p(1).not()), &stream);
        agree(&p(0).not().or(p(1).not()).not(), &stream);
        agree(&p(0).or(p(1)).not().and(p(2)), &stream);
    }

    #[test]
    fn precedence_latching() {
        agree(&p(0).prec(p(1)), &[(0, 1), (1, 1)]);
        agree(&p(0).prec(p(1)), &[(1, 1), (0, 1)]);
        agree(&p(0).prec(p(1)), &[(0, 1), (1, 1), (1, 2), (0, 2)]);
        agree(&p(0).prec(p(1)), &[(1, 1), (0, 1), (1, 2)]);
        // negated left operand: deactivation-by-refresh
        agree(&p(2).not().prec(p(1)), &[(1, 1), (2, 1), (1, 2)]);
        // composite right operand whose stamp source changes over time
        agree(
            &p(0).prec(p(2).not().or(p(1))),
            &[(1, 1), (0, 1), (2, 1), (1, 2)],
        );
        // nested precedence
        agree(&p(0).prec(p(1)).prec(p(2)), &[(0, 1), (1, 1), (2, 1), (1, 2)]);
    }

    #[test]
    fn instance_subtrees() {
        let stream = [(0, 1), (1, 2), (1, 1), (0, 2), (2, 3)];
        agree(&p(0).iand(p(1)), &stream);
        agree(&p(0).iprec(p(1)), &stream);
        agree(&p(0).ior(p(1)), &stream);
        agree(&p(0).iand(p(1)).inot(), &stream);
        agree(&p(0).iand(p(1).inot()), &stream);
        agree(&p(2).and(p(0).iprec(p(1))), &stream);
        agree(&p(0).inot().inot(), &stream);
        agree(&p(0).iprec(p(1)).inot().not(), &stream);
    }

    #[test]
    fn reset_clears_window() {
        let expr = p(0).and(p(1));
        let mut inc = IncrementalTs::new(&expr).unwrap();
        let mut eb = EventBase::new();
        inc.observe(&eb.append(et(0), Oid(1)));
        inc.observe(&eb.append(et(1), Oid(1)));
        assert!(inc.is_active());
        assert!(inc.window_nonempty());
        inc.reset();
        assert!(!inc.is_active());
        assert!(!inc.window_nonempty());
        inc.observe(&eb.append(et(1), Oid(2)));
        assert!(!inc.is_active(), "needs a fresh pair after reset");
    }

    #[test]
    fn reset_matches_consumed_window() {
        // after reset, the incremental detector must equal ts over the
        // consumption window (last consideration .. now).
        let expr = p(0).iprec(p(1));
        let mut inc = IncrementalTs::new(&expr).unwrap();
        let mut eb = EventBase::new();
        inc.observe(&eb.append(et(0), Oid(1)));
        inc.observe(&eb.append(et(1), Oid(1)));
        let consumed_at = eb.now();
        inc.reset();
        inc.observe(&eb.append(et(1), Oid(1)));
        let now = eb.now();
        let w = Window::new(consumed_at, now);
        assert_eq!(inc.ts_at(now), ts_logical(&expr, &eb, w, now));
    }

    #[test]
    fn vacuous_negation_is_active_before_events() {
        let inc = IncrementalTs::new(&p(0).not()).unwrap();
        assert!(inc.is_active());
        assert_eq!(inc.ts_at(Timestamp(5)), TsVal(5));
        assert!(!inc.window_nonempty());
    }

    #[test]
    fn structured_negative_residues_are_exact() {
        // -( -A , -B ): after A@1 B@2 A@3, ts = -min(-3,-2) = 3 (a FIXED
        // stamp, not the current instant) — the case that forces the
        // symbolic signed representation.
        let expr = p(0).not().or(p(1).not()).not();
        let mut inc = IncrementalTs::new(&expr).unwrap();
        let mut eb = EventBase::new();
        inc.observe(&eb.append(et(0), Oid(1)));
        inc.observe(&eb.append(et(1), Oid(1)));
        inc.observe(&eb.append(et(0), Oid(2)));
        eb.tick();
        assert_eq!(inc.ts_at(eb.now()), TsVal(3));
    }

    #[test]
    fn rejects_invalid_expressions() {
        assert!(IncrementalTs::new(&p(0).and(p(1)).iand(p(2))).is_err());
    }

    #[test]
    fn history_lookup() {
        let mut h = History::new(false);
        h.record(Timestamp(3), true);
        h.record(Timestamp(5), true); // no-op (same state)
        h.record(Timestamp(7), false);
        assert!(!h.active_at(Timestamp(2)));
        assert!(h.active_at(Timestamp(3)));
        assert!(h.active_at(Timestamp(6)));
        assert!(!h.active_at(Timestamp(7)));
        assert_eq!(h.0.len(), 3, "no-op transitions are not stored");
    }
}
