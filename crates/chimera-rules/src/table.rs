//! The Rule Table and the Trigger Support (§5).
//!
//! The Trigger Support "maintains in the Rule Table the current status of
//! all defined rules; this table is managed by means of a hash table for
//! fast access, but rules are also linked together by means of a queue on
//! the basis of the priority order".
//!
//! Checking works incrementally: after each non-interruptible block the
//! Event Handler appends the new occurrences and calls
//! [`TriggerSupport::check`], which for every *untriggered* rule either
//! (a) skips the rule because no new arrival matches its `V(E)` relevance
//! filter (§5.1), or (b) probes the newly covered instants for a positive
//! `ts` witness. A rule is triggered as soon as a witness exists and its
//! window is non-empty; it is detriggered exactly at consideration.
//!
//! A check is one **batched round over the block's whole arrival delta**:
//! the dedup'd arrival types and the probe-instant set are computed once
//! per distinct `checked_upto` bound (almost always once per round, since
//! rules advance in lockstep) and shared by every rule, each rule's
//! compiled plan advances its arrival-incremental scratch state once for
//! the whole delta, and probe results are additionally memoized across
//! rules sharing an expression (see [`SupportStats`] for the counters).
//!
//! The round is **partitionable**: it runs in three phases — *classify*
//! (sequential: relevance-filter every untriggered rule over the shared
//! arrival scan and collect the rules that must probe), *probe* (each
//! candidate rule evaluates its own compiled plan over the shared
//! immutable probe-instant set; with [`TriggerSupport::check_workers`]
//! `> 1` the candidates are split across a persistent parked worker
//! pool ([`crate::SharedProbePool`] — shareable across the engines of a
//! runtime shard), the
//! sequential round being the same code path run as a single chunk), and
//! *commit* (sequential: apply the §4.4 predicate in definition order).
//! Per-rule state — the `Send` plan handle, the sticky witness, the
//! consumption stamps — is owned by the rule's own table slot, so workers
//! touch disjoint state and share only the event base, the round's
//! arrival scan, and a read-only snapshot of the cross-rule probe memo;
//! parallel and sequential rounds are observationally identical
//! (`tests/runtime_equivalence.rs` proves it property-by-property).

use crate::modes::CouplingMode;
use crate::trigger::{probe_instants_into, RuleState, TriggerDef};
use chimera_calculus::EventExpr;
use chimera_events::{EventBase, EventType, Timestamp, Window};
use std::collections::HashMap;
use std::fmt;

/// Rule-management errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleError {
    /// A rule with this name already exists.
    DuplicateRule(String),
    /// No rule with this name.
    UnknownRule(String),
    /// A targeted rule references an event type on a different class.
    TargetMismatch {
        /// Rule name.
        rule: String,
    },
    /// The rule's event expression is ill-formed (§3.2).
    InvalidExpression(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::DuplicateRule(n) => write!(f, "duplicate rule `{n}`"),
            RuleError::UnknownRule(n) => write!(f, "unknown rule `{n}`"),
            RuleError::TargetMismatch { rule } => write!(
                f,
                "rule `{rule}` is targeted but its events reference another class"
            ),
            RuleError::InvalidExpression(n) => {
                write!(f, "rule `{n}` has an ill-formed event expression")
            }
        }
    }
}

impl std::error::Error for RuleError {}

/// One rule table slot.
#[derive(Debug)]
struct Slot {
    def: TriggerDef,
    state: RuleState,
    /// Definition sequence number (priority tie-break).
    seq: usize,
}

/// The §5 Rule Table: name-indexed rule definitions plus runtime state.
#[derive(Debug, Default)]
pub struct RuleTable {
    slots: Vec<Slot>,
    by_name: HashMap<String, usize>,
}

impl RuleTable {
    /// Empty table.
    pub fn new() -> Self {
        RuleTable::default()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Define a rule. Validates the event expression and, for targeted
    /// rules, that every primitive is on the target class.
    pub fn define(&mut self, def: TriggerDef, now: Timestamp) -> Result<(), RuleError> {
        if self.by_name.contains_key(&def.name) {
            return Err(RuleError::DuplicateRule(def.name));
        }
        if def.events.validate().is_err() {
            return Err(RuleError::InvalidExpression(def.name));
        }
        if let Some(target) = def.target {
            if def.events.primitives().iter().any(|ty| ty.class != target) {
                return Err(RuleError::TargetMismatch { rule: def.name });
            }
        }
        let state = RuleState::new(&def, now);
        let seq = self.slots.len();
        self.by_name.insert(def.name.clone(), seq);
        self.slots.push(Slot { def, state, seq });
        Ok(())
    }

    /// Remove a rule.
    pub fn drop_rule(&mut self, name: &str) -> Result<(), RuleError> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| RuleError::UnknownRule(name.to_owned()))?;
        self.by_name.remove(name);
        self.slots.remove(idx);
        // reindex
        self.by_name.clear();
        for (i, s) in self.slots.iter().enumerate() {
            self.by_name.insert(s.def.name.clone(), i);
        }
        Ok(())
    }

    /// Rule definition by name.
    pub fn def(&self, name: &str) -> Result<&TriggerDef, RuleError> {
        self.index_of(name).map(|i| &self.slots[i].def)
    }

    /// Rule state by name.
    pub fn state(&self, name: &str) -> Result<&RuleState, RuleError> {
        self.index_of(name).map(|i| &self.slots[i].state)
    }

    /// Mutable rule state by name.
    pub fn state_mut(&mut self, name: &str) -> Result<&mut RuleState, RuleError> {
        let i = self.index_of(name)?;
        Ok(&mut self.slots[i].state)
    }

    fn index_of(&self, name: &str) -> Result<usize, RuleError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| RuleError::UnknownRule(name.to_owned()))
    }

    /// Iterate `(def, state)` pairs in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (&TriggerDef, &RuleState)> {
        self.slots.iter().map(|s| (&s.def, &s.state))
    }

    /// Names of currently triggered rules (definition order).
    pub fn triggered(&self) -> Vec<&str> {
        self.slots
            .iter()
            .filter(|s| s.state.triggered)
            .map(|s| s.def.name.as_str())
            .collect()
    }

    /// The rule-selection mechanism: the highest-priority triggered rule
    /// with the requested coupling mode (ties → earliest definition).
    pub fn select_next(&self, coupling: CouplingMode) -> Option<&str> {
        self.slots
            .iter()
            .filter(|s| s.state.triggered && s.def.coupling == coupling)
            .max_by_key(|s| (s.def.priority, std::cmp::Reverse(s.seq)))
            .map(|s| s.def.name.as_str())
    }

    /// Record the consideration of a rule at `now` (detrigger + consume).
    pub fn mark_considered(&mut self, name: &str, now: Timestamp) -> Result<(), RuleError> {
        let i = self.index_of(name)?;
        let consumption = self.slots[i].def.consumption;
        let st = &mut self.slots[i].state;
        st.triggered = false;
        st.witness = false;
        st.last_consideration = now;
        st.checked_upto = now;
        if consumption == crate::modes::ConsumptionMode::Consuming {
            st.last_consumption = now;
        }
        Ok(())
    }

    /// Reset all rule state for a new transaction starting at `start`.
    /// Compiled plans and relevance filters derive only from the
    /// definitions, so they are kept (with their scratchpads — the event
    /// base persists across transactions, and stale windows fall back to
    /// the plan's cold path) instead of being recompiled per transaction.
    pub fn reset_all(&mut self, start: Timestamp) {
        for s in &mut self.slots {
            s.state.reset(start);
        }
    }
}

/// Counters exposing how much work the §5.1 optimization saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupportStats {
    /// Untriggered rules examined.
    pub rules_checked: u64,
    /// Rules skipped because no arrival matched their `V(E)`.
    pub skipped_by_filter: u64,
    /// Individual `ts` probe evaluations performed.
    pub ts_probes: u64,
    /// `ts` probes answered from the per-epoch cross-rule memo instead of
    /// being evaluated (rules sharing an expression and a window).
    pub probe_memo_hits: u64,
    /// Trigger-support check rounds run (one per non-interruptible block
    /// plus one per reaction-loop iteration).
    pub check_rounds: u64,
    /// Probe-instant sets actually materialized; rules whose `checked_upto`
    /// coincides (the common lockstep case) share one set per round.
    pub probe_sets_built: u64,
}

/// Cross-rule `ts`-probe memo: witness results keyed by expression, then
/// `(window.after, instant)`, valid for one EB epoch.
type ProbeMemo = HashMap<EventExpr, HashMap<(Timestamp, Timestamp), bool>>;

/// Shared arrival state for one `checked_upto` bound within a check
/// round: the dedup'd types of the block's arrival delta (built on first
/// relevance-filter use) and the probe instants of the newly covered
/// range (built only when some rule survives the filter). Rules advance
/// in lockstep except right after a consideration, so a round usually
/// holds a single entry that every rule reuses — one relevance scan and
/// one probe set per block instead of one per rule, and none at all on
/// paths that never read them. The entries (and their buffers) live in
/// the support and are reused round after round, so the steady-state
/// block path allocates nothing new.
#[derive(Debug, Clone, Default)]
struct RoundScratch {
    from: Timestamp,
    types_built: bool,
    types: Vec<EventType>,
    probes_built: bool,
    probes: Vec<Timestamp>,
}

/// One probe worker's private state: the memo entries it discovered this
/// round (merged back into the support's epoch memo afterwards) and its
/// share of the probe counters. Workers read the pre-round memo snapshot
/// and their own fresh entries; values are deterministic, so duplicated
/// evaluation across workers can change counters but never outcomes.
#[derive(Debug, Default)]
struct ProbeScratch {
    memo: ProbeMemo,
    stats: SupportStats,
}

/// Below this many candidate rules a parallel round is not worth waking
/// the worker pool; the probe phase runs inline instead.
const MIN_PARALLEL_CANDIDATES: usize = 4;

/// The §5 Trigger Support: determines newly activated rules after a block.
#[derive(Debug, Clone, Default)]
pub struct TriggerSupport {
    /// Apply the §5.1 `V(E)` relevance filter (the static optimization).
    pub use_relevance_filter: bool,
    /// Worker threads for the probe phase of a check round. `0` or `1`
    /// runs the round sequentially; `n > 1` splits the candidate rules
    /// across `n` scoped threads (same per-rule code path either way).
    pub check_workers: usize,
    /// Work counters (monotonic; reset with [`TriggerSupport::reset_stats`]).
    pub stats: SupportStats,
    /// Cross-rule `ts`-probe memo, valid for one EB epoch. Rules sharing
    /// an expression and a consideration point (the common case after a
    /// batch arrival) evaluate each probe once; the outer key is cloned
    /// once per expression per epoch, lookups borrow.
    probe_memo: ProbeMemo,
    /// `(uid, epoch)` the memos belong to.
    memo_key: Option<(u64, u64)>,
    /// Reusable per-bound round entries; `rounds_live` are in use this
    /// round, the rest are spare capacity kept for their buffers.
    rounds: Vec<RoundScratch>,
    rounds_live: usize,
    /// Reusable probe plan: `(slot index, round index)` of the rules the
    /// classify phase selected for probing.
    probe_plan: Vec<(usize, usize)>,
    /// Persistent parked worker pool for the parallel probe phase;
    /// spawns `check_workers - 1` threads lazily on the first parallel
    /// round (never any while running sequentially) and parks them
    /// between rounds. Private by default; a multi-tenant shard shares
    /// one pool across its engines ([`TriggerSupport::use_shared_pool`]).
    pool: crate::pool::SharedProbePool,
}

impl TriggerSupport {
    /// With the static optimization enabled.
    pub fn optimized() -> Self {
        TriggerSupport {
            use_relevance_filter: true,
            ..TriggerSupport::default()
        }
    }

    /// Without the optimization (every untriggered rule re-probed).
    pub fn unoptimized() -> Self {
        TriggerSupport::default()
    }

    /// Set the probe-phase worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.check_workers = workers;
        self
    }

    /// Replace the private probe pool with a shared one, so several
    /// engines (the tenants of one runtime shard) park a single set of
    /// worker threads instead of one set each.
    pub fn use_shared_pool(&mut self, pool: crate::pool::SharedProbePool) {
        self.pool = pool;
    }

    /// Zero the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = SupportStats::default();
    }

    /// Check all untriggered rules against the EB state at `now` — one
    /// batched round over the block's whole arrival delta. Returns the
    /// names of newly triggered rules, in definition order.
    pub fn check(&mut self, table: &mut RuleTable, eb: &EventBase, now: Timestamp) -> Vec<String> {
        let key = (eb.uid(), eb.epoch());
        if self.memo_key != Some(key) {
            self.memo_key = Some(key);
            self.probe_memo.clear();
        }
        self.stats.check_rounds += 1;
        self.rounds_live = 0;
        self.probe_plan.clear();

        // Phase 1 — classify (sequential): relevance-filter every
        // untriggered rule over the shared per-bound arrival scan and
        // collect the rules that must probe.
        for (idx, slot) in table.slots.iter_mut().enumerate() {
            let st = &mut slot.state;
            if st.triggered {
                continue;
            }
            self.stats.rules_checked += 1;
            let ri = self.round_index(st.checked_upto);
            if self.use_relevance_filter && !st.witness {
                let r = &mut self.rounds[ri];
                if !r.types_built {
                    r.types_built = true;
                    for e in eb.slice(Window::new(r.from, now)) {
                        if !r.types.contains(&e.ty) {
                            r.types.push(e.ty);
                        }
                    }
                }
                let any_arrivals = !r.types.is_empty();
                let was_empty = !eb.any_in(Window::new(st.last_consideration, st.checked_upto));
                if !st.filter.needs_recheck(&r.types, was_empty) {
                    // the skipped range cannot contain a fresh positive
                    // witness; do not advance checked_upto past instants
                    // we never probed unless nothing arrived at all.
                    self.stats.skipped_by_filter += 1;
                    if any_arrivals {
                        st.checked_upto = now;
                    }
                    continue;
                }
            }
            if !st.witness && !Window::new(st.checked_upto, now).is_degenerate() {
                self.probe_plan.push((idx, ri));
            }
        }

        // Phase 2 — probe: materialize the probe-instant sets the
        // candidates reference (reused buffers), then evaluate each
        // candidate's own compiled plan over them — inline, or fanned out
        // across a scoped worker pool when configured and worthwhile.
        for pi in 0..self.probe_plan.len() {
            let ri = self.probe_plan[pi].1;
            let r = &mut self.rounds[ri];
            if !r.probes_built {
                r.probes_built = true;
                self.stats.probe_sets_built += 1;
                probe_instants_into(eb, r.from, now, &mut r.probes);
            }
        }
        let workers = self.check_workers.max(1).min(self.probe_plan.len());
        if workers > 1 && self.probe_plan.len() >= MIN_PARALLEL_CANDIDATES {
            let rounds = &self.rounds;
            let base_memo = &self.probe_memo;
            let plan = &self.probe_plan;
            // disjoint &mut borrows of exactly the candidate slots, in
            // slot order (probe_plan is built in increasing slot index)
            let mut cands: Vec<(&TriggerDef, &mut RuleState, usize)> =
                Vec::with_capacity(plan.len());
            let mut pi = 0;
            for (idx, slot) in table.slots.iter_mut().enumerate() {
                if pi < plan.len() && plan[pi].0 == idx {
                    cands.push((&slot.def, &mut slot.state, plan[pi].1));
                    pi += 1;
                }
            }
            let chunk = cands.len().div_ceil(workers);
            // one output slot per chunk, filled by whichever pool thread
            // (or the calling thread) runs the chunk; merged in chunk
            // order below, exactly as the scoped-spawn join used to
            let mut locals: Vec<Option<ProbeScratch>> = Vec::new();
            locals.resize_with(cands.len().div_ceil(chunk), || None);
            let tasks: Vec<crate::pool::Task<'_>> = cands
                .chunks_mut(chunk)
                .zip(locals.iter_mut())
                .map(|(part, out)| -> crate::pool::Task<'_> {
                    Box::new(move || {
                        let mut local = ProbeScratch::default();
                        for (def, st, ri) in part.iter_mut() {
                            probe_slot(
                                def,
                                st,
                                eb,
                                now,
                                &rounds[*ri].probes,
                                base_memo,
                                &mut local,
                            );
                        }
                        *out = Some(local);
                    })
                })
                .collect();
            self.pool.run(workers, tasks);
            for local in locals.into_iter().flatten() {
                self.absorb(local);
            }
        } else if !self.probe_plan.is_empty() {
            let mut local = ProbeScratch::default();
            for &(idx, ri) in &self.probe_plan {
                let slot = &mut table.slots[idx];
                probe_slot(
                    &slot.def,
                    &mut slot.state,
                    eb,
                    now,
                    &self.rounds[ri].probes,
                    &self.probe_memo,
                    &mut local,
                );
            }
            self.absorb(local);
        }

        // Phase 3 — commit (sequential): the §4.4 predicate, in
        // definition order. Nothing before this phase sets `triggered`,
        // so a slot that is already triggered here was triggered at entry.
        let mut newly = Vec::new();
        for slot in &mut table.slots {
            let st = &mut slot.state;
            if st.triggered {
                continue;
            }
            if st.witness && eb.any_in(st.trigger_window(now)) {
                st.triggered = true;
                newly.push(slot.def.name.clone());
            }
        }
        newly
    }

    /// The round entry for a `checked_upto` bound, reusing a spare slot
    /// (and its buffers) when the bound is new this round.
    fn round_index(&mut self, from: Timestamp) -> usize {
        for i in 0..self.rounds_live {
            if self.rounds[i].from == from {
                return i;
            }
        }
        if self.rounds_live == self.rounds.len() {
            self.rounds.push(RoundScratch::default());
        }
        let r = &mut self.rounds[self.rounds_live];
        r.from = from;
        r.types.clear();
        r.types_built = false;
        r.probes.clear();
        r.probes_built = false;
        self.rounds_live += 1;
        self.rounds_live - 1
    }

    /// Merge one probe worker's fresh memo entries and counters back into
    /// the support. Values are deterministic, so entry collisions between
    /// workers always agree.
    fn absorb(&mut self, local: ProbeScratch) {
        for (expr, entries) in local.memo {
            self.probe_memo.entry(expr).or_default().extend(entries);
        }
        self.stats.ts_probes += local.stats.ts_probes;
        self.stats.probe_memo_hits += local.stats.probe_memo_hits;
    }
}

/// Probe one candidate rule over the shared probe-instant set: the §4.4
/// existential for the newly covered range, through the rule's own
/// compiled plan. Consults the worker's fresh entries first, then the
/// pre-round memo snapshot; records fresh results in the worker's memo.
/// This is the per-rule unit of work both the sequential and the
/// parallel probe phase run.
fn probe_slot(
    def: &TriggerDef,
    st: &mut RuleState,
    eb: &EventBase,
    now: Timestamp,
    probes: &[Timestamp],
    base_memo: &ProbeMemo,
    local: &mut ProbeScratch,
) {
    let window = st.trigger_window(now);
    let mut found = false;
    for &t in probes {
        let key = (window.after, t);
        let cached = local
            .memo
            .get(&def.events)
            .and_then(|m| m.get(&key))
            .or_else(|| base_memo.get(&def.events).and_then(|m| m.get(&key)))
            .copied();
        let active = match cached {
            Some(hit) => {
                local.stats.probe_memo_hits += 1;
                hit
            }
            None => {
                local.stats.ts_probes += 1;
                let active = st.plan.eval(eb, window, t).is_active();
                local
                    .memo
                    .entry(def.events.clone())
                    .or_default()
                    .insert(key, active);
                active
            }
        };
        if active {
            found = true;
            break;
        }
    }
    st.witness = found || st.witness;
    st.checked_upto = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modes::ConsumptionMode;
    use crate::trigger::is_triggered;
    use chimera_calculus::EventExpr;
    use chimera_model::{ClassId, Oid};

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    #[test]
    fn define_and_lookup() {
        let mut rt = RuleTable::new();
        rt.define(TriggerDef::new("a", p(0)), Timestamp::ZERO).unwrap();
        assert_eq!(rt.len(), 1);
        assert!(rt.def("a").is_ok());
        assert!(rt.state("a").is_ok());
        assert!(matches!(rt.def("b"), Err(RuleError::UnknownRule(_))));
        assert!(matches!(
            rt.define(TriggerDef::new("a", p(1)), Timestamp::ZERO),
            Err(RuleError::DuplicateRule(_))
        ));
    }

    #[test]
    fn invalid_expression_rejected() {
        let mut rt = RuleTable::new();
        let bad = TriggerDef::new("bad", p(0).and(p(1)).iand(p(2)));
        assert!(matches!(
            rt.define(bad, Timestamp::ZERO),
            Err(RuleError::InvalidExpression(_))
        ));
    }

    #[test]
    fn target_mismatch_rejected() {
        let mut rt = RuleTable::new();
        let mut def = TriggerDef::new("t", p(0)); // class c0
        def.target = Some(ClassId(1));
        assert!(matches!(
            rt.define(def, Timestamp::ZERO),
            Err(RuleError::TargetMismatch { .. })
        ));
        let mut ok = TriggerDef::new("t", p(0));
        ok.target = Some(ClassId(0));
        rt.define(ok, Timestamp::ZERO).unwrap();
    }

    #[test]
    fn drop_rule_reindexes() {
        let mut rt = RuleTable::new();
        rt.define(TriggerDef::new("a", p(0)), Timestamp::ZERO).unwrap();
        rt.define(TriggerDef::new("b", p(1)), Timestamp::ZERO).unwrap();
        rt.drop_rule("a").unwrap();
        assert_eq!(rt.len(), 1);
        assert!(rt.def("b").is_ok());
        assert!(rt.drop_rule("a").is_err());
    }

    #[test]
    fn support_triggers_and_selection_respects_priority() {
        let mut rt = RuleTable::new();
        let mut hi = TriggerDef::new("hi", p(0));
        hi.priority = 10;
        let lo = TriggerDef::new("lo", p(0));
        rt.define(lo, Timestamp::ZERO).unwrap();
        rt.define(hi, Timestamp::ZERO).unwrap();
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        let mut sup = TriggerSupport::optimized();
        let newly = sup.check(&mut rt, &eb, eb.now());
        assert_eq!(newly, vec!["lo".to_string(), "hi".to_string()]);
        assert_eq!(rt.select_next(CouplingMode::Immediate), Some("hi"));
        assert_eq!(rt.select_next(CouplingMode::Deferred), None);
    }

    #[test]
    fn priority_tie_breaks_by_definition_order() {
        let mut rt = RuleTable::new();
        rt.define(TriggerDef::new("first", p(0)), Timestamp::ZERO).unwrap();
        rt.define(TriggerDef::new("second", p(0)), Timestamp::ZERO).unwrap();
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        TriggerSupport::optimized().check(&mut rt, &eb, eb.now());
        assert_eq!(rt.select_next(CouplingMode::Immediate), Some("first"));
    }

    #[test]
    fn consideration_detriggers_until_new_events() {
        let mut rt = RuleTable::new();
        rt.define(TriggerDef::new("r", p(0)), Timestamp::ZERO).unwrap();
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        let mut sup = TriggerSupport::optimized();
        sup.check(&mut rt, &eb, eb.now());
        assert!(rt.state("r").unwrap().triggered);
        rt.mark_considered("r", eb.now()).unwrap();
        assert!(!rt.state("r").unwrap().triggered);
        eb.tick();
        assert!(sup.check(&mut rt, &eb, eb.now()).is_empty());
        eb.append(et(0), Oid(2));
        assert_eq!(sup.check(&mut rt, &eb, eb.now()), vec!["r".to_string()]);
    }

    #[test]
    fn preserving_rules_keep_condition_window() {
        let mut rt = RuleTable::new();
        let mut def = TriggerDef::new("p", p(0));
        def.consumption = ConsumptionMode::Preserving;
        rt.define(def, Timestamp::ZERO).unwrap();
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        rt.mark_considered("p", eb.now()).unwrap();
        let st = rt.state("p").unwrap();
        assert_eq!(st.last_consideration, eb.now());
        assert_eq!(st.last_consumption, Timestamp::ZERO);
    }

    /// The incremental, filtered support agrees with the from-scratch
    /// §4.4 predicate on a scripted multi-block run.
    #[test]
    fn optimized_support_matches_formal_predicate() {
        let exprs = [
            p(0),
            p(0).and(p(1)),
            p(0).not(),
            p(1).and(p(0).not()),
            p(0).prec(p(1)),
            p(0).iand(p(1)),
            p(0).iand(p(1)).inot(),
            p(0).or(p(1)).prec(p(2).and(p(0).not())),
        ];
        // scripted history: blocks of arrivals
        let blocks: Vec<Vec<(u32, u64)>> = vec![
            vec![(2, 1)],
            vec![(0, 1)],
            vec![(1, 1), (1, 2)],
            vec![],
            vec![(0, 2), (2, 2)],
            vec![(1, 2)],
        ];
        for (i, expr) in exprs.iter().enumerate() {
            let mut rt_opt = RuleTable::new();
            let mut rt_ref = RuleTable::new();
            let name = format!("r{i}");
            rt_opt
                .define(TriggerDef::new(name.clone(), expr.clone()), Timestamp::ZERO)
                .unwrap();
            rt_ref
                .define(TriggerDef::new(name.clone(), expr.clone()), Timestamp::ZERO)
                .unwrap();
            let mut eb = EventBase::new();
            let mut opt = TriggerSupport::optimized();
            for block in &blocks {
                for &(ty, oid) in block {
                    eb.append(et(ty), Oid(oid));
                }
                eb.tick();
                let now = eb.now();
                opt.check(&mut rt_opt, &eb, now);
                let got = rt_opt.state(&name).unwrap().triggered;
                let want = is_triggered(rt_ref.def(&name).unwrap(), rt_ref.state(&name).unwrap(), &eb, now);
                assert_eq!(got, want, "expr {expr} diverged at now={now}");
                // once triggered, both consider the rule to keep comparing
                if want {
                    rt_opt.mark_considered(&name, now).unwrap();
                    rt_ref.mark_considered(&name, now).unwrap();
                }
            }
        }
    }

    #[test]
    fn unoptimized_support_equivalent_to_optimized() {
        let expr = p(1).and(p(0).not()).or(p(2).iprec(p(1)));
        let blocks: Vec<Vec<(u32, u64)>> =
            vec![vec![(1, 1)], vec![(0, 1)], vec![(2, 1)], vec![(1, 1)]];
        let mut rt_a = RuleTable::new();
        let mut rt_b = RuleTable::new();
        rt_a.define(TriggerDef::new("r", expr.clone()), Timestamp::ZERO).unwrap();
        rt_b.define(TriggerDef::new("r", expr), Timestamp::ZERO).unwrap();
        let mut eb = EventBase::new();
        for block in blocks {
            for (ty, oid) in block {
                eb.append(et(ty), Oid(oid));
            }
            let now = eb.now();
            TriggerSupport::optimized().check(&mut rt_a, &eb, now);
            TriggerSupport::unoptimized().check(&mut rt_b, &eb, now);
            assert_eq!(
                rt_a.state("r").unwrap().triggered,
                rt_b.state("r").unwrap().triggered
            );
            if rt_a.state("r").unwrap().triggered {
                rt_a.mark_considered("r", now).unwrap();
                rt_b.mark_considered("r", now).unwrap();
            }
        }
    }

    #[test]
    fn lockstep_rules_share_one_probe_set_per_round() {
        // many rules in lockstep: one arrival scan + one probe-instant
        // set per block, regardless of the rule count
        let mut rt = RuleTable::new();
        for i in 0..20 {
            rt.define(TriggerDef::new(format!("r{i}"), p(0).and(p(1))), Timestamp::ZERO)
                .unwrap();
        }
        let mut eb = EventBase::new();
        let mut sup = TriggerSupport::optimized();
        for block in 0..4u64 {
            eb.append(et(0), Oid(block + 1));
            eb.append(et(0), Oid(block + 2));
            sup.check(&mut rt, &eb, eb.now());
        }
        assert_eq!(sup.stats.check_rounds, 4);
        // every round needed at most one probe set for all 20 rules
        assert!(
            sup.stats.probe_sets_built <= sup.stats.check_rounds,
            "probe sets {} > rounds {}",
            sup.stats.probe_sets_built,
            sup.stats.check_rounds
        );
    }

    #[test]
    fn reset_keeps_compiled_plan_and_clears_runtime_state() {
        let mut rt = RuleTable::new();
        rt.define(TriggerDef::new("r", p(0).iand(p(1))), Timestamp::ZERO)
            .unwrap();
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        eb.append(et(1), Oid(1));
        let mut sup = TriggerSupport::optimized();
        sup.check(&mut rt, &eb, eb.now());
        assert!(rt.state("r").unwrap().triggered);
        rt.reset_all(eb.now());
        let st = rt.state("r").unwrap();
        assert!(!st.triggered && !st.witness);
        assert_eq!(st.checked_upto, eb.now());
        // the rule still evaluates correctly after the in-place reset
        eb.append(et(0), Oid(2));
        eb.append(et(1), Oid(2));
        assert_eq!(sup.check(&mut rt, &eb, eb.now()), vec!["r".to_string()]);
    }

    #[test]
    fn parallel_round_matches_sequential() {
        // the same scripted run through 1 and 4 probe workers must leave
        // identical rule state after every block (the fan-out is the same
        // per-rule code path run in chunks)
        let exprs = [
            p(0),
            p(0).and(p(1)),
            p(1).and(p(0).not()),
            p(0).prec(p(1)),
            p(0).iand(p(1)),
            p(0).iprec(p(1)),
            p(0).iand(p(1)).inot(),
            p(2).or(p(0)).prec(p(1)),
        ];
        let blocks: Vec<Vec<(u32, u64)>> = vec![
            vec![(0, 1), (1, 2)],
            vec![],
            vec![(1, 1)],
            vec![(2, 3), (0, 3)],
            vec![(1, 3), (0, 2), (1, 2)],
        ];
        let mut rt_seq = RuleTable::new();
        let mut rt_par = RuleTable::new();
        for (i, e) in exprs.iter().enumerate() {
            rt_seq
                .define(TriggerDef::new(format!("r{i}"), e.clone()), Timestamp::ZERO)
                .unwrap();
            rt_par
                .define(TriggerDef::new(format!("r{i}"), e.clone()), Timestamp::ZERO)
                .unwrap();
        }
        let mut seq = TriggerSupport::optimized();
        let mut par = TriggerSupport::optimized().with_workers(4);
        let mut eb_seq = EventBase::new();
        let mut eb_par = EventBase::new();
        for block in &blocks {
            for &(ty, oid) in block {
                eb_seq.append(et(ty), Oid(oid));
                eb_par.append(et(ty), Oid(oid));
            }
            eb_seq.tick();
            eb_par.tick();
            let newly_seq = seq.check(&mut rt_seq, &eb_seq, eb_seq.now());
            let newly_par = par.check(&mut rt_par, &eb_par, eb_par.now());
            assert_eq!(newly_seq, newly_par);
            for i in 0..exprs.len() {
                let name = format!("r{i}");
                let a = rt_seq.state(&name).unwrap();
                let b = rt_par.state(&name).unwrap();
                assert_eq!(
                    (a.triggered, a.witness, a.checked_upto, a.last_consideration),
                    (b.triggered, b.witness, b.checked_upto, b.last_consideration),
                    "rule {name} diverged"
                );
                if a.triggered {
                    rt_seq.mark_considered(&name, eb_seq.now()).unwrap();
                    rt_par.mark_considered(&name, eb_par.now()).unwrap();
                }
            }
        }
        // every probe decision was made on both sides, memoized or not
        assert_eq!(
            seq.stats.ts_probes + seq.stats.probe_memo_hits,
            par.stats.ts_probes + par.stats.probe_memo_hits,
        );
    }

    #[test]
    fn reset_all_clears_state() {
        let mut rt = RuleTable::new();
        rt.define(TriggerDef::new("r", p(0)), Timestamp::ZERO).unwrap();
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1));
        TriggerSupport::optimized().check(&mut rt, &eb, eb.now());
        assert!(rt.state("r").unwrap().triggered);
        rt.reset_all(eb.now());
        assert!(!rt.state("r").unwrap().triggered);
        assert_eq!(rt.state("r").unwrap().last_consideration, eb.now());
    }
}
