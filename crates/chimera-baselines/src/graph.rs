//! Ode-style detection graph (§1.1: Ode checks composite events "by means
//! of a finite state automata", with the expressive power of regular
//! expressions).
//!
//! The detector compiles a **negation-free, set-oriented** expression into
//! a tree of operator nodes, each holding constant-size state (an
//! acceptance latch). Every incoming event updates the tree bottom-up in
//! O(nodes); `accepted` reports whether the composite has been detected
//! since the last [`GraphDetector::reset`].
//!
//! For this fragment, acceptance coincides with the calculus' triggering
//! witness (`∃ t' : ts(E, t') > 0`) — asserted by the agreement tests —
//! while negation and instance operators are simply *inexpressible*,
//! which is the qualitative comparison the paper draws.

use chimera_calculus::{CalculusError, EventExpr};
use chimera_events::EventOccurrence;

/// One operator node.
#[derive(Debug, Clone)]
enum Node {
    Prim(chimera_events::EventType),
    Or(usize, usize),
    And(usize, usize),
    /// Sequence: right completing while left already accepted.
    Seq(usize, usize),
}

/// The compiled detection graph.
#[derive(Debug, Clone)]
pub struct GraphDetector {
    nodes: Vec<Node>,
    /// Acceptance latch per node.
    accepted: Vec<bool>,
    root: usize,
}

impl GraphDetector {
    /// Compile an expression. Errors on negation or instance operators
    /// (outside the regular fragment).
    pub fn compile(expr: &EventExpr) -> Result<Self, CalculusError> {
        let mut nodes = Vec::new();
        let root = Self::build(expr, &mut nodes)?;
        let accepted = vec![false; nodes.len()];
        Ok(GraphDetector {
            nodes,
            accepted,
            root,
        })
    }

    fn build(expr: &EventExpr, nodes: &mut Vec<Node>) -> Result<usize, CalculusError> {
        let node = match expr {
            EventExpr::Prim(ty) => Node::Prim(*ty),
            EventExpr::Or(a, b) => {
                let (na, nb) = (Self::build(a, nodes)?, Self::build(b, nodes)?);
                Node::Or(na, nb)
            }
            EventExpr::And(a, b) => {
                let (na, nb) = (Self::build(a, nodes)?, Self::build(b, nodes)?);
                Node::And(na, nb)
            }
            EventExpr::Prec(a, b) => {
                let (na, nb) = (Self::build(a, nodes)?, Self::build(b, nodes)?);
                Node::Seq(na, nb)
            }
            // negation / instance operators: outside the regular fragment
            _ => return Err(CalculusError::SetOrientedFormula),
        };
        nodes.push(node);
        Ok(nodes.len() - 1)
    }

    /// Feed one event; returns true if the root completes on it.
    pub fn feed(&mut self, ev: &EventOccurrence) -> bool {
        // `fired[i]`: node i newly completed on this event.
        let mut fired = vec![false; self.nodes.len()];
        let before = self.accepted.clone();
        for i in 0..self.nodes.len() {
            // children precede parents (post-order build)
            let f = match &self.nodes[i] {
                Node::Prim(ty) => ev.ty == *ty,
                Node::Or(a, b) => fired[*a] || fired[*b],
                Node::And(a, b) => {
                    (fired[*a] && (before[*b] || fired[*b]))
                        || (fired[*b] && (before[*a] || fired[*a]))
                }
                // left must have been accepted strictly before this event
                Node::Seq(a, b) => fired[*b] && before[*a],
            };
            fired[i] = f;
            if f {
                self.accepted[i] = true;
            }
        }
        fired[self.root]
    }

    /// Has the composite been detected since the last reset?
    pub fn accepted(&self) -> bool {
        self.accepted[self.root]
    }

    /// Clear all state (Chimera's detriggering/consumption analogue).
    pub fn reset(&mut self) {
        self.accepted.iter_mut().for_each(|a| *a = false);
    }

    /// Node count (detector size).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::ts_logical;
    use chimera_events::{EventBase, EventId, EventType, Timestamp, Window};
    use chimera_model::{ClassId, Oid};

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }
    fn ev(n: u32, ts: u64) -> EventOccurrence {
        EventOccurrence {
            eid: EventId(ts),
            ty: et(n),
            oid: Oid(1),
            ts: Timestamp(ts),
        }
    }

    #[test]
    fn sequence_detection() {
        let mut d = GraphDetector::compile(&p(0).prec(p(1))).unwrap();
        assert!(!d.feed(&ev(1, 1))); // B before A: no
        assert!(!d.feed(&ev(0, 2))); // A
        assert!(!d.accepted());
        assert!(d.feed(&ev(1, 3))); // B after A: accept
        assert!(d.accepted());
        d.reset();
        assert!(!d.accepted());
    }

    #[test]
    fn same_event_does_not_satisfy_both_seq_sides() {
        // A < A needs two A occurrences in the graph model? The calculus
        // says a single A satisfies `A < A` (same stamp counts); the graph
        // detector requires strict precedence — this is a *known semantic
        // difference* of the Ode fragment, so A < A is exercised via two
        // occurrences here.
        let mut d = GraphDetector::compile(&p(0).prec(p(0))).unwrap();
        assert!(!d.feed(&ev(0, 1)));
        assert!(d.feed(&ev(0, 2)));
    }

    #[test]
    fn conjunction_any_order() {
        let mut d = GraphDetector::compile(&p(0).and(p(1))).unwrap();
        d.feed(&ev(1, 1));
        assert!(!d.accepted());
        d.feed(&ev(0, 2));
        assert!(d.accepted());
        // other order
        let mut d2 = GraphDetector::compile(&p(0).and(p(1))).unwrap();
        d2.feed(&ev(0, 1));
        d2.feed(&ev(1, 2));
        assert!(d2.accepted());
    }

    #[test]
    fn disjunction_either() {
        let mut d = GraphDetector::compile(&p(0).or(p(1))).unwrap();
        d.feed(&ev(1, 1));
        assert!(d.accepted());
    }

    #[test]
    fn negation_not_expressible() {
        assert!(GraphDetector::compile(&p(0).not()).is_err());
        assert!(GraphDetector::compile(&p(0).iand(p(1))).is_err());
    }

    /// Agreement with the calculus' triggering witness on the regular
    /// fragment (distinct primitives, so the strict-precedence nuance of
    /// `A < A` does not arise).
    #[test]
    fn agreement_with_calculus_witness() {
        let exprs = [
            p(0).prec(p(1)),
            p(0).and(p(1)).or(p(2)),
            p(0).prec(p(1)).and(p(2)),
            p(0).or(p(1)).prec(p(2)),
        ];
        let streams: Vec<Vec<u32>> = vec![
            vec![0, 1, 2],
            vec![1, 0, 2],
            vec![2, 2, 1],
            vec![0, 2, 1, 0],
            vec![1],
            vec![],
        ];
        for expr in &exprs {
            for stream in &streams {
                let mut d = GraphDetector::compile(expr).unwrap();
                let mut eb = EventBase::new();
                for (i, &tyn) in stream.iter().enumerate() {
                    let occ = eb.append_at(et(tyn), Oid(1), Timestamp(i as u64 + 1));
                    d.feed(&occ);
                }
                let now = Timestamp(stream.len() as u64 + 1);
                let w = Window::from_origin(now);
                let witness = (1..=now.raw())
                    .any(|t| ts_logical(expr, &eb, w, Timestamp(t)).is_active());
                assert_eq!(
                    d.accepted(),
                    witness,
                    "{expr} on {stream:?}: graph={} calculus-witness={}",
                    d.accepted(),
                    witness
                );
            }
        }
    }

    #[test]
    fn size_reports_nodes() {
        let d = GraphDetector::compile(&p(0).and(p(1)).or(p(2))).unwrap();
        assert_eq!(d.size(), 5);
    }
}
