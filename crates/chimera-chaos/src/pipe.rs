//! [`ChaosProxy`]: a seeded TCP chaos pipe between real sockets.
//!
//! The proxy listens on an ephemeral loopback port and forwards every
//! accepted connection to a target address through a pair of
//! `ChaosPipe` threads (one per direction). Three injections, all
//! deterministic in the config seed and the connection ordinal:
//!
//! * **partial writes** — forwarding happens in small chunks
//!   (`chunk_bytes`), so a peer that reads eagerly sees frames arrive
//!   in pieces;
//! * **delays** — after every `delay_every_bytes` forwarded bytes the
//!   pipe sleeps `delay`, stretching frames across time;
//! * **mid-frame disconnects** — each connection draws a cut position
//!   in `cut_bytes` (counting bytes forwarded in either direction) and,
//!   once crossed, both sockets are shut down. Cut positions are raw
//!   byte counts with no frame alignment, so cuts land mid-frame by
//!   construction. A global `max_cuts` budget bounds the chaos so a
//!   reconnecting client eventually completes.
//!
//! The proxy never interprets the protocol: it is byte-level chaos, the
//! same vantage point a flaky middlebox or dying NIC has.

use crate::plan::stream;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Seeded chaos parameters for [`ChaosProxy`].
#[derive(Debug, Clone)]
pub struct NetChaosConfig {
    /// Seed for all per-connection draws.
    pub seed: u64,
    /// Inclusive range `(min, max)` for each connection's cut position,
    /// in forwarded bytes across both directions; `None` never cuts.
    pub cut_bytes: Option<(u64, u64)>,
    /// Stop cutting after this many connections have been cut (so a
    /// reconnecting client converges). `u64::MAX` = unlimited.
    pub max_cuts: u64,
    /// Forwarding chunk size; small values force partial writes.
    pub chunk_bytes: usize,
    /// Sleep `delay` after every this-many forwarded bytes (0 = never).
    pub delay_every_bytes: u64,
    /// The injected delay.
    pub delay: Duration,
}

impl Default for NetChaosConfig {
    fn default() -> Self {
        NetChaosConfig {
            seed: 0,
            cut_bytes: None,
            max_cuts: u64::MAX,
            chunk_bytes: 64,
            delay_every_bytes: 0,
            delay: Duration::from_millis(0),
        }
    }
}

/// Shared per-connection state: both directions charge the same byte
/// counter against one drawn cut position.
struct ConnState {
    forwarded: AtomicU64,
    cut_at: u64,
    cut: AtomicBool,
}

/// A running chaos proxy (see module docs). Dropping it stops the
/// accept loop and severs every live pipe.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    cuts: Arc<AtomicU64>,
    accepted: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start a proxy on an ephemeral loopback port forwarding to
    /// `target`.
    pub fn start(target: SocketAddr, config: NetChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let cuts = Arc::new(AtomicU64::new(0));
        let accepted = Arc::new(AtomicU64::new(0));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let cuts = Arc::clone(&cuts);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                accept_loop(listener, target, config, stop, cuts, accepted)
            })
        };
        Ok(ChaosProxy {
            addr,
            stop,
            cuts,
            accepted,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections cut so far.
    pub fn cuts(&self) -> u64 {
        self.cuts.load(Ordering::Relaxed)
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Stop accepting and join the accept loop. Live pipes die when
    /// either endpoint closes (the server or client side will).
    pub fn shutdown(mut self) {
        self.stop_accept();
    }

    fn stop_accept(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // wake the blocking accept with a throwaway connection
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_accept();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    target: SocketAddr,
    config: NetChaosConfig,
    stop: Arc<AtomicBool>,
    cuts: Arc<AtomicU64>,
    accepted: Arc<AtomicU64>,
) {
    let mut conn_index = 0u64;
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(client) = incoming else { continue };
        let Ok(server) = TcpStream::connect(target) else {
            // target gone: drop the client, keep accepting (the target
            // may come back; the client sees a clean connection failure)
            drop(client);
            continue;
        };
        accepted.fetch_add(1, Ordering::Relaxed);
        let cut_at = match config.cut_bytes {
            Some((lo, hi)) if cuts.load(Ordering::Relaxed) < config.max_cuts => {
                lo + stream(config.seed, conn_index) % (hi.saturating_sub(lo) + 1)
            }
            _ => u64::MAX,
        };
        conn_index += 1;
        let state = Arc::new(ConnState {
            forwarded: AtomicU64::new(0),
            cut_at,
            cut: AtomicBool::new(false),
        });
        spawn_pipe(&client, &server, &config, &state, &cuts);
        spawn_pipe(&server, &client, &config, &state, &cuts);
    }
}

/// Spawn one forwarding direction `from -> to`. Threads are detached:
/// they exit when either socket dies, and proxy shutdown relies on the
/// endpoints closing (tests always shut down server and client).
fn spawn_pipe(
    from: &TcpStream,
    to: &TcpStream,
    config: &NetChaosConfig,
    state: &Arc<ConnState>,
    cuts: &Arc<AtomicU64>,
) {
    let (Ok(mut from), Ok(to)) = (from.try_clone(), to.try_clone()) else {
        return;
    };
    let config = config.clone();
    let state = Arc::clone(state);
    let cuts = Arc::clone(cuts);
    std::thread::spawn(move || {
        let mut to = to;
        let mut buf = vec![0u8; config.chunk_bytes.max(1)];
        let mut since_delay = 0u64;
        loop {
            let n = match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            if config.delay_every_bytes > 0 {
                since_delay += n as u64;
                if since_delay >= config.delay_every_bytes {
                    since_delay = 0;
                    std::thread::sleep(config.delay);
                }
            }
            let total = state.forwarded.fetch_add(n as u64, Ordering::Relaxed) + n as u64;
            if total >= state.cut_at {
                // forward a partial prefix so the cut lands mid-frame,
                // then sever both directions
                let keep = (n as u64).saturating_sub(total - state.cut_at) as usize;
                let _ = to.write_all(&buf[..keep.min(n)]);
                let _ = to.flush();
                if !state.cut.swap(true, Ordering::SeqCst) {
                    cuts.fetch_add(1, Ordering::Relaxed);
                }
                let _ = from.shutdown(Shutdown::Both);
                let _ = to.shutdown(Shutdown::Both);
                break;
            }
            if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
                break;
            }
        }
        // one side died: mirror the close so the other direction's
        // thread unblocks too
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial echo server for pipe tests.
    fn echo_server() -> (SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut conn) = conn else { continue };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 512];
                    while let Ok(n) = conn.read(&mut buf) {
                        if n == 0 || conn.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        (addr, stop)
    }

    #[test]
    fn clean_passthrough_echoes_exactly() {
        let (target, stop) = echo_server();
        let proxy = ChaosProxy::start(target, NetChaosConfig::default()).unwrap();
        let mut sock = TcpStream::connect(proxy.local_addr()).unwrap();
        let msg = b"through the pipe and back";
        sock.write_all(msg).unwrap();
        let mut got = vec![0u8; msg.len()];
        sock.read_exact(&mut got).unwrap();
        assert_eq!(&got, msg);
        assert_eq!(proxy.cuts(), 0);
        assert_eq!(proxy.accepted(), 1);
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(target);
        proxy.shutdown();
    }

    #[test]
    fn cut_connection_dies_at_the_drawn_position() {
        let (target, stop) = echo_server();
        let proxy = ChaosProxy::start(
            target,
            NetChaosConfig {
                seed: 9,
                cut_bytes: Some((8, 16)),
                max_cuts: 1,
                ..NetChaosConfig::default()
            },
        )
        .unwrap();
        let mut sock = TcpStream::connect(proxy.local_addr()).unwrap();
        // push enough bytes to cross any position in [8, 16]
        let payload = [0xABu8; 64];
        let _ = sock.write_all(&payload);
        let _ = sock.flush();
        // the connection must die: read eventually returns 0 or errors
        let mut drained = 0usize;
        let mut buf = [0u8; 64];
        loop {
            match sock.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => drained += n,
            }
        }
        assert!(drained < 64, "cut must land before the full echo");
        assert_eq!(proxy.cuts(), 1);
        // the cut budget is spent: the next connection passes through
        let mut sock = TcpStream::connect(proxy.local_addr()).unwrap();
        sock.write_all(b"alive").unwrap();
        let mut got = [0u8; 5];
        sock.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"alive");
        assert_eq!(proxy.cuts(), 1);
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(target);
        proxy.shutdown();
    }

    #[test]
    fn same_seed_same_cut_positions() {
        let a = NetChaosConfig {
            seed: 77,
            cut_bytes: Some((100, 1000)),
            ..NetChaosConfig::default()
        };
        let draw = |cfg: &NetChaosConfig, i: u64| {
            let (lo, hi) = cfg.cut_bytes.unwrap();
            lo + stream(cfg.seed, i) % (hi - lo + 1)
        };
        for i in 0..16 {
            assert_eq!(draw(&a, i), draw(&a, i));
            let p = draw(&a, i);
            assert!((100..=1000).contains(&p));
        }
    }
}
