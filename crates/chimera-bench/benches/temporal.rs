//! PERF-9 — temporal extension overhead.
//!
//! Three measurements: (a) the clock scheduler's due-computation vs the
//! number of registered specs (expected: linear, nanoseconds per spec);
//! (b) a full deadline-pattern transaction — periodic tick + negation —
//! against the identical transaction without the clock machinery (the
//! extension must cost one extra block, not a new regime); (c) the
//! `Times(n, E)` runtime detector vs window size (expected: linear in the
//! window, the price of counting that motivates keeping it *out* of the
//! calculus).

use chimera_calculus::EventExpr;
use chimera_events::{EventType, Timestamp, Window};
use chimera_exec::{Engine, Op};
use chimera_model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera_rules::{ActionStmt, Condition, Formula, Term, TriggerDef, VarDecl};
use chimera_temporal::{ClockDriver, ClockScheduler, ClockSpec, TimesDetector};
use chimera_workload::{StreamConfig, StreamGen};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("clock", None, vec![]).unwrap();
    b.class(
        "task",
        None,
        vec![AttrDef::with_default(
            "done",
            AttrType::Integer,
            Value::Int(0),
        )],
    )
    .unwrap();
    b.build()
}

fn bench_scheduler(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("clock_scheduler_due");
    for nspecs in [1usize, 16, 256] {
        group.throughput(Throughput::Elements(nspecs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(nspecs), &nspecs, |b, &n| {
            b.iter_batched(
                || {
                    let mut s = ClockScheduler::new(Timestamp::ZERO);
                    for i in 0..n {
                        s.register(
                            ClockSpec::Every {
                                period: 3 + (i as u64 % 7),
                                phase: i as u64 % 5,
                            },
                            i as u32,
                        );
                    }
                    s
                },
                |mut s| black_box(s.due(Timestamp(1_000))),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// One transaction: 20 task blocks, with/without a periodic audit pumped
/// after every block.
fn deadline_txn(with_clock: bool) -> u64 {
    let schema = schema();
    let clock = schema.class_by_name("clock").unwrap();
    let task = schema.class_by_name("task").unwrap();
    let done = schema.attr_by_name(task, "done").unwrap();
    let mut engine = Engine::new(schema);
    let expr = EventExpr::prim(EventType::external(clock, 1))
        .and(EventExpr::prim(EventType::modify(task, done)).not());
    let mut alert = TriggerDef::new("deadline", expr);
    alert.condition = Condition {
        decls: vec![VarDecl {
            name: "T".into(),
            class: "task".into(),
        }],
        formulas: vec![Formula::Compare {
            lhs: Term::attr("T", "done"),
            op: chimera_rules::CmpOp::Eq,
            rhs: Term::int(0),
        }],
    };
    alert.actions = vec![ActionStmt::Modify {
        var: "T".into(),
        attr: "done".into(),
        value: Term::int(-1),
    }];
    engine.define_trigger(alert).unwrap();
    let mut driver = ClockDriver::new(&engine, clock);
    driver.register(ClockSpec::Every { period: 5, phase: 5 }, 1);
    engine.begin().unwrap();
    for _ in 0..20 {
        engine
            .exec_block(&[Op::Create {
                class: task,
                inits: vec![],
            }])
            .unwrap();
        if with_clock {
            driver.pump(&mut engine).unwrap();
        }
    }
    engine.commit().unwrap();
    engine.stats().events
}

fn bench_deadline(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("deadline_pattern");
    group.bench_function("without_clock", |b| {
        b.iter(|| black_box(deadline_txn(false)))
    });
    group.bench_function("with_clock", |b| b.iter(|| black_box(deadline_txn(true))));
    group.finish();
}

fn bench_times_detector(crit: &mut Criterion) {
    let mut group = crit.benchmark_group("times_detector_window");
    for len in [1_000usize, 10_000, 100_000] {
        let eb = StreamGen::new(StreamConfig {
            event_types: 8,
            objects: 64,
            seed: 42,
            skew: 0.3,
        })
        .build(len);
        let ty = EventType::external(chimera_model::ClassId(0), 0);
        let det = TimesDetector::new(ty, 50);
        group.throughput(Throughput::Elements(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &eb, |b, eb| {
            let w = Window::from_origin(eb.now());
            b.iter(|| black_box(det.is_active(eb, w)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduler, bench_deadline, bench_times_detector);
criterion_main!(benches);
