//! Objects: class-tagged attribute vectors.

use crate::ids::{AttrId, ClassId, Oid};
use crate::value::Value;

/// A stored object instance.
///
/// The attribute vector layout matches the object's *current* class
/// ([`crate::Schema`] guarantees inherited slots come first), so
/// `specialize` extends the vector and `generalize` truncates it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// Immutable object identity.
    pub oid: Oid,
    /// Current (most specific) class of the object.
    pub class: ClassId,
    /// Attribute slots, laid out per the class definition.
    pub attrs: Vec<Value>,
}

impl Object {
    /// Read an attribute slot (None if out of range).
    pub fn get(&self, attr: AttrId) -> Option<&Value> {
        self.attrs.get(attr.index())
    }

    /// Write an attribute slot, returning the previous value.
    ///
    /// Callers (the store) must have validated the slot and type.
    pub(crate) fn set(&mut self, attr: AttrId, value: Value) -> Value {
        std::mem::replace(&mut self.attrs[attr.index()], value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_set() {
        let mut o = Object {
            oid: Oid(1),
            class: ClassId(0),
            attrs: vec![Value::Int(1), Value::Null],
        };
        assert_eq!(o.get(AttrId(0)), Some(&Value::Int(1)));
        assert_eq!(o.get(AttrId(5)), None);
        let old = o.set(AttrId(0), Value::Int(9));
        assert_eq!(old, Value::Int(1));
        assert_eq!(o.get(AttrId(0)), Some(&Value::Int(9)));
    }
}
