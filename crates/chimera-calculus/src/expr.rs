//! Event expressions: the calculus AST.
//!
//! The eight operators of Fig. 1, in decreasing priority order (§3: "set
//! oriented operators have lower priority than instance oriented ones, and
//! conjunction and precedence operators have the same priority"):
//!
//! | dimension    | instance-oriented | set-oriented |
//! |--------------|-------------------|--------------|
//! | negation     | `-=`              | `-`          |
//! | conjunction  | `+=`              | `+`          |
//! | precedence   | `<=`              | `<`          |
//! | disjunction  | `,=`              | `,`          |
//!
//! Well-formedness (§3.2): instance-oriented operators may not be applied
//! to sub-expressions built with set-oriented operators; the converse — an
//! instance-oriented expression used as operand of a set-oriented
//! operator — is the supported (and very useful) direction.

use crate::error::CalculusError;
use crate::Result;
use chimera_events::EventType;
use std::fmt;

/// A composite event expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EventExpr {
    /// A primitive event type, e.g. `create(stock)`.
    Prim(EventType),
    /// Set-oriented disjunction `E1 , E2`.
    Or(Box<EventExpr>, Box<EventExpr>),
    /// Set-oriented conjunction `E1 + E2`.
    And(Box<EventExpr>, Box<EventExpr>),
    /// Set-oriented negation `- E`.
    Not(Box<EventExpr>),
    /// Set-oriented precedence `E1 < E2` (E1 became active no later than
    /// E2's last activation).
    Prec(Box<EventExpr>, Box<EventExpr>),
    /// Instance-oriented disjunction `E1 ,= E2` (same object).
    IOr(Box<EventExpr>, Box<EventExpr>),
    /// Instance-oriented conjunction `E1 += E2` (same object).
    IAnd(Box<EventExpr>, Box<EventExpr>),
    /// Instance-oriented negation `-= E` (absence on a given object).
    INot(Box<EventExpr>),
    /// Instance-oriented precedence `E1 <= E2` (same object, in order).
    IPrec(Box<EventExpr>, Box<EventExpr>),
}

/// Priority levels used for printing/parsing (higher binds tighter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Set-oriented disjunction — the loosest operator.
    SetDisjunction,
    /// Set-oriented conjunction and precedence (same priority, §3).
    SetConjunction,
    /// Set-oriented negation.
    SetNegation,
    /// Instance-oriented disjunction.
    InstDisjunction,
    /// Instance-oriented conjunction and precedence.
    InstConjunction,
    /// Instance-oriented negation.
    InstNegation,
    /// Primitive event types.
    Primitive,
}

/// One row of the Fig. 1 operator table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorInfo {
    /// Operator family name.
    pub name: &'static str,
    /// Instance-oriented symbol.
    pub instance_symbol: &'static str,
    /// Set-oriented symbol.
    pub set_symbol: &'static str,
    /// Boolean / temporal dimension label (Fig. 2).
    pub dimension: &'static str,
}

/// Fig. 1: the composition operators, listed in decreasing priority order.
pub const FIG1_OPERATORS: [OperatorInfo; 4] = [
    OperatorInfo {
        name: "negation",
        instance_symbol: "-=",
        set_symbol: "-",
        dimension: "boolean",
    },
    OperatorInfo {
        name: "conjunction",
        instance_symbol: "+=",
        set_symbol: "+",
        dimension: "boolean",
    },
    OperatorInfo {
        name: "precedence",
        instance_symbol: "<=",
        set_symbol: "<",
        dimension: "temporal",
    },
    OperatorInfo {
        name: "disjunction",
        instance_symbol: ",=",
        set_symbol: ",",
        dimension: "boolean",
    },
];

impl EventExpr {
    /// Primitive expression.
    pub fn prim(ty: EventType) -> Self {
        EventExpr::Prim(ty)
    }
    /// `self , rhs`.
    pub fn or(self, rhs: EventExpr) -> Self {
        EventExpr::Or(Box::new(self), Box::new(rhs))
    }
    /// `self + rhs`.
    pub fn and(self, rhs: EventExpr) -> Self {
        EventExpr::And(Box::new(self), Box::new(rhs))
    }
    /// `- self` (named after the paper's operator, not `std::ops::Not`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        EventExpr::Not(Box::new(self))
    }
    /// `self < rhs`.
    pub fn prec(self, rhs: EventExpr) -> Self {
        EventExpr::Prec(Box::new(self), Box::new(rhs))
    }
    /// `self ,= rhs`.
    pub fn ior(self, rhs: EventExpr) -> Self {
        EventExpr::IOr(Box::new(self), Box::new(rhs))
    }
    /// `self += rhs`.
    pub fn iand(self, rhs: EventExpr) -> Self {
        EventExpr::IAnd(Box::new(self), Box::new(rhs))
    }
    /// `-= self`.
    pub fn inot(self) -> Self {
        EventExpr::INot(Box::new(self))
    }
    /// `self <= rhs`.
    pub fn iprec(self, rhs: EventExpr) -> Self {
        EventExpr::IPrec(Box::new(self), Box::new(rhs))
    }

    /// Is the root operator set-oriented (primitives count as both)?
    pub fn is_set_rooted(&self) -> bool {
        matches!(
            self,
            EventExpr::Or(..) | EventExpr::And(..) | EventExpr::Not(..) | EventExpr::Prec(..)
        )
    }

    /// Is this expression *instance-oriented*, i.e. usable inside instance
    /// operators and in event formulas? True for primitives and trees of
    /// instance operators only.
    pub fn is_instance_oriented(&self) -> bool {
        match self {
            EventExpr::Prim(_) => true,
            EventExpr::IOr(a, b) | EventExpr::IAnd(a, b) | EventExpr::IPrec(a, b) => {
                a.is_instance_oriented() && b.is_instance_oriented()
            }
            EventExpr::INot(e) => e.is_instance_oriented(),
            _ => false,
        }
    }

    /// Validate §3.2 well-formedness: no set-oriented operator below an
    /// instance-oriented one.
    pub fn validate(&self) -> Result<()> {
        match self {
            EventExpr::Prim(_) => Ok(()),
            EventExpr::Or(a, b) | EventExpr::And(a, b) | EventExpr::Prec(a, b) => {
                a.validate()?;
                b.validate()
            }
            EventExpr::Not(e) => e.validate(),
            EventExpr::IOr(a, b) | EventExpr::IAnd(a, b) | EventExpr::IPrec(a, b) => {
                if !a.is_instance_oriented() || !b.is_instance_oriented() {
                    return Err(CalculusError::SetInsideInstance);
                }
                a.validate()?;
                b.validate()
            }
            EventExpr::INot(e) => {
                if !e.is_instance_oriented() {
                    return Err(CalculusError::SetInsideInstance);
                }
                e.validate()
            }
        }
    }

    /// All primitive event types mentioned, in first-occurrence order
    /// (duplicates removed).
    pub fn primitives(&self) -> Vec<EventType> {
        let mut out = Vec::new();
        self.collect_primitives(&mut out);
        out
    }

    fn collect_primitives(&self, out: &mut Vec<EventType>) {
        match self {
            EventExpr::Prim(ty) => {
                if !out.contains(ty) {
                    out.push(*ty);
                }
            }
            EventExpr::Not(e) | EventExpr::INot(e) => e.collect_primitives(out),
            EventExpr::Or(a, b)
            | EventExpr::And(a, b)
            | EventExpr::Prec(a, b)
            | EventExpr::IOr(a, b)
            | EventExpr::IAnd(a, b)
            | EventExpr::IPrec(a, b) => {
                a.collect_primitives(out);
                b.collect_primitives(out);
            }
        }
    }

    /// Does the expression contain any (set- or instance-) negation?
    pub fn contains_negation(&self) -> bool {
        match self {
            EventExpr::Prim(_) => false,
            EventExpr::Not(_) | EventExpr::INot(_) => true,
            EventExpr::Or(a, b)
            | EventExpr::And(a, b)
            | EventExpr::Prec(a, b)
            | EventExpr::IOr(a, b)
            | EventExpr::IAnd(a, b)
            | EventExpr::IPrec(a, b) => a.contains_negation() || b.contains_negation(),
        }
    }

    /// Can the expression be active over an *empty* occurrence set? (Pure
    /// negations are; see DESIGN.md §3 — the trigger support must re-check
    /// such rules whenever the window becomes non-empty.)
    ///
    /// Evaluated at the set level: an instance-rooted sub-expression
    /// crosses the §4.3 boundary with an *empty object domain* when `R` is
    /// empty, so `∃`-rooted forms (`,=` `+=` `<=`) are never vacuously
    /// active while a boundary `-=` ("no object activates the component")
    /// always is — regardless of its component.
    pub fn vacuously_active(&self) -> bool {
        match self {
            EventExpr::Prim(_) => false,
            EventExpr::Not(e) => !e.vacuously_active(),
            EventExpr::And(a, b) => a.vacuously_active() && b.vacuously_active(),
            EventExpr::Or(a, b) => a.vacuously_active() || b.vacuously_active(),
            // precedence needs both active; with an empty history both can
            // only be active vacuously (stamps are then both the current
            // instant, and "A active at B's stamp" holds).
            EventExpr::Prec(a, b) => a.vacuously_active() && b.vacuously_active(),
            // instance→set boundary over the empty object domain:
            EventExpr::IAnd(..) | EventExpr::IOr(..) | EventExpr::IPrec(..) => false,
            EventExpr::INot(_) => true,
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            EventExpr::Prim(_) => 1,
            EventExpr::Not(e) | EventExpr::INot(e) => 1 + e.size(),
            EventExpr::Or(a, b)
            | EventExpr::And(a, b)
            | EventExpr::Prec(a, b)
            | EventExpr::IOr(a, b)
            | EventExpr::IAnd(a, b)
            | EventExpr::IPrec(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Tree depth (primitives have depth 1).
    pub fn depth(&self) -> usize {
        match self {
            EventExpr::Prim(_) => 1,
            EventExpr::Not(e) | EventExpr::INot(e) => 1 + e.depth(),
            EventExpr::Or(a, b)
            | EventExpr::And(a, b)
            | EventExpr::Prec(a, b)
            | EventExpr::IOr(a, b)
            | EventExpr::IAnd(a, b)
            | EventExpr::IPrec(a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// Printing priority of the root operator.
    pub fn priority(&self) -> Priority {
        match self {
            EventExpr::Prim(_) => Priority::Primitive,
            EventExpr::Or(..) => Priority::SetDisjunction,
            EventExpr::And(..) | EventExpr::Prec(..) => Priority::SetConjunction,
            EventExpr::Not(..) => Priority::SetNegation,
            EventExpr::IOr(..) => Priority::InstDisjunction,
            EventExpr::IAnd(..) | EventExpr::IPrec(..) => Priority::InstConjunction,
            EventExpr::INot(..) => Priority::InstNegation,
        }
    }

    /// Render with explicit event-type indices (`Pn`) — schema-free form
    /// used in tests and debugging. For schema-aware rendering see
    /// [`EventExpr::render`].
    fn fmt_with(
        &self,
        f: &mut fmt::Formatter<'_>,
        render_prim: &dyn Fn(&EventType) -> String,
    ) -> fmt::Result {
        // Parenthesize a child whose root binds no tighter than this node.
        fn child(
            e: &EventExpr,
            parent: Priority,
            f: &mut fmt::Formatter<'_>,
            render_prim: &dyn Fn(&EventType) -> String,
        ) -> fmt::Result {
            if e.priority() <= parent {
                write!(f, "(")?;
                e.fmt_with(f, render_prim)?;
                write!(f, ")")
            } else {
                e.fmt_with(f, render_prim)
            }
        }
        let p = self.priority();
        match self {
            EventExpr::Prim(ty) => write!(f, "{}", render_prim(ty)),
            EventExpr::Or(a, b) => {
                child(a, p, f, render_prim)?;
                write!(f, " , ")?;
                child(b, p, f, render_prim)
            }
            EventExpr::And(a, b) => {
                child(a, p, f, render_prim)?;
                write!(f, " + ")?;
                child(b, p, f, render_prim)
            }
            EventExpr::Prec(a, b) => {
                child(a, p, f, render_prim)?;
                write!(f, " < ")?;
                child(b, p, f, render_prim)
            }
            EventExpr::Not(e) => {
                // always parenthesize composites: `-` directly followed by
                // another `-`/`-=` would lex as a `--` comment.
                write!(f, "-")?;
                if matches!(e.as_ref(), EventExpr::Prim(_)) {
                    e.fmt_with(f, render_prim)
                } else {
                    write!(f, "(")?;
                    e.fmt_with(f, render_prim)?;
                    write!(f, ")")
                }
            }
            EventExpr::IOr(a, b) => {
                child(a, p, f, render_prim)?;
                write!(f, " ,= ")?;
                child(b, p, f, render_prim)
            }
            EventExpr::IAnd(a, b) => {
                child(a, p, f, render_prim)?;
                write!(f, " += ")?;
                child(b, p, f, render_prim)
            }
            EventExpr::IPrec(a, b) => {
                child(a, p, f, render_prim)?;
                write!(f, " <= ")?;
                child(b, p, f, render_prim)
            }
            EventExpr::INot(e) => {
                write!(f, "-=")?;
                if matches!(e.as_ref(), EventExpr::Prim(_)) {
                    e.fmt_with(f, render_prim)
                } else {
                    write!(f, "(")?;
                    e.fmt_with(f, render_prim)?;
                    write!(f, ")")
                }
            }
        }
    }

    /// Schema-aware rendering, e.g. `create(stock) <= modify(stock.quantity)`.
    pub fn render(&self, schema: &chimera_model::Schema) -> String {
        struct R<'a>(&'a EventExpr, &'a chimera_model::Schema);
        impl fmt::Display for R<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                let schema = self.1;
                self.0.fmt_with(f, &|ty| ty.render(schema))
            }
        }
        R(self, schema).to_string()
    }
}

impl fmt::Display for EventExpr {
    /// Schema-free rendering: primitives print as paren-free
    /// `kind.class[.attr]` codes, e.g. `create.c0` or `modify.c1.a2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use chimera_events::EventKind;
        self.fmt_with(f, &|ty| match ty.kind {
            EventKind::Modify(attr) => format!("modify.{}.{}", ty.class, attr),
            EventKind::External(ch) => format!("ext{ch}.{}", ty.class),
            k => format!("{}.{}", k.command_name(), ty.class),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::ClassId;

    fn p(n: u32) -> EventExpr {
        EventExpr::prim(EventType::external(ClassId(0), n))
    }

    #[test]
    fn fig1_table_shape() {
        assert_eq!(FIG1_OPERATORS.len(), 4);
        assert_eq!(FIG1_OPERATORS[0].name, "negation");
        assert_eq!(FIG1_OPERATORS[3].name, "disjunction");
        assert!(FIG1_OPERATORS.iter().any(|o| o.set_symbol == "<"));
        assert!(FIG1_OPERATORS.iter().any(|o| o.instance_symbol == ",="));
    }

    #[test]
    fn builders_and_size_depth() {
        let e = p(0).and(p(1)).or(p(2).not());
        assert_eq!(e.size(), 6);
        assert_eq!(e.depth(), 3);
        assert_eq!(p(0).size(), 1);
        assert_eq!(p(0).depth(), 1);
    }

    #[test]
    fn primitives_deduplicated_in_order() {
        let e = p(2).and(p(1)).or(p(2).prec(p(3)));
        let prims = e.primitives();
        assert_eq!(prims.len(), 3);
        assert_eq!(prims[0], EventType::external(ClassId(0), 2));
        assert_eq!(prims[1], EventType::external(ClassId(0), 1));
        assert_eq!(prims[2], EventType::external(ClassId(0), 3));
    }

    #[test]
    fn instance_orientation() {
        assert!(p(0).is_instance_oriented());
        assert!(p(0).iand(p(1)).is_instance_oriented());
        assert!(p(0).iand(p(1)).inot().is_instance_oriented());
        assert!(!p(0).and(p(1)).is_instance_oriented());
        // instance op over set subtree → not instance-oriented
        assert!(!p(0).and(p(1)).inot().is_instance_oriented());
    }

    #[test]
    fn validation_rejects_set_inside_instance() {
        assert!(p(0).iand(p(1)).validate().is_ok());
        assert!(p(0).iand(p(1)).and(p(2)).validate().is_ok()); // instance inside set: fine
        assert_eq!(
            p(0).and(p(1)).iand(p(2)).validate(),
            Err(CalculusError::SetInsideInstance)
        );
        assert_eq!(
            p(0).or(p(1)).inot().validate(),
            Err(CalculusError::SetInsideInstance)
        );
        assert_eq!(
            p(0).not().iprec(p(1)).validate(),
            Err(CalculusError::SetInsideInstance)
        );
        // deep nesting still caught
        assert_eq!(
            p(0).iand(p(1).and(p(2)).inot()).validate(),
            Err(CalculusError::SetInsideInstance)
        );
    }

    #[test]
    fn negation_detection() {
        assert!(!p(0).and(p(1)).contains_negation());
        assert!(p(0).not().contains_negation());
        assert!(p(0).iand(p(1).inot()).contains_negation());
    }

    #[test]
    fn vacuous_activity() {
        assert!(!p(0).vacuously_active());
        assert!(p(0).not().vacuously_active());
        assert!(!p(0).not().not().vacuously_active());
        assert!(p(0).not().and(p(1).not()).vacuously_active());
        assert!(!p(0).not().and(p(1)).vacuously_active());
        assert!(p(0).not().or(p(1)).vacuously_active());
        assert!(p(0).inot().vacuously_active());
        assert!(p(0).not().prec(p(1).not()).vacuously_active());
        assert!(!p(0).prec(p(1).not()).vacuously_active());
    }

    #[test]
    fn priorities_ordered() {
        assert!(Priority::Primitive > Priority::InstNegation);
        assert!(Priority::InstNegation > Priority::InstConjunction);
        assert!(Priority::InstConjunction > Priority::InstDisjunction);
        assert!(Priority::InstDisjunction > Priority::SetNegation);
        assert!(Priority::SetNegation > Priority::SetConjunction);
        assert!(Priority::SetConjunction > Priority::SetDisjunction);
    }

    #[test]
    fn display_parenthesization() {
        // conjunction + precedence share priority → parenthesized when nested
        let e = p(0).and(p(1)).prec(p(2));
        let s = e.to_string();
        assert!(s.contains('('), "nested same-priority gets parens: {s}");
        // disjunction of conjunctions needs no parens around conjunctions
        let e2 = p(0).and(p(1)).or(p(2).and(p(3)));
        let s2 = e2.to_string();
        assert_eq!(s2.matches('(').count(), 0, "{s2}");
        // negation of disjunction parenthesizes
        let e3 = p(0).or(p(1)).not();
        assert!(e3.to_string().starts_with("-("));
    }
}
