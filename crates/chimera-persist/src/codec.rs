//! Text encoding of values and objects for WAL/snapshot lines.
//!
//! One object per line. Values are type-tagged tokens; floats are encoded
//! as IEEE-754 bit patterns in hex so the round trip is exact; strings are
//! percent-escaped so a token never contains whitespace, commas or
//! newlines. The whole format stays `grep`-able, which is worth more for
//! a reproduction repository than a binary layout.

use crate::{PersistError, Result};
use chimera_model::{ClassId, Object, Oid, TotalF64, Value};
use std::fmt::Write as _;

/// Encode one value as a single token (no whitespace/comma/newline).
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "_".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(x) => format!("f:{:016x}", x.to_bits()),
        Value::Str(s) => format!("s:{}", escape(s)),
        Value::Bool(b) => format!("b:{}", u8::from(*b)),
        Value::Time(t) => format!("t:{t}"),
        Value::Ref(oid) => format!("r:{}", oid.0),
    }
}

/// Decode one value token.
pub fn decode_value(tok: &str) -> Result<Value> {
    if tok == "_" {
        return Ok(Value::Null);
    }
    let (tag, body) = tok
        .split_once(':')
        .ok_or_else(|| PersistError::Corrupt(format!("value token `{tok}`")))?;
    let bad = || PersistError::Corrupt(format!("value token `{tok}`"));
    match tag {
        "i" => body.parse().map(Value::Int).map_err(|_| bad()),
        "f" => u64::from_str_radix(body, 16)
            .map(|bits| Value::Float(TotalF64::from_bits(bits)))
            .map_err(|_| bad()),
        "s" => unescape(body).map(Value::Str),
        "b" => match body {
            "0" => Ok(Value::Bool(false)),
            "1" => Ok(Value::Bool(true)),
            _ => Err(bad()),
        },
        "t" => body.parse().map(Value::Time).map_err(|_| bad()),
        "r" => body.parse().map(|n| Value::Ref(Oid(n))).map_err(|_| bad()),
        _ => Err(bad()),
    }
}

/// Percent-escape everything a token must not contain (all ASCII, so the
/// two-hex-digit escape is unambiguous; other characters pass through as
/// UTF-8).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' | ',' | ' ' | '\t' | '\n' | '\r' => {
                let _ = write!(out, "%{:02x}", c as u32);
            }
            _ => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str) -> Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| PersistError::Corrupt(format!("escape in `{s}`")))?;
            let code = u8::from_str_radix(
                std::str::from_utf8(hex)
                    .map_err(|_| PersistError::Corrupt(format!("escape in `{s}`")))?,
                16,
            )
            .map_err(|_| PersistError::Corrupt(format!("escape in `{s}`")))?;
            out.push(code);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| PersistError::Corrupt(format!("utf8 in `{s}`")))
}

/// Encode an object's payload (everything after the record tag):
/// `<oid> <class> <v0>,<v1>,…` (a lone `-` for zero attributes).
pub fn encode_object(obj: &Object) -> String {
    let attrs = if obj.attrs.is_empty() {
        "-".to_string()
    } else {
        obj.attrs
            .iter()
            .map(encode_value)
            .collect::<Vec<_>>()
            .join(",")
    };
    format!("{} {} {}", obj.oid.0, obj.class.0, attrs)
}

/// Decode an object payload produced by [`encode_object`].
pub fn decode_object(payload: &str) -> Result<Object> {
    let mut parts = payload.split(' ');
    let bad = || PersistError::Corrupt(format!("object payload `{payload}`"));
    let oid: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let class: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let attrs_tok = parts.next().ok_or_else(bad)?;
    if parts.next().is_some() {
        return Err(bad());
    }
    let attrs = if attrs_tok == "-" {
        Vec::new()
    } else {
        attrs_tok
            .split(',')
            .map(decode_value)
            .collect::<Result<Vec<_>>>()?
    };
    Ok(Object {
        oid: Oid(oid),
        class: ClassId(class),
        attrs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: Value) {
        let tok = encode_value(&v);
        assert!(
            !tok.contains(' ') && !tok.contains(',') && !tok.contains('\n'),
            "token must be atomic: `{tok}`"
        );
        assert_eq!(decode_value(&tok).unwrap(), v);
    }

    #[test]
    fn value_round_trips() {
        round_trip(Value::Null);
        round_trip(Value::Int(-42));
        round_trip(Value::Int(i64::MAX));
        round_trip(Value::Bool(true));
        round_trip(Value::Bool(false));
        round_trip(Value::Time(17));
        round_trip(Value::Ref(Oid(3)));
        round_trip(Value::Str(String::new()));
        round_trip(Value::Str("plain".into()));
        round_trip(Value::Str("with space, comma\nand % sign".into()));
        round_trip(Value::Str("unicode: ü β 事".into()));
    }

    #[test]
    fn float_round_trips_exactly() {
        for x in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::INFINITY, -1.0e300] {
            let Value::Float(y) = decode_value(&encode_value(&Value::float(x))).unwrap() else {
                panic!("float expected");
            };
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // NaN keeps its bit pattern too
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let Value::Float(y) = decode_value(&encode_value(&Value::float(nan))).unwrap() else {
            panic!("float expected");
        };
        assert_eq!(nan.to_bits(), y.to_bits());
    }

    #[test]
    fn object_round_trips() {
        let obj = Object {
            oid: Oid(7),
            class: ClassId(2),
            attrs: vec![Value::Int(1), Value::Null, Value::Str("x y".into())],
        };
        assert_eq!(decode_object(&encode_object(&obj)).unwrap(), obj);
        let empty = Object {
            oid: Oid(1),
            class: ClassId(0),
            attrs: vec![],
        };
        assert_eq!(decode_object(&encode_object(&empty)).unwrap(), empty);
    }

    #[test]
    fn malformed_tokens_are_rejected() {
        for tok in ["x:1", "i:", "i:abc", "f:zz", "b:2", "nocolon", "s:%g1", "s:%4"] {
            assert!(decode_value(tok).is_err(), "token `{tok}` must fail");
        }
        for payload in ["", "1", "1 2", "1 2 i:3 extra", "x 2 -"] {
            assert!(decode_object(payload).is_err(), "payload `{payload}` must fail");
        }
    }
}
