//! PERF-2 — the §5.1 static optimization, as an ablation: Trigger Support
//! with and without the `V(E)` relevance filter, swept over rule count and
//! the fraction of arrivals that are relevant to the rules. The expected
//! shape: the win grows with the rule count and shrinks as more arrivals
//! become relevant (at 100% relevance the filter is pure overhead, which
//! must be small).

use chimera_bench::{et, p};
use chimera_calculus::EventExpr;
use chimera_events::{EventBase, Timestamp};
use chimera_model::Oid;
use chimera_rules::{RuleTable, TriggerDef, TriggerSupport};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// `nrules` rules over "rule-only" event types (offset 1000+), so stream
/// relevance is controlled purely by the generated arrivals.
fn make_table(nrules: usize) -> RuleTable {
    let mut rt = RuleTable::new();
    for i in 0..nrules {
        let a = 1000 + (i as u32 % 16);
        let b = 1000 + ((i as u32 + 7) % 16);
        // conjunction + precedence mix, no vacuous rules
        let expr: EventExpr = if i % 2 == 0 {
            p(a).and(p(b))
        } else {
            p(a).prec(p(b))
        };
        rt.define(TriggerDef::new(format!("r{i}"), expr), Timestamp::ZERO)
            .unwrap();
    }
    rt
}

/// A stream of `blocks` blocks × `per_block` arrivals; `relevant_pct` of
/// arrivals hit the rules' type range.
fn stream(blocks: usize, per_block: usize, relevant_pct: u32) -> Vec<Vec<(u32, u64)>> {
    let mut out = Vec::with_capacity(blocks);
    let mut k = 0u32;
    for _ in 0..blocks {
        let mut block = Vec::with_capacity(per_block);
        for _ in 0..per_block {
            k = k.wrapping_mul(1664525).wrapping_add(1013904223);
            let roll = k % 100;
            let ty = if roll < relevant_pct {
                1000 + (k / 100) % 16
            } else {
                (k / 100) % 16 // types no rule listens to
            };
            block.push((ty, 1 + (k % 32) as u64));
        }
        out.push(block);
    }
    out
}

fn run(support: &mut TriggerSupport, rt: &mut RuleTable, blocks: &[Vec<(u32, u64)>]) -> u64 {
    let mut eb = EventBase::new();
    let mut fired = 0u64;
    for block in blocks {
        for &(ty, oid) in block {
            eb.append(et(ty), Oid(oid));
        }
        let now = eb.now();
        let newly = support.check(rt, &eb, now);
        for name in newly {
            fired += 1;
            rt.mark_considered(&name, now).unwrap();
        }
    }
    fired
}

fn bench_static_opt(c: &mut Criterion) {
    const BLOCKS: usize = 50;
    const PER_BLOCK: usize = 4;
    for &nrules in &[10usize, 100, 1_000] {
        let mut g = c.benchmark_group(format!("static_opt_rules_{nrules}"));
        g.throughput(Throughput::Elements(BLOCKS as u64));
        for &pct in &[1u32, 10, 100] {
            let blocks = stream(BLOCKS, PER_BLOCK, pct);
            g.bench_with_input(
                BenchmarkId::new("optimized", format!("{pct}pct")),
                &blocks,
                |b, blocks| {
                    b.iter(|| {
                        let mut rt = make_table(nrules);
                        let mut s = TriggerSupport::optimized();
                        black_box(run(&mut s, &mut rt, blocks))
                    });
                },
            );
            g.bench_with_input(
                BenchmarkId::new("unoptimized", format!("{pct}pct")),
                &blocks,
                |b, blocks| {
                    b.iter(|| {
                        let mut rt = make_table(nrules);
                        let mut s = TriggerSupport::unoptimized();
                        black_box(run(&mut s, &mut rt, blocks))
                    });
                },
            );
        }
        g.finish();
    }

    // report the skip ratio once (goes into EXPERIMENTS.md / ROADMAP.md).
    // `probes` counts actual plan evaluations; `memo` counts probes
    // answered by the per-epoch cross-rule memo (rules sharing an
    // expression and a window re-use each other's witnesses).
    for &pct in &[1u32, 10, 100] {
        let blocks = stream(BLOCKS, PER_BLOCK, pct);
        let mut rt = make_table(100);
        let mut s = TriggerSupport::optimized();
        run(&mut s, &mut rt, &blocks);
        let st = s.stats;
        println!(
            "skip ratio @ {pct}% relevant, 100 rules: {:.1}% ({} skipped / {} checked, {} probes + {} memo hits)",
            100.0 * st.skipped_by_filter as f64 / st.rules_checked as f64,
            st.skipped_by_filter,
            st.rules_checked,
            st.ts_probes,
            st.probe_memo_hits
        );
    }
}

criterion_group!(benches, bench_static_opt);
criterion_main!(benches);
