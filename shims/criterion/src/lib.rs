//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of the Criterion API the `chimera-bench` targets use. Like the
//! real crate it has two modes, chosen from the CLI arguments cargo passes
//! to a `harness = false` target:
//!
//! * **measure mode** (`cargo bench` passes `--bench`): each benchmark is
//!   warmed up briefly, then timed over an adaptive iteration count and a
//!   mean ns/iter line is printed. No statistics, plots, or outlier
//!   analysis — just honest wall-clock means, enough for the bench-driven
//!   perf work ROADMAP.md plans.
//! * **test mode** (anything else, e.g. `cargo test` running the bench
//!   binary): every benchmark closure runs exactly once so `cargo test`
//!   stays fast while still executing each bench body.
//!
//! Two environment knobs (shim extensions, both used by CI):
//!
//! * `CHIMERA_BENCH_SINGLE_SHOT` — in measure mode, time exactly one
//!   iteration per benchmark instead of the adaptive count: a smoke sweep
//!   that proves every bench target still runs, in seconds not minutes.
//! * `CHIMERA_BENCH_JSON` — additionally write every measured mean to a
//!   machine-readable `BENCH.json` (bench name → mean ns/iter). Set it to
//!   `1` to place the file under the `target/` directory the bench binary
//!   runs from, or to an explicit path. Entries merge across bench
//!   targets, so one `cargo bench` sweep yields one file tracking the
//!   perf trajectory across PRs.

use std::fmt::Display;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How a batched iteration sizes its batches. Accepted for API
/// compatibility; the shim always runs one setup per routine call.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `new("op", param)` or `from_parameter(param)`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    measure: bool,
    /// (total elapsed, iterations) of the measured pass, if any.
    result: Option<(Duration, u64)>,
}

/// Is the single-iteration smoke mode requested?
fn single_shot() -> bool {
    std::env::var_os("CHIMERA_BENCH_SINGLE_SHOT").is_some_and(|v| !v.is_empty() && v != "0")
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.measure {
            black_box(routine());
            return;
        }
        // Warm up and estimate cost with a short pilot run.
        let pilot_start = Instant::now();
        black_box(routine());
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        if single_shot() {
            self.result = Some((pilot, 1));
            return;
        }
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / pilot.as_nanos()).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.result = Some((start.elapsed(), iters));
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if !self.measure {
            let input = setup();
            black_box(routine(input));
            return;
        }
        let input = setup();
        let pilot_start = Instant::now();
        black_box(routine(input));
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        if single_shot() {
            self.result = Some((pilot, 1));
            return;
        }
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / pilot.as_nanos()).clamp(1, 100_000) as u64;
        let mut measured = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.result = Some((measured, iters));
    }
}

/// Resolve the `CHIMERA_BENCH_JSON` destination, if emission is on.
fn bench_json_path() -> Option<PathBuf> {
    let v = std::env::var_os("CHIMERA_BENCH_JSON")?;
    if v.is_empty() || v == "0" {
        return None;
    }
    if v != "1" {
        return Some(PathBuf::from(v));
    }
    // `1`: place BENCH.json in the target dir the bench binary runs from
    // (bench executables live under target/<profile>/deps/).
    if let Ok(exe) = std::env::current_exe() {
        for anc in exe.ancestors() {
            if anc.file_name().is_some_and(|n| n == "target") {
                return Some(anc.join("BENCH.json"));
            }
        }
    }
    Some(PathBuf::from("target/BENCH.json"))
}

/// Parse the shim's own single-object JSON (`{"name": ns, ...}`) back
/// into ordered entries. Tolerates a missing/garbled file by starting
/// fresh — the file is a report, not a source of truth.
fn parse_bench_json(text: &str) -> Vec<(String, f64)> {
    let mut out: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((name, value)) = rest.split_once("\": ") else {
            continue;
        };
        if let Ok(v) = value.trim().parse::<f64>() {
            out.push((name.to_string(), v));
        }
    }
    out
}

fn render_bench_json(entries: &[(String, f64)]) -> String {
    let mut s = String::from("{\n");
    for (i, (name, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!("\"{name}\": {v:.1}{sep}\n"));
    }
    s.push_str("}\n");
    s
}

/// Merge one measured mean into `BENCH.json`. The file is read and
/// parsed once per bench process (targets run sequentially under
/// `cargo bench`, so each process starts from its predecessors' merged
/// entries); subsequent reports update the in-memory copy and rewrite.
fn record_bench_json(name: &str, per_iter_ns: f64) {
    static ENTRIES: std::sync::Mutex<Option<Vec<(String, f64)>>> = std::sync::Mutex::new(None);
    let Some(path) = bench_json_path() else {
        return;
    };
    let mut guard = ENTRIES.lock().expect("bench json state poisoned");
    let entries = guard.get_or_insert_with(|| {
        std::fs::read_to_string(&path)
            .map(|t| parse_bench_json(&t))
            .unwrap_or_default()
    });
    match entries.iter_mut().find(|(n, _)| n == name) {
        Some(e) => e.1 = per_iter_ns,
        None => entries.push((name.to_string(), per_iter_ns)),
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&path, render_bench_json(entries)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, result: Option<(Duration, u64)>) {
    let Some((elapsed, iters)) = result else {
        return;
    };
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    record_bench_json(&format!("{group}/{id}"), per_iter);
    let mut line = format!("{group}/{id}: {per_iter:.1} ns/iter ({iters} iters)");
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            line.push_str(&format!(", {rate:.0} elem/s"));
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / (per_iter / 1e9);
            line.push_str(&format!(", {rate:.0} B/s"));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes its own iteration counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            measure: self.criterion.measure,
            result: None,
        };
        f(&mut b);
        report(&self.name, &id.id, self.throughput, b.result);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            measure: self.criterion.measure,
            result: None,
        };
        f(&mut b, input);
        report(&self.name, &id.id, self.throughput, b.result);
        self
    }

    pub fn finish(self) {}
}

/// The top-level harness handle passed to every bench function.
pub struct Criterion {
    measure: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench invokes harness = false targets with `--bench`;
        // anything else (cargo test) gets the fast single-shot mode.
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { measure }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measure: self.measure,
            result: None,
        };
        f(&mut b);
        report("bench", id, None, b.result);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_round_trips_and_merges() {
        let entries = vec![
            ("group/op/10".to_string(), 123.4),
            ("other/op".to_string(), 0.5),
        ];
        let text = render_bench_json(&entries);
        assert!(text.starts_with("{\n") && text.ends_with("}\n"));
        assert_eq!(parse_bench_json(&text), entries);
        // garbage tolerated, valid lines kept
        let noisy = format!("nonsense\n{text}\"trailing: junk\n");
        assert_eq!(parse_bench_json(&noisy), entries);
        assert!(parse_bench_json("").is_empty());
    }
}
