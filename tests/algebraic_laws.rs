//! Property suite for §4.2: the algebraic laws at their declared
//! strengths, the logical/algebraic evaluator agreement, and agreement of
//! the naive baseline with the indexed evaluator — all over random
//! histories and random well-formed expressions.

use chimera::baselines::naive_ts;
use chimera::calculus::rewrite::{Strength, INSTANCE_LAWS};
use chimera::calculus::{
    nnf, ots_algebraic, ots_logical, simplify, ts_algebraic, ts_logical, LAWS,
};
use chimera::events::{EventBase, EventOccurrence, Timestamp, Window};
use chimera::model::Oid;
use chimera::workload::{ExprGenConfig, RandomExprGen, StreamConfig, StreamGen};
use proptest::prelude::*;

fn history(seed: u64, len: usize) -> EventBase {
    let mut gen = StreamGen::new(StreamConfig {
        event_types: 6,
        objects: 5,
        seed,
        skew: 0.4,
    });
    gen.build(len)
}

fn exprs(seed: u64, n: usize) -> Vec<chimera::calculus::EventExpr> {
    let mut g = RandomExprGen::new(ExprGenConfig {
        event_types: 6,
        max_depth: 4,
        instance_prob: 0.3,
        negation_prob: 0.3,
        seed,
    });
    g.batch(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The two §4.2 evaluator styles agree everywhere.
    #[test]
    fn logical_equals_algebraic(seed in any::<u64>(), len in 1usize..40) {
        let eb = history(seed, len);
        let now = eb.now();
        for e in exprs(seed ^ 0x9e37, 6) {
            for after in [0, len as u64 / 2] {
                let w = Window::new(Timestamp(after), now);
                for t in 1..=now.raw() {
                    let t = Timestamp(t);
                    prop_assert_eq!(
                        ts_logical(&e, &eb, w, t),
                        ts_algebraic(&e, &eb, w, t),
                        "{} at {}", e, t
                    );
                }
            }
        }
    }

    /// The naive linear-scan baseline computes the same function.
    #[test]
    fn naive_equals_indexed(seed in any::<u64>(), len in 1usize..30) {
        let eb = history(seed, len);
        let events: Vec<EventOccurrence> = eb.iter().copied().collect();
        let now = eb.now();
        let w = Window::from_origin(now);
        for e in exprs(seed ^ 0x51f1, 5) {
            for t in 1..=now.raw() {
                let t = Timestamp(t);
                prop_assert_eq!(
                    naive_ts(&e, &events, w, t),
                    ts_logical(&e, &eb, w, t),
                    "{} at {}", e, t
                );
            }
        }
    }

    /// Every §4.2 set-oriented law holds at its declared strength, with
    /// random (possibly composite, possibly negated) arguments.
    #[test]
    fn set_laws_hold(seed in any::<u64>(), len in 1usize..40) {
        let eb = history(seed, len);
        let now = eb.now();
        let w = Window::from_origin(now);
        let args = exprs(seed ^ 0xabcd, 3);
        let mut nf_gen = RandomExprGen::new(ExprGenConfig {
            event_types: 6,
            max_depth: 3,
            seed: seed ^ 0xef01,
            ..Default::default()
        });
        let nf_args: Vec<_> = (0..3).map(|_| nf_gen.generate_regular()).collect();
        for law in LAWS {
            // negation-restricted laws get negation-free arguments
            let args = if law.requires_negation_free { &nf_args } else { &args };
            let (lhs, rhs) = (law.build)(&args[..law.arity]);
            for t in 1..=now.raw() {
                let t = Timestamp(t);
                let lv = ts_logical(&lhs, &eb, w, t);
                let rv = ts_logical(&rhs, &eb, w, t);
                match law.strength {
                    Strength::Strong => prop_assert_eq!(lv, rv, "{} at {}", law.name, t),
                    Strength::Weak => {
                        prop_assert_eq!(lv.is_active(), rv.is_active(), "{} at {}", law.name, t);
                        if lv.is_active() {
                            prop_assert_eq!(lv, rv, "{} stamp at {}", law.name, t);
                        }
                    }
                }
            }
        }
    }

    /// Instance-level laws hold per object (`ots` identities).
    #[test]
    fn instance_laws_hold(seed in any::<u64>(), len in 1usize..40) {
        let eb = history(seed, len);
        let now = eb.now();
        let w = Window::from_origin(now);
        let mut g = RandomExprGen::new(ExprGenConfig {
            seed: seed ^ 0x7777,
            max_depth: 3,
            negation_prob: 0.25,
            ..Default::default()
        });
        let args: Vec<_> = (0..3).map(|_| g.generate_instance()).collect();
        for law in INSTANCE_LAWS {
            let (lhs, rhs) = (law.build)(&args[..law.arity]);
            for oid in 1..=5u64 {
                for t in 1..=now.raw() {
                    let t = Timestamp(t);
                    let lv = ots_logical(&lhs, &eb, w, t, Oid(oid));
                    let rv = ots_logical(&rhs, &eb, w, t, Oid(oid));
                    match law.strength {
                        Strength::Strong => prop_assert_eq!(lv, rv, "{} o{} t{}", law.name, oid, t),
                        Strength::Weak => {
                            prop_assert_eq!(lv.is_active(), rv.is_active(), "{}", law.name);
                            if lv.is_active() {
                                prop_assert_eq!(lv, rv, "{}", law.name);
                            }
                        }
                    }
                    // and the two instance evaluators agree
                    prop_assert_eq!(lv, ots_algebraic(&lhs, &eb, w, t, Oid(oid)));
                }
            }
        }
    }

    /// `nnf` and `simplify` preserve the exact ts function.
    #[test]
    fn rewrites_preserve_ts(seed in any::<u64>(), len in 1usize..40) {
        let eb = history(seed, len);
        let now = eb.now();
        let w = Window::from_origin(now);
        for e in exprs(seed ^ 0x2222, 6) {
            let n = nnf(&e);
            let s = simplify(&e);
            for t in 1..=now.raw() {
                let t = Timestamp(t);
                let orig = ts_logical(&e, &eb, w, t);
                prop_assert_eq!(orig, ts_logical(&n, &eb, w, t), "nnf {} vs {}", e, n);
                prop_assert_eq!(orig, ts_logical(&s, &eb, w, t), "simplify {} vs {}", e, s);
            }
        }
    }
}

/// Deterministic exhaustive check on tiny histories: every law, every
/// history of 4 events over 3 types on 2 objects (sampled subset keeps the
/// runtime reasonable while covering all orderings of 3 distinct types).
#[test]
fn set_laws_small_model() {
    use chimera::calculus::EventExpr;
    use chimera::events::EventType;
    use chimera::model::ClassId;
    let p = |n: u32| EventExpr::prim(EventType::external(ClassId(0), n));
    let args = [p(0), p(1), p(2)];
    // all 3^4 type sequences
    for code in 0..81u32 {
        let mut eb = EventBase::new();
        let mut c = code;
        for i in 0..4 {
            let ty = c % 3;
            c /= 3;
            eb.append_at(
                EventType::external(ClassId(0), ty),
                Oid(1 + (i % 2) as u64),
                Timestamp(i as u64 + 1),
            );
        }
        let w = Window::from_origin(Timestamp(4));
        for law in LAWS {
            // args here are plain primitives: negation-free, all laws apply
            let (lhs, rhs) = (law.build)(&args[..law.arity]);
            for t in 1..=4u64 {
                let t = Timestamp(t);
                let lv = ts_logical(&lhs, &eb, w, t);
                let rv = ts_logical(&rhs, &eb, w, t);
                match law.strength {
                    Strength::Strong => assert_eq!(lv, rv, "{} code={code} t={t}", law.name),
                    Strength::Weak => {
                        assert_eq!(lv.is_active(), rv.is_active(), "{} code={code}", law.name);
                        if lv.is_active() {
                            assert_eq!(lv, rv, "{} code={code}", law.name);
                        }
                    }
                }
            }
        }
    }
}
