//! FIG5 + PERF-6 — `ts` evaluation: regenerates the Fig. 5 De Morgan
//! trace series (printed once), then measures (a) the cost of evaluating
//! the two equivalent De Morgan forms and (b) the logical-style vs
//! algebraic-style evaluator (§4.2 defines both).

use chimera_bench::{et, history, p};
use chimera_calculus::{ts_algebraic, ts_logical, EventExpr};
use chimera_events::{EventBase, Timestamp, Window};
use chimera_model::Oid;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn print_fig5_once() {
    let mut eb = EventBase::new();
    for (n, t) in [(2u32, 1u64), (0, 2), (2, 3), (1, 4), (0, 5), (1, 6), (2, 7)] {
        eb.append_at(et(n), Oid(1 + t % 3), Timestamp(t));
    }
    let w = Window::from_origin(Timestamp(7));
    let rows: Vec<(&str, EventExpr)> = vec![
        ("ts(A)", p(0)),
        ("ts(B)", p(1)),
        ("ts(-A,-B)", p(0).not().or(p(1).not())),
        ("ts(-(-A,-B))", p(0).not().or(p(1).not()).not()),
        ("ts(A+B)", p(0).and(p(1))),
    ];
    println!("\n=== Fig. 5 reconstruction (history C A C B A B C) ===");
    for (label, e) in rows {
        print!("{label:<16}");
        for t in 1..=7 {
            print!("{:>5}", ts_logical(&e, &eb, w, Timestamp(t)).raw());
        }
        println!();
    }
    println!();
}

fn bench_de_morgan_forms(c: &mut Criterion) {
    print_fig5_once();
    let mut g = c.benchmark_group("fig5_de_morgan");
    for &n in &[1_000usize, 10_000] {
        let eb = history(11, n, 4, 32);
        let w = Window::from_origin(eb.now());
        let now = eb.now();
        let lhs = p(0).not().or(p(1).not()).not();
        let rhs = p(0).and(p(1));
        g.bench_with_input(BenchmarkId::new("negated_form", n), &n, |b, _| {
            b.iter(|| black_box(ts_logical(&lhs, &eb, w, now)));
        });
        g.bench_with_input(BenchmarkId::new("conjunction_form", n), &n, |b, _| {
            b.iter(|| black_box(ts_logical(&rhs, &eb, w, now)));
        });
    }
    g.finish();
}

fn bench_evaluator_styles(c: &mut Criterion) {
    let mut g = c.benchmark_group("evaluator_style");
    let eb = history(13, 10_000, 6, 32);
    let w = Window::from_origin(eb.now());
    let now = eb.now();
    for depth in [2usize, 4, 6] {
        // balanced alternation of and/or/prec with a negation sprinkle
        let mut e = p(0);
        for i in 1..(1 << (depth - 1)) as u32 {
            e = match i % 4 {
                0 => e.or(p(i % 6)),
                1 => e.and(p(i % 6)),
                2 => e.prec(p(i % 6)),
                _ => e.and(p(i % 6).not()),
            };
        }
        g.bench_with_input(BenchmarkId::new("logical", depth), &e, |b, e| {
            b.iter(|| black_box(ts_logical(e, &eb, w, now)));
        });
        g.bench_with_input(BenchmarkId::new("algebraic", depth), &e, |b, e| {
            b.iter(|| black_box(ts_algebraic(e, &eb, w, now)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_de_morgan_forms, bench_evaluator_styles);
criterion_main!(benches);
