//! # chimera-model
//!
//! The object-oriented data model substrate of Chimera, the active
//! object-oriented database of the IDEA Esprit project that *Composite
//! Events in Chimera* (Meo, Psaila, Ceri — EDBT 1996) extends.
//!
//! The paper assumes an OO store with classes, single inheritance, typed
//! attributes and the data-manipulation operations whose executions become
//! *event occurrences*: `create`, `delete`, `modify(attr)`, `generalize`,
//! `specialize` and `select`. This crate provides exactly that substrate:
//!
//! * [`Value`] / [`AttrType`] — the attribute value system;
//! * [`Schema`], [`ClassDef`], [`AttrDef`] — class definitions with single
//!   inheritance and attribute resolution along the superclass chain;
//! * [`Object`] and [`ObjectStore`] — the instance store with per-class
//!   extents and a transactional overlay (undo log, commit/rollback);
//! * [`Mutation`] — the store's report of what happened, which the
//!   execution engine turns into event occurrences for the event base.
//!
//! The store is deterministic and single-threaded: Chimera transactions are
//! sequences of non-interruptible blocks, so no internal locking is needed.

pub mod error;
pub mod ids;
pub mod object;
pub mod schema;
pub mod store;
pub mod value;

pub use error::ModelError;
pub use ids::{AttrId, ClassId, Oid};
pub use object::Object;
pub use schema::{AttrDef, ClassDef, Schema, SchemaBuilder};
pub use store::{Mutation, MutationKind, ObjectStore, TxnStatus};
pub use value::{AttrType, TotalF64, Value};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
