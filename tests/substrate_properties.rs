//! Property suites for the substrate crates:
//!
//! * the transactional object store — rollback restores the committed
//!   state exactly, commit keeps it, under random operation sequences
//!   including class migrations;
//! * the Event Base — every indexed query agrees with a linear scan of
//!   the log, for random windows.

use chimera::events::{EventBase, EventType, Timestamp, Window};
use chimera::model::{
    AttrDef, AttrType, ClassId, ObjectStore, Oid, Schema, SchemaBuilder, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "base",
        None,
        vec![
            AttrDef::new("x", AttrType::Integer),
            AttrDef::with_default("y", AttrType::Integer, Value::Int(7)),
        ],
    )
    .unwrap();
    b.class("sub", Some("base"), vec![AttrDef::new("z", AttrType::Float)])
        .unwrap();
    b.build()
}

/// Snapshot of observable store state.
fn snapshot(store: &ObjectStore, schema: &Schema) -> Vec<(Oid, ClassId, Vec<Value>)> {
    let base = schema.class_by_name("base").unwrap();
    store
        .extent_deep(schema, base)
        .into_iter()
        .map(|oid| {
            let o = store.get(oid).unwrap();
            (oid, o.class, o.attrs.clone())
        })
        .collect()
}

/// Apply `n` random valid operations inside the active transaction.
fn random_ops(store: &mut ObjectStore, schema: &Schema, rng: &mut StdRng, n: usize) {
    let base = schema.class_by_name("base").unwrap();
    let sub = schema.class_by_name("sub").unwrap();
    let x = schema.attr_by_name(base, "x").unwrap();
    let mut live: Vec<Oid> = store.extent_deep(schema, base);
    for _ in 0..n {
        match rng.random_range(0..6u32) {
            0 | 1 => {
                let m = store
                    .create(schema, base, &[(x, Value::Int(rng.random_range(0..100)))])
                    .unwrap();
                live.push(m.oid);
            }
            2 if !live.is_empty() => {
                let oid = live[rng.random_range(0..live.len())];
                store
                    .modify(schema, oid, x, Value::Int(rng.random_range(0..100)))
                    .unwrap();
            }
            3 if !live.is_empty() => {
                let i = rng.random_range(0..live.len());
                let oid = live.swap_remove(i);
                store.delete(oid).unwrap();
            }
            4 if !live.is_empty() => {
                let oid = live[rng.random_range(0..live.len())];
                let class = store.get(oid).unwrap().class;
                if class == base {
                    store.specialize(schema, oid, sub).unwrap();
                }
            }
            5 if !live.is_empty() => {
                let oid = live[rng.random_range(0..live.len())];
                let class = store.get(oid).unwrap().class;
                if class == sub {
                    store.generalize(schema, oid, base).unwrap();
                }
            }
            _ => {
                let m = store.create(schema, base, &[]).unwrap();
                live.push(m.oid);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// rollback restores exactly the pre-transaction snapshot.
    #[test]
    fn store_rollback_restores_snapshot(seed in any::<u64>(), n1 in 0usize..20, n2 in 1usize..20) {
        let schema = schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ObjectStore::new();
        // committed prefix
        store.begin().unwrap();
        random_ops(&mut store, &schema, &mut rng, n1);
        store.commit().unwrap();
        let committed = snapshot(&store, &schema);
        // aborted transaction
        store.begin().unwrap();
        random_ops(&mut store, &schema, &mut rng, n2);
        store.rollback().unwrap();
        prop_assert_eq!(snapshot(&store, &schema), committed);
    }

    /// commit preserves exactly the post-operations snapshot.
    #[test]
    fn store_commit_keeps_changes(seed in any::<u64>(), n in 1usize..25) {
        let schema = schema();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ObjectStore::new();
        store.begin().unwrap();
        random_ops(&mut store, &schema, &mut rng, n);
        let before_commit = snapshot(&store, &schema);
        store.commit().unwrap();
        prop_assert_eq!(snapshot(&store, &schema), before_commit);
    }

    /// every indexed EB query equals a linear scan over the log.
    #[test]
    fn eb_indexes_agree_with_scan(
        seed in any::<u64>(),
        len in 0usize..60,
        after in 0u64..30,
        upto in 0u64..70,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut eb = EventBase::new();
        for _ in 0..len {
            let ty = EventType::external(ClassId(0), rng.random_range(0..5u32));
            eb.append(ty, Oid(rng.random_range(1..6u64)));
        }
        let w = Window::new(Timestamp(after), Timestamp(upto));
        let log: Vec<_> = eb.iter().copied().collect();
        let in_w = |e: &&chimera::events::EventOccurrence| w.contains(e.ts);

        // slice / any / count
        let scan: Vec<_> = log.iter().filter(in_w).copied().collect();
        prop_assert_eq!(eb.slice(w).to_vec(), scan.clone());
        prop_assert_eq!(eb.any_in(w), !scan.is_empty());
        prop_assert_eq!(eb.count_in(w), scan.len());

        for tyn in 0..5u32 {
            let ty = EventType::external(ClassId(0), tyn);
            // last / first of type
            let of_ty: Vec<_> = scan.iter().filter(|e| e.ty == ty).collect();
            prop_assert_eq!(eb.last_of_type_in(ty, w), of_ty.last().map(|e| e.ts));
            prop_assert_eq!(eb.first_of_type_in(ty, w), of_ty.first().map(|e| e.ts));
            prop_assert_eq!(
                eb.occurrences_of_type_in(ty, w).count(),
                of_ty.len()
            );
            // per-object
            for oid in 1..6u64 {
                let oid = Oid(oid);
                let of_obj: Vec<_> = of_ty.iter().filter(|e| e.oid == oid).collect();
                prop_assert_eq!(
                    eb.last_of_type_obj_in(ty, oid, w),
                    of_obj.last().map(|e| e.ts)
                );
            }
        }

        // object enumeration
        let mut objs: Vec<Oid> = scan.iter().map(|e| e.oid).collect();
        objs.sort();
        objs.dedup();
        prop_assert_eq!(eb.objects_in(w).to_vec(), objs);
    }
}

/// OIDs are never reused across committed transactions, even after aborts.
#[test]
fn oids_monotonic_across_transactions() {
    let schema = schema();
    let base = schema.class_by_name("base").unwrap();
    let mut store = ObjectStore::new();
    let mut last = Oid(0);
    for round in 0..10 {
        store.begin().unwrap();
        let m = store.create(&schema, base, &[]).unwrap();
        assert!(m.oid > last, "round {round}");
        if round % 3 == 0 {
            store.rollback().unwrap();
        } else {
            store.commit().unwrap();
            last = m.oid;
        }
    }
}
