//! Related-work operators, derived or refuted.
//!
//! §1.1 of the paper surveys the event languages of Ode, HiPAC, Snoop,
//! Samos and Reflex. The minimal Chimera calculus expresses several of
//! their operators directly; this module provides them as *compilation
//! helpers* (so downstream rules can use the familiar vocabulary while
//! staying inside the calculus and keeping the §5.1 optimizer applicable)
//! and implements the one genuinely inexpressible operator as a runtime
//! extension with the expressiveness boundary demonstrated in tests:
//!
//! | related work | operator | here |
//! |--------------|----------|------|
//! | HiPAC        | sequence | [`seq`] = `<` |
//! | HiPAC/Reflex | n-ary disjunction / conjunction | [`any_of`] / [`all_of`] |
//! | Samos        | `*E` (first occurrence, ignore repeats) | [`star`] = identity, by level semantics |
//! | Snoop        | `A(E; E1, E2)` aperiodic | [`aperiodic`], the windowed level analogue |
//! | Samos        | `Times(n, E)` | **not expressible** — [`TimesDetector`] |
//!
//! The `Times` refutation is mechanical: the calculus is *level-based*
//! (`ts` carries activity + most-recent stamp, never a count), so no
//! expression over a single primitive can be inactive after one
//! occurrence yet active after two. `times_is_inexpressible` enumerates
//! every expression up to a size bound and checks this on concrete
//! histories.

use chimera_calculus::EventExpr;
use chimera_events::{EventBase, EventType, Timestamp, Window};

/// HiPAC-style sequence: `a` then (strictly later) `b`. Exactly the
/// paper's precedence operator.
pub fn seq(a: EventExpr, b: EventExpr) -> EventExpr {
    a.prec(b)
}

/// N-ary disjunction: active as soon as any component is. `None` on an
/// empty list (an empty disjunction has no sensible Chimera reading).
pub fn any_of(exprs: impl IntoIterator<Item = EventExpr>) -> Option<EventExpr> {
    exprs.into_iter().reduce(EventExpr::or)
}

/// N-ary conjunction: active once all components are.
pub fn all_of(exprs: impl IntoIterator<Item = EventExpr>) -> Option<EventExpr> {
    exprs.into_iter().reduce(EventExpr::and)
}

/// Samos `*E`: signal the first occurrence of `E`, ignoring repeats.
///
/// Under Chimera's level semantics this is the identity: a rule is
/// triggered by the transition of `ts(E)` to positive and is *not*
/// re-triggered by further occurrences until it has been considered
/// (§2: "it is no longer taken into account for triggering until it has
/// been considered"). The collapse of multiplicity that Samos obtains
/// with a dedicated operator falls out of the triggering semantics.
pub fn star(e: EventExpr) -> EventExpr {
    e
}

/// Snoop's aperiodic operator `A(E; E1, E2)`, level analogue: active when
/// an `E` followed some `E1` and no `E2` has occurred in the observation
/// window — `(E1 < E) + -E2`.
///
/// This is the *windowed level* reading: Snoop's interval (re)opens per
/// `E1`/`E2` pair, while Chimera scopes observation by rule consumption;
/// within one window the two agree on "has an in-interval E occurred".
pub fn aperiodic(e: EventExpr, open: EventExpr, close: EventExpr) -> EventExpr {
    open.prec(e).and(close.not())
}

/// Samos `Times(n, E)` — n-th occurrence of `E` in the window — as a
/// runtime extension. This cannot be compiled to the calculus (see the
/// module docs and the `times_is_inexpressible` test); it needs a counter
/// over the event base, which is exactly what this detector is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimesDetector {
    /// Monitored primitive event type.
    pub ty: EventType,
    /// Required occurrence count (≥ 1).
    pub n: usize,
}

impl TimesDetector {
    /// Detector for the `n`-th occurrence of `ty`.
    pub fn new(ty: EventType, n: usize) -> Self {
        assert!(n >= 1, "Times(n, E) needs n >= 1");
        TimesDetector { ty, n }
    }

    /// Number of occurrences of the monitored type in `w`.
    pub fn count(&self, eb: &EventBase, w: Window) -> usize {
        eb.slice(w).iter().filter(|e| e.ty == self.ty).count()
    }

    /// Is the detector active (n-th occurrence seen) in `w`?
    pub fn is_active(&self, eb: &EventBase, w: Window) -> bool {
        self.count(eb, w) >= self.n
    }

    /// The instant of the n-th occurrence in `w`, if reached — the Samos
    /// operator's occurrence point.
    pub fn occurrence_instant(&self, eb: &EventBase, w: Window) -> Option<Timestamp> {
        eb.slice(w)
            .iter()
            .filter(|e| e.ty == self.ty)
            .nth(self.n - 1)
            .map(|e| e.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_calculus::ts_logical;
    use chimera_model::{ClassId, Oid};

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    fn active_at_end(expr: &EventExpr, eb: &EventBase) -> bool {
        let w = Window::from_origin(eb.now());
        ts_logical(expr, eb, w, eb.now()).is_active()
    }

    #[test]
    fn seq_is_precedence() {
        assert_eq!(seq(p(0), p(1)), p(0).prec(p(1)));
    }

    #[test]
    fn any_of_folds_left() {
        assert_eq!(any_of([p(0), p(1), p(2)]), Some(p(0).or(p(1)).or(p(2))));
        assert_eq!(any_of([p(3)]), Some(p(3)));
        assert_eq!(any_of([]), None);
    }

    #[test]
    fn all_of_folds_left() {
        assert_eq!(all_of([p(0), p(1)]), Some(p(0).and(p(1))));
        assert_eq!(all_of([]), None);
    }

    #[test]
    fn aperiodic_active_between_open_and_close() {
        let expr = aperiodic(p(1), p(0), p(2));
        let mut eb = EventBase::new();
        eb.append(et(0), Oid(1)); // open
        assert!(!active_at_end(&expr, &eb), "no E yet");
        eb.append(et(1), Oid(1)); // E inside the interval
        assert!(active_at_end(&expr, &eb));
        eb.append(et(2), Oid(1)); // close
        assert!(!active_at_end(&expr, &eb), "interval closed");
    }

    #[test]
    fn aperiodic_needs_the_open_event() {
        let expr = aperiodic(p(1), p(0), p(2));
        let mut eb = EventBase::new();
        eb.append(et(1), Oid(1)); // E before any open
        assert!(!active_at_end(&expr, &eb));
    }

    #[test]
    fn times_detector_counts() {
        let d = TimesDetector::new(et(0), 3);
        let mut eb = EventBase::new();
        for i in 0..5 {
            eb.append(et(i % 2), Oid(1));
        }
        let w = Window::from_origin(eb.now());
        // history: 0,1,0,1,0 → three occurrences of type 0
        assert_eq!(d.count(&eb, w), 3);
        assert!(d.is_active(&eb, w));
        assert_eq!(d.occurrence_instant(&eb, w), Some(Timestamp(5)));
        // a narrower window resets the count, like a consuming rule
        let w2 = Window::new(Timestamp(3), eb.now());
        assert_eq!(d.count(&eb, w2), 1);
        assert!(!d.is_active(&eb, w2));
        assert_eq!(d.occurrence_instant(&eb, w2), None);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn times_zero_rejected() {
        TimesDetector::new(et(0), 0);
    }

    /// Enumerate every expression over the single primitive `A` up to a
    /// size bound and check that none behaves like `Times(2, A)`:
    /// inactive at the end of the one-occurrence history yet active at
    /// the end of the two-occurrence history. The calculus is level-based
    /// — this is the expressiveness boundary the `TimesDetector` exists
    /// for.
    #[test]
    fn times_is_inexpressible() {
        // all expressions over {A} with at most `size` AST nodes
        fn enumerate(size: usize) -> Vec<EventExpr> {
            let mut by_size: Vec<Vec<EventExpr>> = vec![Vec::new(); size + 1];
            if size >= 1 {
                by_size[1].push(EventExpr::prim(et(0)));
            }
            for s in 2..=size {
                let mut new: Vec<EventExpr> = Vec::new();
                for e in &by_size[s - 1] {
                    new.push(e.clone().not());
                    if e.is_instance_oriented() {
                        new.push(e.clone().inot());
                    }
                }
                for ls in 1..s - 1 {
                    let rs = s - 1 - ls;
                    for l in by_size[ls].clone() {
                        for r in by_size[rs].clone() {
                            new.push(l.clone().or(r.clone()));
                            new.push(l.clone().and(r.clone()));
                            new.push(l.clone().prec(r.clone()));
                            if l.is_instance_oriented() && r.is_instance_oriented() {
                                new.push(l.clone().ior(r.clone()));
                                new.push(l.clone().iand(r.clone()));
                                new.push(l.clone().iprec(r.clone()));
                            }
                        }
                    }
                }
                by_size[s] = new;
            }
            by_size.into_iter().flatten().collect()
        }

        let mut once = EventBase::new();
        once.append(et(0), Oid(1));
        let mut twice = EventBase::new();
        twice.append(et(0), Oid(1));
        twice.append(et(0), Oid(1));

        let times2 = TimesDetector::new(et(0), 2);
        assert!(!times2.is_active(&once, Window::from_origin(once.now())));
        assert!(times2.is_active(&twice, Window::from_origin(twice.now())));

        let exprs = enumerate(5);
        assert!(exprs.len() > 100, "enumeration covers a real space");
        for e in &exprs {
            let mimics_times =
                !active_at_end(e, &once) && active_at_end(e, &twice);
            assert!(
                !mimics_times,
                "level-based expression unexpectedly counts: {e}"
            );
        }
    }
}
