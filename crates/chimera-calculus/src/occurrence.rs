//! Occurrence enumeration for the event formulas (§3.3).
//!
//! * [`occurred_objects`] — the `occurred(expr, X)` predicate: all objects
//!   affected by the specified (instance-oriented) event expression inside
//!   the observation window.
//! * [`at_occurrences`] — the `at(expr, X, T)` predicate: additionally
//!   binds *every* occurrence instant. The paper's example: if a stock
//!   creation is followed by two quantity updates, the composite
//!   `create(stock) <= modify(stock.quantity)` occurs **twice**, exactly
//!   when the two updates occur.
//!
//! An occurrence instant of a composite is an event-arrival instant at
//! which its `ots` assumes a *fresh* positive value equal to that instant.
//! Negation is active by absence and therefore has no discrete occurrence
//! instants; `at` rejects expressions containing `-=` (DESIGN.md §7).

use crate::error::CalculusError;
use crate::expr::EventExpr;
use crate::instance::{boundary_domain, ots_logical};
use crate::Result;
use chimera_events::{EventBase, Timestamp, Window};
use chimera_model::Oid;

/// `occurred(expr, X)`: objects for which the instance-oriented expression
/// is active at the end of the window. Sorted by OID (deterministic
/// set-oriented bindings).
///
/// ```
/// use chimera_calculus::{occurred_objects, EventExpr};
/// use chimera_events::{EventBase, EventType, Window};
/// use chimera_model::{ClassId, Oid};
///
/// let create = EventType::create(ClassId(0));
/// let delete = EventType::delete(ClassId(0));
/// let mut eb = EventBase::new();
/// eb.append(create, Oid(1));
/// eb.append(create, Oid(2));
/// eb.append(delete, Oid(1));
///
/// // created and (on the same object) not deleted — the §3.3 footnote's
/// // net-creation formula
/// let expr = EventExpr::prim(create).iand(EventExpr::prim(delete).inot());
/// let w = Window::from_origin(eb.now());
/// assert_eq!(occurred_objects(&expr, &eb, w).unwrap(), vec![Oid(2)]);
/// ```
pub fn occurred_objects(expr: &EventExpr, eb: &EventBase, w: Window) -> Result<Vec<Oid>> {
    if !expr.is_instance_oriented() {
        return Err(CalculusError::SetOrientedFormula);
    }
    expr.validate()?;
    // process-wide sharded compiled-plan cache: one compiled condition
    // plan per distinct formula expression, evaluated over the shared
    // domain and batched leaf stamps instead of one `ots` recursion per
    // object.
    Ok(crate::plan::occurred_objects_planned(expr, eb, w))
}

/// `at(expr, X, T)`: `(object, instant)` pairs for every occurrence of the
/// instance-oriented, negation-free expression inside the window. Sorted
/// by (OID, instant).
pub fn at_occurrences(expr: &EventExpr, eb: &EventBase, w: Window) -> Result<Vec<(Oid, Timestamp)>> {
    if !expr.is_instance_oriented() {
        return Err(CalculusError::SetOrientedFormula);
    }
    if expr.contains_negation() {
        return Err(CalculusError::NegationInAt);
    }
    expr.validate()?;
    let prims = expr.primitives();
    let mut out = Vec::new();
    for &oid in boundary_domain(expr, eb, w, w.upto).iter() {
        // candidate instants: arrivals of the expression's own primitives
        // on this object (no other instant can produce a fresh activation
        // for a negation-free expression).
        let mut stamps: Vec<Timestamp> = Vec::new();
        for &ty in &prims {
            stamps.extend(eb.occurrences_of_type_obj_in(ty, oid, w).map(|e| e.ts));
        }
        stamps.sort();
        stamps.dedup();
        for te in stamps {
            let v = ots_logical(expr, eb, w, te, oid);
            if v.activation() == Some(te) {
                out.push((oid, te));
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_events::EventType;
    use chimera_model::ClassId;

    fn et(n: u32) -> EventType {
        EventType::external(ClassId(0), n)
    }
    fn p(n: u32) -> EventExpr {
        EventExpr::prim(et(n))
    }

    /// §3.3 example: creation followed by two quantity updates → the
    /// composite `create <= modify` occurs twice, at the update instants.
    #[test]
    fn section33_at_double_update() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1)); // create
        eb.append_at(et(1), Oid(1), Timestamp(4)); // modify #1
        eb.append_at(et(1), Oid(1), Timestamp(7)); // modify #2
        let w = Window::from_origin(Timestamp(7));
        let e = p(0).iprec(p(1));
        let occ = at_occurrences(&e, &eb, w).unwrap();
        assert_eq!(occ, vec![(Oid(1), Timestamp(4)), (Oid(1), Timestamp(7))]);
    }

    #[test]
    fn occurred_binds_affected_objects() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(1), Timestamp(2));
        eb.append_at(et(0), Oid(2), Timestamp(3)); // created, never modified
        let w = Window::from_origin(Timestamp(3));
        // occurred(create <= modify, X) → only O1
        let e = p(0).iprec(p(1));
        assert_eq!(occurred_objects(&e, &eb, w).unwrap(), vec![Oid(1)]);
        // occurred(create, X) → both
        assert_eq!(
            occurred_objects(&p(0), &eb, w).unwrap(),
            vec![Oid(1), Oid(2)]
        );
    }

    #[test]
    fn occurred_respects_consumption_window() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(0), Oid(2), Timestamp(5));
        // consuming rule: only events after the last consideration (t2)
        let w = Window::new(Timestamp(2), Timestamp(5));
        assert_eq!(occurred_objects(&p(0), &eb, w).unwrap(), vec![Oid(2)]);
        // preserving rule: everything since transaction start
        let all = Window::from_origin(Timestamp(5));
        assert_eq!(
            occurred_objects(&p(0), &eb, all).unwrap(),
            vec![Oid(1), Oid(2)]
        );
    }

    #[test]
    fn occurred_with_negation_binds_absent_objects() {
        // occurred(create += -=modify, X): created but not modified.
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(0), Oid(2), Timestamp(2));
        eb.append_at(et(1), Oid(1), Timestamp(3));
        let w = Window::from_origin(Timestamp(3));
        let e = p(0).iand(p(1).inot());
        assert_eq!(occurred_objects(&e, &eb, w).unwrap(), vec![Oid(2)]);
    }

    #[test]
    fn at_rejects_negation() {
        let e = p(0).iand(p(1).inot());
        let eb = EventBase::new();
        let w = Window::from_origin(Timestamp(1));
        assert_eq!(
            at_occurrences(&e, &eb, w).unwrap_err(),
            CalculusError::NegationInAt
        );
    }

    #[test]
    fn formulas_reject_set_oriented_expressions() {
        let eb = EventBase::new();
        let w = Window::from_origin(Timestamp(1));
        let e = p(0).and(p(1));
        assert_eq!(
            occurred_objects(&e, &eb, w).unwrap_err(),
            CalculusError::SetOrientedFormula
        );
        assert_eq!(
            at_occurrences(&e, &eb, w).unwrap_err(),
            CalculusError::SetOrientedFormula
        );
    }

    #[test]
    fn at_primitive_lists_every_arrival() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(2));
        eb.append_at(et(0), Oid(1), Timestamp(5));
        eb.append_at(et(0), Oid(2), Timestamp(6));
        let w = Window::from_origin(Timestamp(6));
        assert_eq!(
            at_occurrences(&p(0), &eb, w).unwrap(),
            vec![
                (Oid(1), Timestamp(2)),
                (Oid(1), Timestamp(5)),
                (Oid(2), Timestamp(6))
            ]
        );
    }

    #[test]
    fn at_conjunction_fresh_activations_only() {
        // A += B occurs when the *later* of the two arrives, and again on
        // every refresh of either component.
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1)); // A
        eb.append_at(et(1), Oid(1), Timestamp(3)); // B → first activation
        eb.append_at(et(0), Oid(1), Timestamp(5)); // A again → refresh
        let w = Window::from_origin(Timestamp(5));
        let e = p(0).iand(p(1));
        assert_eq!(
            at_occurrences(&e, &eb, w).unwrap(),
            vec![(Oid(1), Timestamp(3)), (Oid(1), Timestamp(5))]
        );
    }

    #[test]
    fn at_disjunction_counts_both_components() {
        let mut eb = EventBase::new();
        eb.append_at(et(0), Oid(1), Timestamp(1));
        eb.append_at(et(1), Oid(1), Timestamp(4));
        let w = Window::from_origin(Timestamp(4));
        let e = p(0).ior(p(1));
        assert_eq!(
            at_occurrences(&e, &eb, w).unwrap(),
            vec![(Oid(1), Timestamp(1)), (Oid(1), Timestamp(4))]
        );
    }

    #[test]
    fn at_precedence_ignores_unpreceded_events() {
        let mut eb = EventBase::new();
        eb.append_at(et(1), Oid(1), Timestamp(1)); // modify before create
        eb.append_at(et(0), Oid(1), Timestamp(3)); // create
        eb.append_at(et(1), Oid(1), Timestamp(5)); // modify after create
        let w = Window::from_origin(Timestamp(5));
        let e = p(0).iprec(p(1));
        assert_eq!(at_occurrences(&e, &eb, w).unwrap(), vec![(Oid(1), Timestamp(5))]);
    }

    #[test]
    fn empty_window_yields_nothing() {
        let eb = EventBase::new();
        let w = Window::from_origin(Timestamp(1));
        assert!(occurred_objects(&p(0), &eb, w).unwrap().is_empty());
        assert!(at_occurrences(&p(0), &eb, w).unwrap().is_empty());
    }
}
