//! Reconstruction of the paper's Fig. 3 Event Base example.
//!
//! ```text
//! EID  event-type                OID  timestamp
//! e1   create(stock)             o1   t1
//! e2   create(stock)             o2   t2
//! e3   create(order)             o3   t3
//! e4   create(notFilledOrder)    o3   t4
//! e5   modify(stock.quantity)    o1   t5
//! e6   modify(stock.quantity)    o2   t6
//! e7   delete(stock)             o1   t7
//! ```
//!
//! (`notFilledOrder` is a subclass of `order`; `e4` records the
//! specialization-style creation of the same object `o3` in the subclass.)
//! Used by tests, the `fig3_event_base` bench and `examples/calculus_trace`.

use crate::base::EventBase;
use crate::event::EventType;
use crate::time::Timestamp;
use chimera_model::{AttrDef, AttrType, Oid, Schema, SchemaBuilder};

/// Build the Fig. 3 schema (stock / show / order / notFilledOrder) and the
/// seven-event EB exactly as printed in the paper.
pub fn fig3_event_base() -> (Schema, EventBase) {
    let mut b = SchemaBuilder::new();
    b.class(
        "stock",
        None,
        vec![
            AttrDef::new("quantity", AttrType::Integer),
            AttrDef::new("max_quantity", AttrType::Integer),
            AttrDef::new("min_quantity", AttrType::Integer),
        ],
    )
    .expect("fig3 schema");
    b.class(
        "show",
        None,
        vec![AttrDef::new("quantity", AttrType::Integer)],
    )
    .expect("fig3 schema");
    b.class(
        "order",
        None,
        vec![AttrDef::new("del_quantity", AttrType::Integer)],
    )
    .expect("fig3 schema");
    b.class("notFilledOrder", Some("order"), vec![])
        .expect("fig3 schema");
    let schema = b.build();

    let stock = schema.class_by_name("stock").expect("stock");
    let order = schema.class_by_name("order").expect("order");
    let nfo = schema.class_by_name("notFilledOrder").expect("nfo");
    let quantity = schema.attr_by_name(stock, "quantity").expect("quantity");

    let mut eb = EventBase::new();
    eb.append_at(EventType::create(stock), Oid(1), Timestamp(1));
    eb.append_at(EventType::create(stock), Oid(2), Timestamp(2));
    eb.append_at(EventType::create(order), Oid(3), Timestamp(3));
    eb.append_at(EventType::create(nfo), Oid(3), Timestamp(4));
    eb.append_at(EventType::modify(stock, quantity), Oid(1), Timestamp(5));
    eb.append_at(EventType::modify(stock, quantity), Oid(2), Timestamp(6));
    eb.append_at(EventType::delete(stock), Oid(1), Timestamp(7));
    (schema, eb)
}

/// Render the EB as the paper's Fig. 3 table (for the bench/example output).
pub fn render_fig3_table(schema: &Schema, eb: &EventBase) -> String {
    let mut out = String::from("EID  event-type                OID  timestamp\n");
    for e in eb.iter() {
        out.push_str(&format!(
            "{:<4} {:<25} {:<4} {}\n",
            e.eid.to_string(),
            e.ty.render(schema),
            e.oid.to_string(),
            e.ts
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::window::Window;

    #[test]
    fn fig3_contents_match_paper() {
        let (schema, eb) = fig3_event_base();
        assert_eq!(eb.len(), 7);
        let stock = schema.class_by_name("stock").unwrap();
        let rows: Vec<_> = eb.iter().collect();
        // e1: create(stock) o1 t1
        assert_eq!(rows[0].ty, EventType::create(stock));
        assert_eq!(rows[0].oid, Oid(1));
        assert_eq!(rows[0].ts, Timestamp(1));
        // e4: create(notFilledOrder) o3 t4
        let nfo = schema.class_by_name("notFilledOrder").unwrap();
        assert_eq!(rows[3].ty, EventType::create(nfo));
        assert_eq!(rows[3].oid, Oid(3));
        // e7: delete(stock) o1 t7
        assert_eq!(rows[6].ty.kind, EventKind::Delete);
        assert_eq!(rows[6].oid, Oid(1));
        assert_eq!(rows[6].ts, Timestamp(7));
    }

    #[test]
    fn fig4_accessor_examples() {
        let (schema, eb) = fig3_event_base();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let e1 = eb.get(crate::EventId(1)).unwrap();
        let e2 = eb.get(crate::EventId(2)).unwrap();
        let e5 = eb.get(crate::EventId(5)).unwrap();
        let e7 = eb.get(crate::EventId(7)).unwrap();
        // Fig. 4: type(e1) = create(stock), obj(e2) = o2,
        //         type(e5) = modify(stock.quantity), obj(e5) = o1,
        //         type(e7) = delete(stock), timestamp(e5) = t5,
        //         event_on_class(e1) = stock.
        assert_eq!(e1.event_type(), EventType::create(stock));
        assert_eq!(e2.obj(), Oid(2));
        assert_eq!(e5.event_type(), EventType::modify(stock, q));
        assert_eq!(e5.obj(), Oid(1));
        assert_eq!(e7.event_type(), EventType::delete(stock));
        assert_eq!(e5.timestamp(), Timestamp(5));
        assert_eq!(e1.event_on_class(), stock);
        assert_eq!(schema.class_name(e1.event_on_class()), "stock");
    }

    #[test]
    fn fig3_window_queries() {
        let (schema, eb) = fig3_event_base();
        let stock = schema.class_by_name("stock").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let all = Window::from_origin(Timestamp(7));
        assert_eq!(
            eb.last_of_type_in(EventType::create(stock), all),
            Some(Timestamp(2))
        );
        assert_eq!(
            eb.last_of_type_in(EventType::modify(stock, q), all),
            Some(Timestamp(6))
        );
        assert_eq!(
            eb.last_of_type_obj_in(EventType::modify(stock, q), Oid(1), all),
            Some(Timestamp(5))
        );
        assert_eq!(eb.objects_in(all).to_vec(), vec![Oid(1), Oid(2), Oid(3)]);
    }

    #[test]
    fn render_contains_all_rows() {
        let (schema, eb) = fig3_event_base();
        let table = render_fig3_table(&schema, &eb);
        assert!(table.contains("create(stock)"));
        assert!(table.contains("create(notFilledOrder)"));
        assert!(table.contains("modify(stock.quantity)"));
        assert!(table.contains("delete(stock)"));
        assert_eq!(table.lines().count(), 8); // header + 7 rows
    }
}
