//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build container has no crates.io access, so this shim implements the
//! subset of the proptest API the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`Strategy`] with `prop_map` / `boxed`, strategies for integer
//!   ranges, tuples, `&str` patterns of the form `.{m,n}`, [`Just`],
//!   [`any`], `prop::collection::vec` and `prop::option::of`,
//! * the [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the test's case seed in
//!   the panic message (via the value bindings printed by the assertion),
//!   but is not minimized.
//! * **Deterministic generation.** Each test function derives its RNG
//!   stream from a hash of its own name plus the case index, so runs are
//!   reproducible without a persistence file.
//! * **`PROPTEST_CASES` caps, never raises.** The env var clamps the
//!   per-test case count downward so CI can bound runtime; an explicit
//!   `ProptestConfig::with_cases` below the cap is respected.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// SplitMix64; mirrors the shim `rand` crate so test streams are
    /// self-contained and deterministic.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// FNV-1a, used to give every test function its own seed stream.
    pub fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Per-case seed: decorrelates consecutive cases of one test.
    pub fn case_seed(base: u64, case: u32) -> u64 {
        base ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407)
    }

    /// Why a single test case did not pass: a real failure, or an input
    /// rejected by `prop_assume!`.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }
}

use test_runner::TestRng;

pub use test_runner::TestCaseError;

/// Runner configuration. Only `cases` is meaningful to the shim; the
/// struct is non-exhaustive-by-convention so `with_cases` is the expected
/// constructor.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` cap.
    pub fn resolved_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(cap) => self.cases.min(cap.max(1)),
                Err(_) => self.cases,
            },
            Err(_) => self.cases,
        }
    }
}

/// A generator of values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy
/// just samples.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy, as produced by [`Strategy::boxed`] and
/// [`prop_oneof!`].
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strategy.sample(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

/// Types with a canonical "anything goes" strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias ~1/8 of samples toward boundary values — uniform
                // u64 essentially never hits 0/MIN/MAX, and codecs and
                // calculi care about exactly those.
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_sint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                match rng.below(16) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )+};
}

impl_arbitrary_sint!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        sample_char(rng)
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // The affine map can round up to `end` exactly (e.g. huge start,
        // tiny span); clamp back inside the half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// A character for string strategies: mostly ASCII printable, with a tail
/// of non-ASCII and exotic code points so decoder tests see real noise.
/// Never `'\n'`, matching regex `.`.
fn sample_char(rng: &mut TestRng) -> char {
    match rng.below(10) {
        0..=6 => (0x20 + rng.below(0x5F) as u32) as u8 as char,
        7 => {
            // Latin-1 and general BMP text.
            char::from_u32(0xA1 + rng.below(0x500) as u32).unwrap_or('¿')
        }
        8 => {
            // Astral plane (emoji block) — multi-byte UTF-8.
            char::from_u32(0x1F300 + rng.below(0x200) as u32).unwrap_or('🦀')
        }
        _ => {
            // Control characters other than newline.
            let c = rng.below(31) as u32; // 0..=30, skip 0x0A below
            let c = if c == 0x0A { 0x0B } else { c };
            char::from_u32(c).unwrap()
        }
    }
}

/// `&str` patterns as strategies. Real proptest compiles the full regex;
/// the shim supports the `.{m,n}` shape the workspace uses and treats any
/// other pattern as a literal.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        fn parse_dot_rep(pat: &str) -> Option<(u64, u64)> {
            let inner = pat.strip_prefix(".{")?.strip_suffix('}')?;
            let (lo, hi) = inner.split_once(',')?;
            Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
        }
        match parse_dot_rep(self) {
            Some((lo, hi)) => {
                let len = lo + rng.below(hi - lo + 1);
                (0..len).map(|_| sample_char(rng)).collect()
            }
            None => (*self).to_string(),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// The `prop::` module re-exported by the prelude.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Accepted size shapes for [`vec`].
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi_inclusive: n }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod option {
        use super::super::{Strategy, TestRng};

        pub struct OptionStrategy<S> {
            inner: S,
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Some ~3/4 of the time, like real proptest's default.
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.sample(rng))
                }
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

// The assertion macros return `Err(TestCaseError::Fail)` instead of
// panicking so the proptest! runner can prefix failures with the case
// index (the only reproduction handle a no-shrinking shim can offer).

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (@run ($config:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let cases = config.resolved_cases();
                let base = $crate::test_runner::fnv(stringify!($name));
                for case in 0..cases {
                    let mut prop_rng =
                        $crate::test_runner::TestRng::new($crate::test_runner::case_seed(base, case));
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut prop_rng);)+
                    // The body runs in a closure so that real-proptest
                    // idioms — `return Err(TestCaseError::fail(..))`, `?`,
                    // `prop_assume!` — work unchanged.
                    // mut is needed only when the body mutates a binding.
                    #[allow(unused_mut)]
                    let mut case_fn = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match case_fn() {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(reason)) => {
                            panic!("proptest case {case} of {}: {reason}", stringify!($name));
                        }
                    }
                }
            }
        )+
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_in_bounds(x in 3usize..10, y in -5i64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        fn vec_and_oneof_compose(
            v in prop::collection::vec(prop_oneof![Just(0u8), 1u8..255], 2..5),
            s in ".{0,12}",
            opt in prop::option::of(0u32..4),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(s.chars().count() <= 12);
            prop_assert!(!s.contains('\n'));
            if let Some(x) = opt {
                prop_assert!(x < 4);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(1))]
        #[should_panic(expected = "proptest case 0 of failing_case_reports_its_index")]
        fn failing_case_reports_its_index(x in 0u8..1) {
            prop_assert!(x > 0, "x was {x}");
        }
    }

    #[test]
    fn tuple_and_map_strategies() {
        let mut rng = crate::test_runner::TestRng::new(1);
        let strat = ((1u64..10), (0u64..10)).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v < 19);
        }
    }

    #[test]
    fn proptest_cases_env_caps_downward() {
        // resolved_cases never exceeds the explicit count even if the env
        // var asks for more (env raises are ignored; caps are honored).
        let cfg = ProptestConfig::with_cases(10);
        assert!(cfg.resolved_cases() <= 10);
    }
}
