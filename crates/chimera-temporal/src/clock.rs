//! Clock event specifications and the scheduler computing due firings.
//!
//! HiPAC (§1.1) distinguishes **absolute**, **relative** and **periodic**
//! clock events. Chimera's semantics runs on a *logical* clock — stamps
//! are allocated only when occurrences are appended — so the three forms
//! are interpreted over logical instants:
//!
//! * [`ClockSpec::At`] — fire once when the clock first reaches (or
//!   passes) the given absolute instant;
//! * [`ClockSpec::After`] — fire once `delay` instants after the
//!   scheduler's anchor (transaction start);
//! * [`ClockSpec::Every`] — fire at `anchor + phase + k·period` for
//!   `k = 0, 1, …`.
//!
//! [`ClockScheduler::due`] returns every firing in `(last_polled, now]`,
//! so a driver pumped at block boundaries delivers exactly one occurrence
//! per due instant regardless of how irregularly it is pumped
//! (catch-up is deterministic and loss-free).

use chimera_events::Timestamp;

/// A clock event specification (logical-time interpretation of HiPAC's
/// absolute / relative / periodic clock events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockSpec {
    /// Fire once at the given absolute instant.
    At(Timestamp),
    /// Fire once `delay` instants after the anchor.
    After {
        /// Logical delay from the scheduler anchor.
        delay: u64,
    },
    /// Fire at `anchor + phase + k·period` for every `k ≥ 0`.
    Every {
        /// Period in logical instants (must be ≥ 1).
        period: u64,
        /// Offset of the first firing from the anchor.
        phase: u64,
    },
}

impl ClockSpec {
    /// All firing instants in the half-open window `(after, upto]`, given
    /// the scheduler `anchor`.
    fn firings(&self, anchor: Timestamp, after: Timestamp, upto: Timestamp) -> Vec<Timestamp> {
        let lo = after.raw();
        let hi = upto.raw();
        if hi <= lo {
            return Vec::new();
        }
        match *self {
            ClockSpec::At(t) => {
                let t = t.raw();
                if t > lo && t <= hi {
                    vec![Timestamp(t)]
                } else {
                    Vec::new()
                }
            }
            ClockSpec::After { delay } => {
                let t = anchor.raw() + delay;
                if t > lo && t <= hi {
                    vec![Timestamp(t)]
                } else {
                    Vec::new()
                }
            }
            ClockSpec::Every { period, phase } => {
                assert!(period >= 1, "periodic clock events need period >= 1");
                let first = anchor.raw() + phase;
                if first > hi {
                    return Vec::new();
                }
                // smallest k with first + k·period > lo
                let k0 = if lo < first {
                    0
                } else {
                    (lo - first) / period + 1
                };
                let mut out = Vec::new();
                let mut t = first + k0 * period;
                while t <= hi {
                    out.push(Timestamp(t));
                    t += period;
                }
                out
            }
        }
    }
}

/// One registered clock event source.
#[derive(Debug, Clone)]
struct Entry {
    spec: ClockSpec,
    /// External-event channel the firing is reported on.
    channel: u32,
}

/// A deterministic scheduler over a set of clock specs.
#[derive(Debug, Clone)]
pub struct ClockScheduler {
    anchor: Timestamp,
    last_polled: Timestamp,
    entries: Vec<Entry>,
}

impl ClockScheduler {
    /// Scheduler anchored at `anchor` (typically the transaction start).
    pub fn new(anchor: Timestamp) -> Self {
        ClockScheduler {
            anchor,
            last_polled: anchor,
            entries: Vec::new(),
        }
    }

    /// Register a spec firing on external `channel`.
    pub fn register(&mut self, spec: ClockSpec, channel: u32) -> &mut Self {
        self.entries.push(Entry { spec, channel });
        self
    }

    /// The anchor instant.
    pub fn anchor(&self) -> Timestamp {
        self.anchor
    }

    /// Number of registered specs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// No specs registered?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every due firing in `(last_polled, now]` as `(instant, channel)`,
    /// sorted by instant (ties in registration order); advances the poll
    /// cursor so each firing is produced exactly once.
    pub fn due(&mut self, now: Timestamp) -> Vec<(Timestamp, u32)> {
        let mut out: Vec<(Timestamp, u32)> = Vec::new();
        for e in &self.entries {
            for t in e.spec.firings(self.anchor, self.last_polled, now) {
                out.push((t, e.channel));
            }
        }
        out.sort_by_key(|&(t, _)| t);
        if now > self.last_polled {
            self.last_polled = now;
        }
        out
    }

    /// Re-anchor and reset the poll cursor (new transaction).
    pub fn reset(&mut self, anchor: Timestamp) {
        self.anchor = anchor;
        self.last_polled = anchor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> Timestamp {
        Timestamp(n)
    }

    #[test]
    fn absolute_fires_once_in_window() {
        let mut s = ClockScheduler::new(t(0));
        s.register(ClockSpec::At(t(5)), 1);
        assert!(s.due(t(4)).is_empty());
        assert_eq!(s.due(t(10)), vec![(t(5), 1)]);
        // already delivered: never again
        assert!(s.due(t(20)).is_empty());
    }

    #[test]
    fn absolute_before_anchor_never_fires() {
        let mut s = ClockScheduler::new(t(10));
        s.register(ClockSpec::At(t(5)), 1);
        assert!(s.due(t(100)).is_empty());
    }

    #[test]
    fn relative_fires_from_anchor() {
        let mut s = ClockScheduler::new(t(7));
        s.register(ClockSpec::After { delay: 3 }, 2);
        assert!(s.due(t(9)).is_empty());
        assert_eq!(s.due(t(10)), vec![(t(10), 2)]);
        assert!(s.due(t(30)).is_empty());
    }

    #[test]
    fn periodic_catches_up_without_loss() {
        let mut s = ClockScheduler::new(t(0));
        s.register(ClockSpec::Every { period: 4, phase: 2 }, 3);
        // polled late: all missed firings delivered in order
        assert_eq!(s.due(t(15)), vec![(t(2), 3), (t(6), 3), (t(10), 3), (t(14), 3)]);
        assert_eq!(s.due(t(18)), vec![(t(18), 3)]);
        assert!(s.due(t(18)).is_empty());
    }

    #[test]
    fn multiple_specs_merge_sorted() {
        let mut s = ClockScheduler::new(t(0));
        s.register(ClockSpec::Every { period: 5, phase: 5 }, 1)
            .register(ClockSpec::At(t(7)), 2);
        assert_eq!(s.due(t(10)), vec![(t(5), 1), (t(7), 2), (t(10), 1)]);
    }

    #[test]
    fn reset_reanchors() {
        let mut s = ClockScheduler::new(t(0));
        s.register(ClockSpec::After { delay: 2 }, 1);
        assert_eq!(s.due(t(5)), vec![(t(2), 1)]);
        s.reset(t(10));
        assert_eq!(s.due(t(20)), vec![(t(12), 1)]);
    }

    #[test]
    fn zero_phase_periodic_skips_anchor_instant() {
        // firings are strictly after the poll cursor, so the anchor
        // instant itself (k=0, phase=0) is not delivered.
        let mut s = ClockScheduler::new(t(0));
        s.register(ClockSpec::Every { period: 3, phase: 0 }, 1);
        assert_eq!(s.due(t(6)), vec![(t(3), 1), (t(6), 1)]);
    }

    #[test]
    #[should_panic(expected = "period >= 1")]
    fn zero_period_panics() {
        let mut s = ClockScheduler::new(t(0));
        s.register(ClockSpec::Every { period: 0, phase: 0 }, 1);
        s.due(t(5));
    }

    #[test]
    fn empty_scheduler_reports() {
        let mut s = ClockScheduler::new(t(0));
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.due(t(100)).is_empty());
        assert_eq!(s.anchor(), t(0));
    }
}
