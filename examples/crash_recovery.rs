//! Durability walk-through: commit, crash, recover.
//!
//! Creates a database directory, commits two transactions (the paper's §2
//! clamp trigger firing inside the first), simulates a crash by tearing
//! the last WAL batch in half, and shows recovery cutting the torn tail
//! back to the last complete commit. Finishes with a compaction and a
//! clean reopen from the snapshot.
//!
//! Run with: `cargo run --example crash_recovery`

use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::{EngineConfig, Op};
use chimera::model::{AttrDef, AttrType, Schema, SchemaBuilder, Value};
use chimera::persist::DurableEngine;
use chimera::rules::{ActionStmt, CmpOp, Condition, Formula, Term, TriggerDef, VarDecl};
use std::fs;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "stock",
        None,
        vec![
            AttrDef::new("quantity", AttrType::Integer),
            AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
        ],
    )
    .expect("schema");
    b.build()
}

fn clamp(schema: &Schema) -> TriggerDef {
    let stock = schema.class_by_name("stock").expect("stock");
    let mut def = TriggerDef::new("checkStockQty", EventExpr::prim(EventType::create(stock)));
    def.condition = Condition {
        decls: vec![VarDecl {
            name: "S".into(),
            class: "stock".into(),
        }],
        formulas: vec![
            Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock)),
                var: "S".into(),
            },
            Formula::Compare {
                lhs: Term::attr("S", "quantity"),
                op: CmpOp::Gt,
                rhs: Term::attr("S", "max_quantity"),
            },
        ],
    };
    def.actions = vec![ActionStmt::Modify {
        var: "S".into(),
        attr: "quantity".into(),
        value: Term::attr("S", "max_quantity"),
    }];
    def
}

fn main() {
    let dir = std::env::temp_dir().join(format!("chimera-demo-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let schema = schema();
    let stock = schema.class_by_name("stock").expect("stock");
    let q = schema.attr_by_name(stock, "quantity").expect("quantity");

    // ── two committed transactions ────────────────────────────────────
    let oid = {
        let (mut db, report) = DurableEngine::open(
            schema.clone(),
            EngineConfig::default(),
            &dir,
            vec![clamp(&schema)],
        )
        .expect("open");
        println!("fresh open: {report:?}");
        db.begin().expect("begin");
        let oid = db
            .exec_block(&[Op::Create {
                class: stock,
                inits: vec![(q, Value::Int(500))],
            }])
            .expect("block")[0]
            .oid;
        db.commit().expect("commit 1");
        println!(
            "commit 1: created {oid}, trigger clamped quantity to {:?}",
            db.engine().read_attr(oid, "quantity").expect("read")
        );
        db.begin().expect("begin");
        db.exec_block(&[Op::Modify {
            oid,
            attr: q,
            value: Value::Int(42),
        }])
        .expect("block");
        db.commit().expect("commit 2");
        println!("commit 2: quantity set to 42, wal has 2 batches");
        oid
    };

    // ── simulated crash: tear the second batch in half ────────────────
    let wal_path = dir.join("wal.log");
    let bytes = fs::read(&wal_path).expect("read wal");
    fs::write(&wal_path, &bytes[..bytes.len() - bytes.len() / 3]).expect("tear");
    println!(
        "\nsimulated crash: truncated wal from {} to {} bytes",
        bytes.len(),
        bytes.len() - bytes.len() / 3
    );

    let (db, report) = DurableEngine::open(
        schema.clone(),
        EngineConfig::default(),
        &dir,
        vec![clamp(&schema)],
    )
    .expect("recover");
    println!(
        "recovery: replayed {} of 2 commits, torn tail: {:?}",
        report.replayed, report.torn_tail
    );
    println!(
        "quantity after recovery: {:?} (commit 1's clamped value — commit 2 was torn)",
        db.engine().read_attr(oid, "quantity").expect("read")
    );
    drop(db);

    // ── compaction and clean reopen ───────────────────────────────────
    let (mut db, _) = DurableEngine::open(
        schema.clone(),
        EngineConfig::default(),
        &dir,
        vec![clamp(&schema)],
    )
    .expect("reopen");
    db.begin().expect("begin");
    db.exec_block(&[Op::Modify {
        oid,
        attr: q,
        value: Value::Int(7),
    }])
    .expect("block");
    db.commit().expect("commit 3");
    db.compact().expect("compact");
    println!(
        "\nre-committed quantity = 7 and compacted: snapshot at seq {}, wal now {} bytes",
        db.committed_seq(),
        fs::metadata(&wal_path).expect("meta").len()
    );
    drop(db);

    let (db, report) = DurableEngine::open(
        schema.clone(),
        EngineConfig::default(),
        &dir,
        vec![clamp(&schema)],
    )
    .expect("final open");
    println!(
        "final open from snapshot: {report:?}, quantity = {:?}",
        db.engine().read_attr(oid, "quantity").expect("read")
    );
    let _ = fs::remove_dir_all(&dir);
}
