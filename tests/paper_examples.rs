//! Cross-crate reproduction of the paper's worked examples, driven through
//! the public facade API. The per-figure unit tests live next to the
//! implementing modules; this suite stitches them together end-to-end.

use chimera::calculus::{ts_logical, EventExpr, Sign, VariationSet, FIG1_OPERATORS};
use chimera::events::{fig3_event_base, EventBase, EventId, EventType, Timestamp, Window};
use chimera::interp::Interpreter;
use chimera::model::{ClassId, Oid, Value};
use chimera::rules::{is_triggered, RuleState, TriggerDef};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}
fn p(n: u32) -> EventExpr {
    EventExpr::prim(et(n))
}

/// FIG1: the operator table has exactly the eight operators in the
/// paper's priority order.
#[test]
fn fig1_operator_table() {
    let names: Vec<&str> = FIG1_OPERATORS.iter().map(|o| o.name).collect();
    assert_eq!(
        names,
        vec!["negation", "conjunction", "precedence", "disjunction"]
    );
    let set: Vec<&str> = FIG1_OPERATORS.iter().map(|o| o.set_symbol).collect();
    assert_eq!(set, vec!["-", "+", "<", ","]);
    let inst: Vec<&str> = FIG1_OPERATORS.iter().map(|o| o.instance_symbol).collect();
    assert_eq!(inst, vec!["-=", "+=", "<=", ",="]);
}

/// FIG2: the three orthogonal dimensions — every boolean operator exists
/// at both granularities; precedence is the temporal dimension.
#[test]
fn fig2_dimensions() {
    assert_eq!(
        FIG1_OPERATORS
            .iter()
            .filter(|o| o.dimension == "boolean")
            .count(),
        3
    );
    assert_eq!(
        FIG1_OPERATORS
            .iter()
            .filter(|o| o.dimension == "temporal")
            .count(),
        1
    );
}

/// FIG3 + FIG4: the sample EB and its accessor functions.
#[test]
fn fig3_fig4_event_base() {
    let (schema, eb) = fig3_event_base();
    assert_eq!(eb.len(), 7);
    let e1 = eb.get(EventId(1)).unwrap();
    let e5 = eb.get(EventId(5)).unwrap();
    assert_eq!(e1.ty.render(&schema), "create(stock)");
    assert_eq!(e5.ty.render(&schema), "modify(stock.quantity)");
    assert_eq!(e5.obj(), Oid(1));
    assert_eq!(e5.timestamp(), Timestamp(5));
    assert_eq!(schema.class_name(e1.event_on_class()), "stock");
}

/// FIG5: De Morgan over the sample A/B/C history, exact ts equality at
/// every instant (both evaluators).
#[test]
fn fig5_de_morgan_traces() {
    let mut eb = EventBase::new();
    for (n, t) in [(2u32, 1u64), (0, 2), (2, 3), (1, 4), (0, 5), (1, 6), (2, 7)] {
        eb.append_at(et(n), Oid(1 + t % 3), Timestamp(t));
    }
    let w = Window::from_origin(Timestamp(7));
    let lhs = p(0).not().or(p(1).not()).not();
    let rhs = p(0).and(p(1));
    for t in 1..=7 {
        let t = Timestamp(t);
        assert_eq!(ts_logical(&lhs, &eb, w, t), ts_logical(&rhs, &eb, w, t));
        assert_eq!(
            chimera::calculus::ts_algebraic(&lhs, &eb, w, t),
            chimera::calculus::ts_algebraic(&rhs, &eb, w, t)
        );
    }
}

/// §2: the checkStockQty rule verbatim (surface syntax) — set-oriented
/// execution processes all pending objects in one rule execution.
#[test]
fn section2_check_stock_qty() {
    let mut chim = Interpreter::from_source(
        r#"
define class stock
  attributes quantity: integer,
             max_quantity: integer default 100
end
define immediate trigger checkStockQty for stock
  events create
  condition stock(S), occurred(create, S),
            S.quantity > S.max_quantity
  actions modify(S.quantity, S.max_quantity)
end
begin;
{ let a = create stock(quantity: 300); let b = create stock(quantity: 150); let c = create stock(quantity: 50); }
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    // one block, one consideration, one (set-oriented) execution
    assert_eq!(chim.engine().stats().considerations, 1);
    assert_eq!(chim.engine().stats().executions, 1);
    for (v, expect) in [("a", 100), ("b", 100), ("c", 50)] {
        let oid = chim.var(v).unwrap();
        assert_eq!(
            chim.engine().read_attr(oid, "quantity").unwrap(),
            Value::Int(expect),
            "{v}"
        );
    }
}

/// §3.1: the complete worked set-oriented expression
/// `modify(show.qty) + -((create(order) < modify(order.delqty)) ,
/// (modify(stock.minqty) < modify(stock.qty)))`.
#[test]
fn section31_complex_expression_triggering() {
    // 0=modify(show.qty) 1=create(order) 2=modify(order.delqty)
    // 3=modify(stock.minqty) 4=modify(stock.qty)
    let inner = p(1).prec(p(2)).or(p(3).prec(p(4)));
    let expr = p(0).and(inner.not());
    let def = TriggerDef::new("r", expr);

    // shelf change with no order/stock sequences → triggered
    let mut eb = EventBase::new();
    eb.append(et(0), Oid(1));
    let st = RuleState::new(&def, Timestamp::ZERO);
    assert!(is_triggered(&def, &st, &eb, eb.now()));

    // add create(order) < modify(order.delqty): negation falsified at the
    // end of the history, but the rule remains triggered through the
    // §4.4 existential (it was active when the shelf changed).
    eb.append(et(1), Oid(2));
    eb.append(et(2), Oid(2));
    assert!(is_triggered(&def, &st, &eb, eb.now()));

    // a history where the shelf changes only *after* the order sequence:
    // never active → never triggered.
    let mut eb2 = EventBase::new();
    eb2.append(et(1), Oid(2));
    eb2.append(et(2), Oid(2));
    eb2.append(et(0), Oid(1));
    let st2 = RuleState::new(&def, Timestamp::ZERO);
    assert!(!is_triggered(&def, &st2, &eb2, eb2.now()));
}

/// §3.2: the three boundary contrast pairs, via the facade.
#[test]
fn section32_contrast_pairs() {
    use chimera::calculus::ts_logical as ts;
    // events on different objects
    let mut eb = EventBase::new();
    eb.append(et(9), Oid(5)); // modify(show.qty)
    eb.append(et(0), Oid(1)); // create on O1
    eb.append(et(1), Oid(2)); // modify on O2
    let w = Window::from_origin(eb.now());
    let now = eb.now();

    let inst_conj = p(9).and(p(0).iand(p(1)));
    let set_conj = p(9).and(p(0).and(p(1)));
    assert!(!ts(&inst_conj, &eb, w, now).is_active());
    assert!(ts(&set_conj, &eb, w, now).is_active());

    let inst_neg = p(9).and(p(0).iand(p(1)).inot());
    let set_neg = p(9).and(p(0).not().and(p(1).not()));
    assert!(ts(&inst_neg, &eb, w, now).is_active());
    assert!(!ts(&set_neg, &eb, w, now).is_active());

    let inst_prec = p(9).and(p(0).iprec(p(1)));
    let set_prec = p(9).and(p(0).prec(p(1)));
    assert!(!ts(&inst_prec, &eb, w, now).is_active());
    assert!(ts(&set_prec, &eb, w, now).is_active());
}

/// §3.3: `at` over the double-update example through the full engine.
#[test]
fn section33_at_formula_engine() {
    let mut chim = Interpreter::from_source(
        r#"
define class stock
  attributes quantity: integer, hits: integer default 0
end
define preserving trigger countUpdates for stock
  events modify(quantity)
  condition stock(S), at(create <= modify(quantity), S, T)
  actions modify(S.hits, S.hits + 1)
end
begin;
let s = create stock(quantity: 1);
modify s.quantity = 2;
modify s.quantity = 3;
commit;
"#,
    )
    .unwrap();
    chim.run_all().unwrap();
    let s = chim.var("s").unwrap();
    // first modify: 1 occurrence instant (+1); second modify: preserving
    // rule sees both instants (+2) → hits = 3.
    assert_eq!(chim.engine().read_attr(s, "hits").unwrap(), Value::Int(3));
}

/// §4.4: the reactivity guard on the engine level — a pure-negation rule
/// fires only when something else happens.
#[test]
fn section44_reactivity_guard() {
    let mut eb = EventBase::new();
    let def = TriggerDef::new("neg", p(0).not());
    let st = RuleState::new(&def, Timestamp::ZERO);
    for _ in 0..5 {
        eb.tick();
    }
    assert!(
        !is_triggered(&def, &st, &eb, eb.now()),
        "nothing happened: reactive, not active"
    );
    eb.append(et(1), Oid(1));
    assert!(is_triggered(&def, &st, &eb, eb.now()));
}

/// §5.1: the worked V(E) derivation, through the facade.
#[test]
fn section51_variation_set() {
    let a = p(0);
    let b = p(1);
    let c = p(2);
    let e = a
        .clone()
        .or(b.clone())
        .prec(c.clone().and(a.clone().not()))
        .or(a.clone().iand(c.clone()).ior(b.clone().iprec(a.clone()).inot()));
    let vs = VariationSet::for_expr(&e);
    assert_eq!(vs.len(), 3);
    assert_eq!(vs.get(et(0)).unwrap().sign, Sign::Any); // ΔA
    assert_eq!(vs.get(et(1)).unwrap().sign, Sign::Any); // ΔB
    assert_eq!(vs.get(et(2)).unwrap().sign, Sign::Positive); // Δ+C
}

/// §3.3 footnote: net effect via the calculus.
#[test]
fn section33_net_effect() {
    use chimera::exec::{net_created, net_deleted, net_modified};
    let class = ClassId(0);
    let attr = chimera::model::AttrId(0);
    let mut eb = EventBase::new();
    eb.append(EventType::create(class), Oid(1));
    eb.append(EventType::modify(class, attr), Oid(1));
    eb.append(EventType::delete(class), Oid(1)); // create+delete cancels
    eb.append(EventType::create(class), Oid(2));
    eb.append(EventType::modify(class, attr), Oid(3));
    let w = Window::from_origin(eb.now());
    assert_eq!(net_created(&eb, w, class), vec![Oid(2)]);
    assert_eq!(net_deleted(&eb, w, class), vec![]);
    assert_eq!(net_modified(&eb, w, class, attr), vec![Oid(3)]);
}
