//! Engine errors.

use chimera_calculus::CalculusError;
use chimera_model::ModelError;
use chimera_rules::table::RuleError;
use std::fmt;

/// Errors raised by the execution engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// Data-model error (store/schema).
    Model(ModelError),
    /// Rule-table error.
    Rule(RuleError),
    /// Event-calculus error (ill-formed formula expressions).
    Calculus(CalculusError),
    /// A condition/action referenced an undeclared variable.
    UnboundVariable(String),
    /// A condition declared the same variable twice.
    DuplicateVariable(String),
    /// An event formula bound a variable that has no class declaration.
    UndeclaredFormulaVariable(String),
    /// A term could not be evaluated (type error, arithmetic on
    /// non-numeric values, attribute access on a non-object).
    BadTerm(String),
    /// Rule processing exceeded the configured step limit (probable
    /// non-terminating rule cascade).
    RuleLimitExceeded {
        /// Configured limit.
        limit: usize,
    },
    /// Operation requires an active transaction.
    NoActiveTransaction,
    /// A transaction is already active.
    TransactionActive,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Model(e) => write!(f, "model error: {e}"),
            ExecError::Rule(e) => write!(f, "rule error: {e}"),
            ExecError::Calculus(e) => write!(f, "calculus error: {e}"),
            ExecError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            ExecError::DuplicateVariable(v) => write!(f, "duplicate variable `{v}`"),
            ExecError::UndeclaredFormulaVariable(v) => {
                write!(f, "event formula binds undeclared variable `{v}`")
            }
            ExecError::BadTerm(msg) => write!(f, "bad term: {msg}"),
            ExecError::RuleLimitExceeded { limit } => {
                write!(f, "rule processing exceeded {limit} steps (cascade loop?)")
            }
            ExecError::NoActiveTransaction => write!(f, "no active transaction"),
            ExecError::TransactionActive => write!(f, "a transaction is already active"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<ModelError> for ExecError {
    fn from(e: ModelError) -> Self {
        ExecError::Model(e)
    }
}
impl From<RuleError> for ExecError {
    fn from(e: RuleError) -> Self {
        ExecError::Rule(e)
    }
}
impl From<CalculusError> for ExecError {
    fn from(e: CalculusError) -> Self {
        ExecError::Calculus(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_froms() {
        let e: ExecError = ModelError::UnknownClass("x".into()).into();
        assert!(e.to_string().contains("model error"));
        let e: ExecError = CalculusError::NegationInAt.into();
        assert!(e.to_string().contains("calculus error"));
        assert!(ExecError::RuleLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(ExecError::UnboundVariable("S".into()).to_string().contains("`S`"));
    }
}
