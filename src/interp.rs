//! Script interpreter: runs `chimera-lang` programs against the engine.
//!
//! A program's class declarations build the schema, trigger declarations
//! install rules, and script statements drive transactions. Each script
//! statement is a non-interruptible block (transaction line); `{ … }`
//! groups several operations into a single block, exactly matching the
//! §2/§5 execution model.

use chimera_exec::{Engine, EngineConfig, ExecError, Op};
use chimera_lang::{parse_program, Item, ParseError, Program, ScriptStmt};
use chimera_model::{Oid, Value};
use chimera_rules::condition::Term;
use std::collections::HashMap;
use std::fmt;

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Syntax error.
    Parse(ParseError),
    /// Engine/runtime error.
    Exec(ExecError),
    /// A script referenced an unbound object variable.
    UnknownVar(String),
    /// `begin`/`commit`/`rollback` inside a `{ … }` block.
    TxnStmtInBlock,
    /// A script term could not be evaluated.
    BadScriptTerm(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Parse(e) => write!(f, "{e}"),
            InterpError::Exec(e) => write!(f, "{e}"),
            InterpError::UnknownVar(v) => write!(f, "unknown script variable `{v}`"),
            InterpError::TxnStmtInBlock => {
                write!(f, "transaction statements cannot appear inside a block")
            }
            InterpError::BadScriptTerm(t) => write!(f, "cannot evaluate script term `{t}`"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<ParseError> for InterpError {
    fn from(e: ParseError) -> Self {
        InterpError::Parse(e)
    }
}
impl From<ExecError> for InterpError {
    fn from(e: ExecError) -> Self {
        InterpError::Exec(e)
    }
}

/// The interpreter: a parsed program plus a live engine.
#[derive(Debug)]
pub struct Interpreter {
    engine: Engine,
    program: Program,
    next_item: usize,
    vars: HashMap<String, Oid>,
}

impl Interpreter {
    /// Parse a program, build the schema and install its triggers. Script
    /// statements are *not* yet run — call [`Interpreter::run_all`].
    pub fn from_source(src: &str) -> Result<Self, InterpError> {
        Self::from_source_with_config(src, EngineConfig::default())
    }

    /// Like [`Interpreter::from_source`] with an explicit engine config.
    pub fn from_source_with_config(
        src: &str,
        config: EngineConfig,
    ) -> Result<Self, InterpError> {
        let (program, schema) = parse_program(src)?;
        let mut engine = Engine::with_config(schema, config);
        for decl in program.triggers() {
            let def = decl.lower(engine.schema())?;
            engine.define_trigger(def)?;
        }
        Ok(Interpreter {
            engine,
            program,
            next_item: 0,
            vars: HashMap::new(),
        })
    }

    /// The engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access (for mixed programmatic/script use).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// An object variable bound by `let`.
    pub fn var(&self, name: &str) -> Option<Oid> {
        self.vars.get(name).copied()
    }

    /// Run every remaining script statement.
    pub fn run_all(&mut self) -> Result<(), InterpError> {
        while self.next_item < self.program.items.len() {
            self.step()?;
        }
        Ok(())
    }

    /// Run the next program item (class/trigger items are already applied
    /// at load time and are skipped).
    pub fn step(&mut self) -> Result<bool, InterpError> {
        let Some(item) = self.program.items.get(self.next_item).cloned() else {
            return Ok(false);
        };
        self.next_item += 1;
        if let Item::Stmt(stmt) = item {
            self.exec_stmt(&stmt)?;
        }
        Ok(true)
    }

    fn exec_stmt(&mut self, stmt: &ScriptStmt) -> Result<(), InterpError> {
        match stmt {
            ScriptStmt::Begin => self.engine.begin()?,
            ScriptStmt::Commit => self.engine.commit()?,
            ScriptStmt::Rollback => self.engine.rollback()?,
            ScriptStmt::Raise { class, channel } => {
                let cid = self
                    .engine
                    .schema()
                    .class_by_name(class)
                    .map_err(|e| InterpError::Exec(e.into()))?;
                // external occurrences carry the object-less pseudo-OID
                self.engine
                    .raise_external(&[(cid, *channel, chimera_model::Oid(0))])?;
            }
            ScriptStmt::Block(stmts) => {
                let mut ops = Vec::new();
                let mut pending: Vec<Option<String>> = Vec::new();
                for s in stmts {
                    self.lower_op(s, &mut ops, &mut pending)?;
                }
                let occs = self.engine.exec_block(&ops)?;
                // bind let-variables to the creations, in op order
                let mut creations = occs
                    .iter()
                    .filter(|o| matches!(o.ty.kind, chimera_events::EventKind::Create));
                for binding in pending.into_iter().flatten() {
                    if let Some(occ) = creations.next() {
                        self.vars.insert(binding, occ.oid);
                    }
                }
            }
            single => {
                let mut ops = Vec::new();
                let mut pending = Vec::new();
                self.lower_op(single, &mut ops, &mut pending)?;
                let occs = self.engine.exec_block(&ops)?;
                if let Some(Some(binding)) = pending.into_iter().next() {
                    if let Some(occ) = occs
                        .iter()
                        .find(|o| matches!(o.ty.kind, chimera_events::EventKind::Create))
                    {
                        self.vars.insert(binding, occ.oid);
                    }
                }
            }
        }
        Ok(())
    }

    /// Lower a script statement to engine ops (creations record their
    /// optional `let` binding in `pending`).
    fn lower_op(
        &self,
        stmt: &ScriptStmt,
        ops: &mut Vec<Op>,
        pending: &mut Vec<Option<String>>,
    ) -> Result<(), InterpError> {
        match stmt {
            ScriptStmt::Create {
                binding,
                class,
                inits,
            } => {
                let schema = self.engine.schema();
                let cid = schema
                    .class_by_name(class)
                    .map_err(|e| InterpError::Exec(e.into()))?;
                let mut resolved = Vec::with_capacity(inits.len());
                for (attr, term) in inits {
                    let aid = schema
                        .attr_by_name(cid, attr)
                        .map_err(|e| InterpError::Exec(e.into()))?;
                    resolved.push((aid, self.eval_script_term(term)?));
                }
                ops.push(Op::Create {
                    class: cid,
                    inits: resolved,
                });
                pending.push(binding.clone());
            }
            ScriptStmt::Modify { var, attr, value } => {
                let oid = self.lookup(var)?;
                let class = self.engine.get_object(oid)?.class;
                let aid = self
                    .engine
                    .schema()
                    .attr_by_name(class, attr)
                    .map_err(|e| InterpError::Exec(e.into()))?;
                ops.push(Op::Modify {
                    oid,
                    attr: aid,
                    value: self.eval_script_term(value)?,
                });
            }
            ScriptStmt::Delete { var } => ops.push(Op::Delete {
                oid: self.lookup(var)?,
            }),
            ScriptStmt::Specialize { var, target } => {
                let cid = self
                    .engine
                    .schema()
                    .class_by_name(target)
                    .map_err(|e| InterpError::Exec(e.into()))?;
                ops.push(Op::Specialize {
                    oid: self.lookup(var)?,
                    class: cid,
                });
            }
            ScriptStmt::Generalize { var, target } => {
                let cid = self
                    .engine
                    .schema()
                    .class_by_name(target)
                    .map_err(|e| InterpError::Exec(e.into()))?;
                ops.push(Op::Generalize {
                    oid: self.lookup(var)?,
                    class: cid,
                });
            }
            ScriptStmt::Select { class } => {
                let cid = self
                    .engine
                    .schema()
                    .class_by_name(class)
                    .map_err(|e| InterpError::Exec(e.into()))?;
                ops.push(Op::Select {
                    class: cid,
                    deep: true,
                });
            }
            ScriptStmt::Begin | ScriptStmt::Commit | ScriptStmt::Rollback => {
                return Err(InterpError::TxnStmtInBlock)
            }
            // external delivery is its own block by definition (§5: the
            // Event Handler observes blocks, and a raise IS a block)
            ScriptStmt::Raise { .. } => return Err(InterpError::TxnStmtInBlock),
            ScriptStmt::Block(_) => return Err(InterpError::TxnStmtInBlock),
        }
        Ok(())
    }

    fn lookup(&self, var: &str) -> Result<Oid, InterpError> {
        self.vars
            .get(var)
            .copied()
            .ok_or_else(|| InterpError::UnknownVar(var.to_owned()))
    }

    /// Evaluate a script term: constants, `var.attr` reads over bound
    /// objects, and arithmetic.
    fn eval_script_term(&self, term: &Term) -> Result<Value, InterpError> {
        match term {
            Term::Const(v) => Ok(v.clone()),
            Term::Var(v) => Ok(Value::Ref(self.lookup(v)?)),
            Term::Attr { var, attr } => {
                let oid = self.lookup(var)?;
                Ok(self.engine.read_attr(oid, attr)?)
            }
            Term::Add(a, b) => self.arith(term, a, b, Value::add),
            Term::Sub(a, b) => self.arith(term, a, b, Value::sub),
            Term::Mul(a, b) => self.arith(term, a, b, Value::mul),
        }
    }

    fn arith(
        &self,
        whole: &Term,
        a: &Term,
        b: &Term,
        op: impl Fn(&Value, &Value) -> Option<Value>,
    ) -> Result<Value, InterpError> {
        let va = self.eval_script_term(a)?;
        let vb = self.eval_script_term(b)?;
        op(&va, &vb).ok_or_else(|| InterpError::BadScriptTerm(whole.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROGRAM: &str = r#"
define class stock
  attributes quantity: integer,
             max_quantity: integer default 100,
             min_quantity: integer default 10
end
define class stockOrder
  attributes del_quantity: integer
end

define immediate trigger checkStockQty for stock
  events create , modify(quantity)
  condition stock(S), occurred(create ,= modify(quantity), S),
            S.quantity > S.max_quantity
  actions modify(S.quantity, S.max_quantity)
end

begin;
let s1 = create stock(quantity: 250);
let s2 = create stock(quantity: 50);
commit;
"#;

    #[test]
    fn quickstart_program_runs() {
        let mut i = Interpreter::from_source(PROGRAM).unwrap();
        i.run_all().unwrap();
        let s1 = i.var("s1").unwrap();
        let s2 = i.var("s2").unwrap();
        assert_eq!(i.engine().read_attr(s1, "quantity").unwrap(), Value::Int(100));
        assert_eq!(i.engine().read_attr(s2, "quantity").unwrap(), Value::Int(50));
        assert_eq!(i.engine().stats().commits, 1);
    }

    #[test]
    fn block_groups_ops_into_one_block() {
        let src = r#"
define class stock attributes quantity: integer end
begin;
{ let a = create stock(quantity: 1); let b = create stock(quantity: 2); }
commit;
"#;
        let mut i = Interpreter::from_source(src).unwrap();
        i.run_all().unwrap();
        assert_eq!(i.engine().stats().blocks, 1);
        let a = i.var("a").unwrap();
        let b = i.var("b").unwrap();
        assert_eq!(i.engine().read_attr(a, "quantity").unwrap(), Value::Int(1));
        assert_eq!(i.engine().read_attr(b, "quantity").unwrap(), Value::Int(2));
    }

    #[test]
    fn modify_delete_and_terms() {
        let src = r#"
define class stock attributes quantity: integer end
begin;
let a = create stock(quantity: 5);
modify a.quantity = a.quantity * 2 + 1;
commit;
"#;
        let mut i = Interpreter::from_source(src).unwrap();
        i.run_all().unwrap();
        let a = i.var("a").unwrap();
        // precedence: additive over multiplicative → (a*2)+1 = 11
        assert_eq!(i.engine().read_attr(a, "quantity").unwrap(), Value::Int(11));
    }

    #[test]
    fn rollback_undoes() {
        let src = r#"
define class stock attributes quantity: integer end
begin;
let a = create stock(quantity: 5);
rollback;
"#;
        let mut i = Interpreter::from_source(src).unwrap();
        i.run_all().unwrap();
        let stock = i.engine().schema().class_by_name("stock").unwrap();
        assert!(i.engine().extent(stock).is_empty());
    }

    #[test]
    fn unknown_var_error() {
        let src = r#"
define class stock attributes quantity: integer end
begin;
modify ghost.quantity = 1;
"#;
        let mut i = Interpreter::from_source(src).unwrap();
        assert!(matches!(
            i.run_all(),
            Err(InterpError::UnknownVar(v)) if v == "ghost"
        ));
    }

    #[test]
    fn txn_stmt_in_block_rejected() {
        let src = r#"
define class stock attributes quantity: integer end
begin;
{ commit; }
"#;
        let mut i = Interpreter::from_source(src).unwrap();
        assert_eq!(i.run_all(), Err(InterpError::TxnStmtInBlock));
    }

    #[test]
    fn raise_delivers_external_event() {
        // a deadline-style trigger on an external channel, driven from
        // the script: `raise clock#1;`
        let src = "
define class clock end
define class task
  attributes done: integer default 0
end
define trigger deadline
  events external(clock#1) + -modify(task.done)
  condition task(T)
  actions modify(T.done, 0 - 1)
end
begin;
let t1 = create task();
raise clock#1;
commit;
";
        let mut i = Interpreter::from_source(src).unwrap();
        i.run_all().unwrap();
        let t1 = i.var("t1").unwrap();
        // the tick arrived with no completion in the window: escalated
        assert_eq!(
            i.engine().read_attr(t1, "done").unwrap(),
            Value::Int(-1)
        );
    }

    #[test]
    fn raise_inside_block_is_rejected() {
        let src = "
define class clock end
begin;
{ raise clock#1; }
commit;
";
        let mut i = Interpreter::from_source(src).unwrap();
        assert_eq!(i.run_all(), Err(InterpError::TxnStmtInBlock));
    }

    #[test]
    fn step_by_step_execution() {
        let mut i = Interpreter::from_source(PROGRAM).unwrap();
        let mut steps = 0;
        while i.step().unwrap() {
            steps += 1;
        }
        assert!(steps >= 4, "class+trigger items plus script statements");
        assert!(!i.step().unwrap());
    }
}
