//! PERF-9 — wire throughput: events/sec through the `chimera-net` TCP
//! front-end over loopback, at 1/16/256-event blocks × 1/16/256
//! tenants.
//!
//! One benchmark iteration is one full service session: bind a server
//! over a fresh sharded runtime, connect a client, pipeline every
//! tenant's blocks through `SubmitBlock` (each answered by its per-job
//! completion), drain the completions, verify the accounting, shut the
//! server down. That makes the number an end-to-end one — framing,
//! syscalls, queueing, engine work, and completion replies all
//! included; compare against `parallel.rs` (same engine work, no wire)
//! to read the protocol overhead.
//!
//! `cargo bench -p chimera-bench --bench net`; wired into
//! `CHIMERA_BENCH_JSON` like every other target.

use chimera_model::{AttrDef, AttrType, Schema, SchemaBuilder};
use chimera_net::{Client, ExternalEvent, Server, ServerConfig};
use chimera_runtime::{Backpressure, Runtime, RuntimeConfig, TenantId};
use chimera_rules::TriggerDef;
use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_exec::EngineConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn measure_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class("item", None, vec![AttrDef::new("qty", AttrType::Integer)])
        .unwrap();
    b.build()
}

/// The static_opt-shaped rule table (16 rule channels, conjunction +
/// precedence mix) so check rounds do real plan work per block.
fn rules(schema: &Schema, nrules: usize) -> Vec<TriggerDef> {
    let item = schema.class_by_name("item").unwrap();
    let p = |n: u32| EventExpr::prim(EventType::external(item, n));
    (0..nrules)
        .map(|i| {
            let a = 1000 + (i as u32 % 16);
            let b = 1000 + ((i as u32 + 7) % 16);
            let expr = if i % 2 == 0 { p(a).and(p(b)) } else { p(a).prec(p(b)) };
            TriggerDef::new(format!("r{i}"), expr)
        })
        .collect()
}

/// One tenant block: `per_block` external events, ~50% on rule channels.
fn block(tenant: u64, b: u64, per_block: usize) -> Vec<ExternalEvent> {
    let mut k = tenant.wrapping_mul(0x9E37_79B9).wrapping_add(b);
    (0..per_block)
        .map(|_| {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = (k >> 33) % 100;
            let ch = if roll < 50 {
                1000 + ((k >> 13) % 16) as u32
            } else {
                ((k >> 13) % 16) as u32
            };
            ExternalEvent {
                class: 0,
                channel: ch,
                oid: (k >> 7) % 32 + 1,
            }
        })
        .collect()
}

/// One full service session over loopback; returns events fed.
fn run_session(
    schema: &Schema,
    defs: &[TriggerDef],
    tenants: u64,
    blocks: u64,
    per_block: usize,
) -> u64 {
    let runtime = Arc::new(
        Runtime::new(
            schema.clone(),
            defs.to_vec(),
            RuntimeConfig {
                shards: 4,
                queue_capacity: 128,
                backpressure: Backpressure::Block,
                engine: EngineConfig {
                    max_rule_steps: usize::MAX / 2,
                    ..EngineConfig::default()
                },
                ..RuntimeConfig::default()
            },
        )
        .expect("valid rule set"),
    );
    let server = Server::bind("127.0.0.1:0", runtime, ServerConfig::default())
        .expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for t in 0..tenants {
        client.begin(t).unwrap();
    }
    // interleave tenants per block so every shard's queue stays fed
    for b in 0..blocks {
        for t in 0..tenants {
            client
                .raise_external(t, block(t, b, per_block))
                .unwrap();
        }
    }
    let completions = client.drain().unwrap();
    assert!(completions.iter().all(|d| d.outcome.is_done()));
    let stats = client.stats().unwrap();
    assert_eq!(stats.jobs_processed, stats.jobs_submitted);
    assert_eq!(stats.job_errors + stats.job_panics, 0);
    let processed = server.runtime().with_tenant(TenantId(0), |e| e.stats().events);
    assert!(processed.is_some());
    server.shutdown();
    tenants * blocks * per_block as u64
}

fn bench_net(c: &mut Criterion) {
    let schema = schema();
    let nrules = if measure_mode() { 100 } else { 10 };
    let defs = rules(&schema, nrules);
    let block_sizes: &[usize] = if measure_mode() { &[1, 16, 256] } else { &[1, 16] };
    let tenant_counts: &[u64] = if measure_mode() { &[1, 16, 256] } else { &[1, 4] };
    for &per_block in block_sizes {
        let mut g = c.benchmark_group(format!("net_b{per_block}"));
        for &tenants in tenant_counts {
            // size each session to a few thousand events so a measured
            // pass stays near the shim's 200 ms target regardless of
            // the matrix point
            let blocks = if measure_mode() {
                (4096 / (tenants as usize * per_block)).max(1) as u64
            } else {
                2
            };
            g.throughput(Throughput::Elements(tenants * blocks * per_block as u64));
            g.bench_with_input(
                BenchmarkId::new("tenants", tenants),
                &tenants,
                |b, &tenants| {
                    b.iter(|| {
                        black_box(run_session(&schema, &defs, tenants, blocks, per_block))
                    });
                },
            );
        }
        g.finish();
    }
}

/// The self-reported summary: loopback events/sec at the matrix corners,
/// next to host parallelism (this is an end-to-end number; a single-core
/// host serializes client, server threads and shard workers).
fn report_wire_throughput(c: &mut Criterion) {
    let _ = c;
    let schema = schema();
    if !measure_mode() {
        let defs = rules(&schema, 10);
        black_box(run_session(&schema, &defs, 2, 1, 4));
        return;
    }
    let defs = rules(&schema, 100);
    let point = |tenants: u64, per_block: usize| {
        let blocks = (8192 / (tenants as usize * per_block)).max(1) as u64;
        run_session(&schema, &defs, tenants, blocks, per_block); // warmup
        let start = Instant::now();
        let mut events = 0u64;
        for _ in 0..3 {
            events += run_session(&schema, &defs, tenants, blocks, per_block);
        }
        events as f64 / start.elapsed().as_secs_f64()
    };
    let small = point(1, 1);
    let mid = point(16, 16);
    let big = point(256, 256);
    println!(
        "net loopback throughput, 100 rules: 1t x 1-ev blocks {small:.0} ev/s \
         (per-RTT bound), 16t x 16-ev {mid:.0} ev/s, 256t x 256-ev {big:.0} ev/s \
         (host parallelism {})",
        std::thread::available_parallelism().map_or(0, |n| n.get()),
    );
}

criterion_group!(benches, bench_net, report_wire_throughput);
criterion_main!(benches);
