//! The tenant-tagged, group-commit job log.
//!
//! Where [`crate::wal`] is *physical* redo for one engine's store, this
//! log is *logical* command logging for a whole runtime shard: every job
//! a shard worker is about to execute is staged as one record, and a
//! whole drained queue batch is made durable with **one** fsync — the
//! group commit that amortizes the ~ms-scale sync across every job
//! already sitting in the shard's bounded queue. The engine is
//! deterministic given a job sequence (proved by
//! `tests/runtime_equivalence.rs`), so replaying the log through fresh
//! engines reproduces every tenant bit-identically — event logs,
//! consumption windows, error bookkeeping and open transactions
//! included.
//!
//! Unlike the cold metadata files (`meta.chi`, `snap.chi` — text, read
//! once at startup), the job log sits on the ingestion hot path and its
//! byte volume is paid again at every fsync, so records are **binary**:
//! varint-packed external events cost ~4 bytes where the decimal text
//! rendering cost ~10, and on a bandwidth-bound disk that ratio is the
//! durable-throughput ratio. One group per sync:
//!
//! ```text
//! 'G' | seq: u64 LE | body_len: u32 LE | body | lane_fnv(body): u64 LE
//! ```
//!
//! where `body` is a FIFO run of `tenant: varint | payload_len: varint |
//! payload` records (see [`JobRecord::encode_into`] for the payload
//! grammar).
//!
//! Torn-tail handling is the house rule (same as the redo WAL): a group
//! is accepted only when its frame is complete, the sequence is dense,
//! and the checksum verifies; anything else cuts the group and the rest
//! of the file. The ack path above this layer only answers a job after
//! its group synced, so an acknowledged job is never in a torn group.

use crate::codec::{decode_value, encode_value};
use crate::{PersistError, Result};
use chimera_exec::Op;
use chimera_model::{AttrId, ClassId, Oid, Value};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Frame constants: magic byte, header (magic + seq + body_len) and
/// trailer (checksum) sizes.
const GROUP_MAGIC: u8 = b'G';
const HEADER_LEN: usize = 1 + 8 + 4;
const TRAILER_LEN: usize = 8;

/// The durable form of one runtime job — `chimera_runtime::Job` minus
/// the test-only gate, defined here so the persistence layer stays below
/// the runtime in the crate graph. Trigger definitions travel as source
/// text (re-parsed deterministically at replay), not as lowered
/// structures.
#[derive(Debug, Clone, PartialEq)]
pub enum JobRecord {
    /// `Engine::begin`.
    Begin,
    /// `Engine::exec_block` — one transaction line.
    ExecBlock(Vec<Op>),
    /// `Engine::raise_external` — `(class, channel, oid)` occurrences.
    RaiseExternal(Vec<(ClassId, u32, Oid)>),
    /// `Engine::commit`.
    Commit,
    /// `Engine::rollback`.
    Rollback,
    /// Tenant-local trigger definitions as concrete source text.
    DefineTriggerSource(String),
}

/// Payload tags.
const JOB_BEGIN: u8 = 0x01;
const JOB_COMMIT: u8 = 0x02;
const JOB_ROLLBACK: u8 = 0x03;
const JOB_EXEC: u8 = 0x04;
const JOB_RAISE: u8 = 0x05;
const JOB_TRIGSRC: u8 = 0x06;

/// Op tags inside an `ExecBlock` payload.
const OP_CREATE: u8 = 0x10;
const OP_MODIFY: u8 = 0x11;
const OP_DELETE: u8 = 0x12;
const OP_SPECIALIZE: u8 = 0x13;
const OP_GENERALIZE: u8 = 0x14;
const OP_SELECT: u8 = 0x15;

impl JobRecord {
    /// Encode as a standalone payload (no framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Append the payload encoding to `out` — the staging hot path (a
    /// 256-event block is 256 event items; every byte here is written
    /// *and* fsynced, so the grammar is varint-packed binary):
    ///
    /// ```text
    /// payload   := 0x01 | 0x02 | 0x03                      # begin/commit/rollback
    ///            | 0x04 nops:varint op*                    # exec block
    ///            | 0x05 nevents:varint (class chan oid)*   # raise, all varint
    ///            | 0x06 utf8-source-bytes                  # trigger source
    /// op        := 0x10 class ninits (attr value)*         # create
    ///            | 0x11 oid attr value                     # modify
    ///            | 0x12 oid | 0x13 oid class | 0x14 oid class
    ///            | 0x15 class deep:u8
    /// value     := len:varint utf8 of crate::codec::encode_value
    /// ```
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            JobRecord::Begin => out.push(JOB_BEGIN),
            JobRecord::Commit => out.push(JOB_COMMIT),
            JobRecord::Rollback => out.push(JOB_ROLLBACK),
            JobRecord::ExecBlock(ops) => {
                out.push(JOB_EXEC);
                push_varint(out, ops.len() as u64);
                for op in ops {
                    encode_op(out, op);
                }
            }
            JobRecord::RaiseExternal(evs) => {
                out.push(JOB_RAISE);
                push_varint(out, evs.len() as u64);
                for (class, chan, oid) in evs {
                    push_varint(out, class.0 as u64);
                    push_varint(out, *chan as u64);
                    push_varint(out, oid.0);
                }
            }
            JobRecord::DefineTriggerSource(src) => {
                out.push(JOB_TRIGSRC);
                out.extend_from_slice(src.as_bytes());
            }
        }
    }

    /// Decode a payload produced by [`JobRecord::encode`]. The whole
    /// slice must be consumed — trailing bytes are corruption.
    pub fn decode(payload: &[u8]) -> Result<JobRecord> {
        let mut cur = Cur::new(payload);
        let job = match cur.u8()? {
            JOB_BEGIN => JobRecord::Begin,
            JOB_COMMIT => JobRecord::Commit,
            JOB_ROLLBACK => JobRecord::Rollback,
            JOB_EXEC => {
                let n = cur.varint()? as usize;
                let mut ops = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    ops.push(decode_op(&mut cur)?);
                }
                JobRecord::ExecBlock(ops)
            }
            JOB_RAISE => {
                let n = cur.varint()? as usize;
                let mut evs = Vec::with_capacity(n.min(65536));
                for _ in 0..n {
                    let class = ClassId(cur.varint()? as u32);
                    let chan = cur.varint()? as u32;
                    let oid = Oid(cur.varint()?);
                    evs.push((class, chan, oid));
                }
                JobRecord::RaiseExternal(evs)
            }
            JOB_TRIGSRC => {
                let src = std::str::from_utf8(cur.rest())
                    .map_err(|_| corrupt("trigger source is not UTF-8"))?;
                return Ok(JobRecord::DefineTriggerSource(src.to_string()));
            }
            t => return Err(corrupt(&format!("unknown job tag 0x{t:02x}"))),
        };
        if !cur.at_end() {
            return Err(corrupt("trailing bytes after job payload"));
        }
        Ok(job)
    }
}

fn corrupt(what: &str) -> PersistError {
    PersistError::Corrupt(format!("job record: {what}"))
}

/// LEB128 unsigned varint.
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

/// Bounds-checked little-endian cursor over a payload slice.
struct Cur<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cur { bytes, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| corrupt("unexpected end of payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(corrupt("varint overruns 64 bits"))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| corrupt("unexpected end of payload"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        s
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_op(out: &mut Vec<u8>, op: &Op) {
    match op {
        Op::Create { class, inits } => {
            out.push(OP_CREATE);
            push_varint(out, class.0 as u64);
            push_varint(out, inits.len() as u64);
            for (attr, value) in inits {
                push_varint(out, attr.0 as u64);
                encode_val(out, value);
            }
        }
        Op::Modify { oid, attr, value } => {
            out.push(OP_MODIFY);
            push_varint(out, oid.0);
            push_varint(out, attr.0 as u64);
            encode_val(out, value);
        }
        Op::Delete { oid } => {
            out.push(OP_DELETE);
            push_varint(out, oid.0);
        }
        Op::Specialize { oid, class } => {
            out.push(OP_SPECIALIZE);
            push_varint(out, oid.0);
            push_varint(out, class.0 as u64);
        }
        Op::Generalize { oid, class } => {
            out.push(OP_GENERALIZE);
            push_varint(out, oid.0);
            push_varint(out, class.0 as u64);
        }
        Op::Select { class, deep } => {
            out.push(OP_SELECT);
            push_varint(out, class.0 as u64);
            out.push(u8::from(*deep));
        }
    }
}

fn decode_op(cur: &mut Cur<'_>) -> Result<Op> {
    Ok(match cur.u8()? {
        OP_CREATE => {
            let class = ClassId(cur.varint()? as u32);
            let n = cur.varint()? as usize;
            let mut inits = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let attr = AttrId(cur.varint()? as u32);
                inits.push((attr, decode_val(cur)?));
            }
            Op::Create { class, inits }
        }
        OP_MODIFY => Op::Modify {
            oid: Oid(cur.varint()?),
            attr: AttrId(cur.varint()? as u32),
            value: decode_val(cur)?,
        },
        OP_DELETE => Op::Delete {
            oid: Oid(cur.varint()?),
        },
        OP_SPECIALIZE => Op::Specialize {
            oid: Oid(cur.varint()?),
            class: ClassId(cur.varint()? as u32),
        },
        OP_GENERALIZE => Op::Generalize {
            oid: Oid(cur.varint()?),
            class: ClassId(cur.varint()? as u32),
        },
        OP_SELECT => {
            let class = ClassId(cur.varint()? as u32);
            let deep = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(corrupt("bad select depth flag")),
            };
            Op::Select { class, deep }
        }
        t => return Err(corrupt(&format!("unknown op tag 0x{t:02x}"))),
    })
}

/// Values ride as length-prefixed [`crate::codec`] text — exec blocks
/// are orders of magnitude rarer than external events, so they borrow
/// the cold codec rather than a second value grammar.
fn encode_val(out: &mut Vec<u8>, v: &Value) {
    let text = encode_value(v);
    push_varint(out, text.len() as u64);
    out.extend_from_slice(text.as_bytes());
}

fn decode_val(cur: &mut Cur<'_>) -> Result<Value> {
    let len = cur.varint()? as usize;
    let tok = std::str::from_utf8(cur.take(len)?)
        .map_err(|_| corrupt("value token is not UTF-8"))?;
    decode_value(tok)
}

/// One durable group: the jobs that shared one fsync.
#[derive(Debug, Clone, PartialEq)]
pub struct JobGroup {
    /// Group sequence number (dense, continuing the snapshot's).
    pub seq: u64,
    /// `(tenant, job)` in execution order.
    pub jobs: Vec<(u64, JobRecord)>,
}

impl JobGroup {
    /// On-disk bytes of this group (header, records, checksum).
    /// Useful to tests computing group byte boundaries in a log file.
    pub fn render(&self) -> Vec<u8> {
        let mut body = Vec::new();
        for (tenant, job) in &self.jobs {
            stage_record(&mut body, *tenant, job, &mut Vec::new());
        }
        frame_group(self.seq, &body)
    }
}

/// Assemble the full on-disk frame for one group body.
fn frame_group(seq: u64, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + TRAILER_LEN);
    out.push(GROUP_MAGIC);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&lane_fnv(body).to_le_bytes());
    out
}

/// Append one `tenant | payload_len | payload` record to `body`,
/// using `scratch` to learn the payload length without allocating.
fn stage_record(body: &mut Vec<u8>, tenant: u64, job: &JobRecord, scratch: &mut Vec<u8>) {
    scratch.clear();
    job.encode_into(scratch);
    push_varint(body, tenant);
    push_varint(body, scratch.len() as u64);
    body.extend_from_slice(scratch);
}

/// FNV-1a driven over 8-byte little-endian lanes (zero-padded tail)
/// with the length folded in at the end. 8× fewer serial multiplies
/// than byte-wise [`crate::fnv1a`] — this runs over every staged job
/// byte on the group-commit hot path. The zero-padding is why the
/// length fold matters: without it, trailing NULs would be invisible.
fn lane_fnv(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h ^= u64::from_le_bytes(tail);
        h = h.wrapping_mul(PRIME);
    }
    h ^ bytes.len() as u64
}

/// Result of reading a job log file.
#[derive(Debug, Clone, PartialEq)]
pub struct JobLogOutcome {
    /// Every fully durable group, in sequence order.
    pub groups: Vec<JobGroup>,
    /// Bytes of the valid prefix (where a torn tail, if any, starts).
    pub valid_len: u64,
    /// Description of the torn tail, when one was cut.
    pub torn: Option<String>,
}

/// The group-commit job log file: stage any number of jobs, then make
/// them durable together with one [`JobLog::sync`].
#[derive(Debug)]
pub struct JobLog {
    path: PathBuf,
    file: BufWriter<File>,
    next_seq: u64,
    staged: Vec<u8>,
    scratch: Vec<u8>,
    staged_jobs: u32,
}

impl JobLog {
    /// Open (or create) the log for appending; `next_seq` must continue
    /// the sequence read back by [`JobLog::read`].
    pub fn open_append(path: &Path, next_seq: u64) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JobLog {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            next_seq,
            staged: Vec::new(),
            scratch: Vec::new(),
            staged_jobs: 0,
        })
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next synced group will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Jobs staged into the open group (not yet durable).
    pub fn staged_jobs(&self) -> u32 {
        self.staged_jobs
    }

    /// Stage one job into the open group. Cheap: an in-memory append,
    /// no I/O until [`JobLog::sync`].
    pub fn stage(&mut self, tenant: u64, job: &JobRecord) {
        stage_record(&mut self.staged, tenant, job, &mut self.scratch);
        self.staged_jobs += 1;
    }

    /// Group commit: write the staged jobs as one checksummed group,
    /// flush, and fsync — the single sync the whole batch shares.
    /// Returns the group's sequence number, or `None` when nothing was
    /// staged (no I/O at all).
    pub fn sync(&mut self) -> Result<Option<u64>> {
        if self.staged_jobs == 0 {
            return Ok(None);
        }
        if self.staged.len() > u32::MAX as usize {
            return Err(PersistError::Corrupt("job group exceeds 4 GiB".into()));
        }
        let seq = self.next_seq;
        let mut header = [0u8; HEADER_LEN];
        header[0] = GROUP_MAGIC;
        header[1..9].copy_from_slice(&seq.to_le_bytes());
        header[9..13].copy_from_slice(&(self.staged.len() as u32).to_le_bytes());
        let crc = lane_fnv(&self.staged);
        self.file.write_all(&header)?;
        self.file.write_all(&self.staged)?;
        self.file.write_all(&crc.to_le_bytes())?;
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.staged.clear();
        self.staged_jobs = 0;
        self.next_seq += 1;
        Ok(Some(seq))
    }

    /// Truncate the log to empty (after a snapshot compaction) and
    /// restart the sequence at `next_seq`. Staged jobs survive — they
    /// belong to the next group.
    pub fn truncate(&mut self, next_seq: u64) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().set_len(0)?;
        self.file.get_ref().sync_data()?;
        self.next_seq = next_seq;
        Ok(())
    }

    /// Read and verify a job log. Never fails on a torn tail — the valid
    /// prefix is returned and the tail described in
    /// [`JobLogOutcome::torn`]. A missing file reads as empty.
    pub fn read(path: &Path, first_seq: u64) -> Result<JobLogOutcome> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }

        let mut groups = Vec::new();
        let mut valid_len = 0u64;
        let mut expected_seq = first_seq;
        let mut pos = 0usize;
        let mut torn = None;

        while pos < bytes.len() {
            let rest = &bytes[pos..];
            if rest.len() < HEADER_LEN {
                torn = Some("truncated group header".into());
                break;
            }
            if rest[0] != GROUP_MAGIC {
                torn = Some(format!("bad group magic 0x{:02x}", rest[0]));
                break;
            }
            let seq = u64::from_le_bytes(rest[1..9].try_into().unwrap());
            if seq != expected_seq {
                torn = Some(format!(
                    "sequence gap: expected {expected_seq}, found {seq}"
                ));
                break;
            }
            let body_len = u32::from_le_bytes(rest[9..13].try_into().unwrap()) as usize;
            let frame_len = HEADER_LEN + body_len + TRAILER_LEN;
            if rest.len() < frame_len {
                torn = Some(format!("group {seq} truncated before checksum"));
                break;
            }
            let body = &rest[HEADER_LEN..HEADER_LEN + body_len];
            let crc = u64::from_le_bytes(
                rest[HEADER_LEN + body_len..frame_len].try_into().unwrap(),
            );
            if crc != lane_fnv(body) {
                torn = Some(format!("checksum mismatch for group {seq}"));
                break;
            }
            match parse_body(body) {
                Ok(jobs) => groups.push(JobGroup { seq, jobs }),
                Err(e) => {
                    // the checksum verified, so this is a writer bug or
                    // targeted corruption, not a torn write — but the
                    // recovery contract is the same: cut here
                    torn = Some(format!("bad job record in group {seq}: {e}"));
                    break;
                }
            }
            pos += frame_len;
            valid_len = pos as u64;
            expected_seq += 1;
        }

        Ok(JobLogOutcome {
            groups,
            valid_len,
            torn,
        })
    }

    /// Drop the torn tail in place, leaving only the valid prefix.
    pub fn repair(path: &Path, outcome: &JobLogOutcome) -> Result<()> {
        if outcome.torn.is_some() {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(outcome.valid_len)?;
            f.sync_data()?;
        }
        Ok(())
    }
}

/// Parse a checksum-verified group body into `(tenant, job)` records.
fn parse_body(body: &[u8]) -> Result<Vec<(u64, JobRecord)>> {
    let mut cur = Cur::new(body);
    let mut jobs = Vec::new();
    while !cur.at_end() {
        let tenant = cur.varint()?;
        let len = cur.varint()? as usize;
        let payload = cur.take(len)?;
        jobs.push((tenant, JobRecord::decode(payload)?));
    }
    Ok(jobs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::Value;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("chimera-persist-joblog-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.log", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn sample_jobs() -> Vec<JobRecord> {
        vec![
            JobRecord::Begin,
            JobRecord::ExecBlock(vec![
                Op::Create {
                    class: ClassId(0),
                    inits: vec![(AttrId(0), Value::Int(5)), (AttrId(1), Value::Null)],
                },
                Op::Modify {
                    oid: Oid(3),
                    attr: AttrId(1),
                    value: Value::Str("a b,c\n%".into()),
                },
                Op::Delete { oid: Oid(9) },
                Op::Specialize {
                    oid: Oid(1),
                    class: ClassId(2),
                },
                Op::Generalize {
                    oid: Oid(1),
                    class: ClassId(0),
                },
                Op::Select {
                    class: ClassId(1),
                    deep: true,
                },
            ]),
            JobRecord::RaiseExternal(vec![(ClassId(0), 1, Oid(0)), (ClassId(2), 7, Oid(4))]),
            JobRecord::Commit,
            JobRecord::Rollback,
            JobRecord::DefineTriggerSource(
                "define trigger t\n  events create(stock)\n  actions create(stock)\nend".into(),
            ),
        ]
    }

    #[test]
    fn job_records_round_trip() {
        for job in sample_jobs() {
            let bytes = job.encode();
            assert_eq!(JobRecord::decode(&bytes).unwrap(), job, "{job:?}");
        }
    }

    #[test]
    fn compact_external_events() {
        // the hot record: small ids must cost ~4 bytes per event, not
        // the ~10 of a decimal text rendering
        let evs: Vec<_> = (0..256u64)
            .map(|i| (ClassId(0), 1000 + (i % 16) as u32, Oid(i % 32 + 1)))
            .collect();
        let bytes = JobRecord::RaiseExternal(evs.clone()).encode();
        assert!(
            bytes.len() <= 4 + 4 * evs.len(),
            "raise payload too fat: {} bytes for {} events",
            bytes.len(),
            evs.len()
        );
        assert_eq!(
            JobRecord::decode(&bytes).unwrap(),
            JobRecord::RaiseExternal(evs)
        );
    }

    #[test]
    fn malformed_job_payloads_are_rejected() {
        for (name, payload) in [
            ("empty", vec![]),
            ("unknown tag", vec![0xFFu8]),
            ("exec: missing op", vec![JOB_EXEC, 0x01]),
            ("exec: bad op tag", vec![JOB_EXEC, 0x01, 0x7f]),
            ("raise: truncated events", vec![JOB_RAISE, 0x02, 0x00]),
            ("trailing bytes", vec![JOB_BEGIN, 0x00]),
            ("trigsrc: bad utf8", vec![JOB_TRIGSRC, 0xFF]),
            ("unterminated varint", vec![JOB_RAISE, 0x80]),
        ] {
            assert!(JobRecord::decode(&payload).is_err(), "`{name}` must fail");
        }
    }

    #[test]
    fn group_commit_round_trip_and_empty_sync() {
        let path = tmp("round");
        let mut log = JobLog::open_append(&path, 1).unwrap();
        assert_eq!(log.sync().unwrap(), None); // nothing staged: no I/O
        log.stage(7, &JobRecord::Begin);
        log.stage(7, &JobRecord::Commit);
        log.stage(9, &JobRecord::Rollback);
        assert_eq!(log.staged_jobs(), 3);
        assert_eq!(log.sync().unwrap(), Some(1));
        log.stage(7, &JobRecord::Begin);
        assert_eq!(log.sync().unwrap(), Some(2));
        let out = JobLog::read(&path, 1).unwrap();
        assert!(out.torn.is_none());
        assert_eq!(out.groups.len(), 2);
        assert_eq!(out.groups[0].seq, 1);
        assert_eq!(
            out.groups[0].jobs,
            vec![
                (7, JobRecord::Begin),
                (7, JobRecord::Commit),
                (9, JobRecord::Rollback)
            ]
        );
        assert_eq!(out.groups[1].jobs, vec![(7, JobRecord::Begin)]);
    }

    #[test]
    fn torn_tail_cut_at_every_byte() {
        let path = tmp("torn");
        let mut log = JobLog::open_append(&path, 1).unwrap();
        for (i, job) in sample_jobs().into_iter().enumerate() {
            log.stage(i as u64, &job);
            if i % 2 == 1 {
                log.sync().unwrap();
            }
        }
        log.sync().unwrap();
        let full = fs::read(&path).unwrap();
        let complete = JobLog::read(&path, 1).unwrap();
        assert_eq!(complete.groups.len(), 3);
        let boundaries: Vec<u64> = {
            let mut v = vec![0];
            let mut acc = 0;
            for g in &complete.groups {
                acc += g.render().len() as u64;
                v.push(acc);
            }
            v
        };
        assert_eq!(*boundaries.last().unwrap(), full.len() as u64);
        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let out = JobLog::read(&path, 1).unwrap();
            let expect = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(out.groups.len(), expect, "cut at byte {cut}");
            assert_eq!(out.valid_len, boundaries[expect]);
            if (cut as u64) != boundaries[expect] {
                assert!(out.torn.is_some(), "cut at {cut} must report a torn tail");
            }
            JobLog::repair(&path, &out).unwrap();
            assert_eq!(fs::metadata(&path).unwrap().len(), out.valid_len);
        }
    }

    #[test]
    fn bit_flips_inside_a_group_are_caught() {
        let path = tmp("flip");
        let mut log = JobLog::open_append(&path, 1).unwrap();
        for job in sample_jobs() {
            log.stage(3, &job);
        }
        log.sync().unwrap();
        let full = fs::read(&path).unwrap();
        // flip one bit in the middle of the body
        let mut corrupted = full.clone();
        let mid = HEADER_LEN + (corrupted.len() - HEADER_LEN - TRAILER_LEN) / 2;
        corrupted[mid] ^= 0x40;
        fs::write(&path, &corrupted).unwrap();
        let out = JobLog::read(&path, 1).unwrap();
        assert!(out.groups.is_empty());
        assert!(out.torn.unwrap().contains("checksum mismatch"));
    }

    #[test]
    fn sequence_gap_and_truncate() {
        let path = tmp("gap");
        let mut log = JobLog::open_append(&path, 5).unwrap();
        log.stage(1, &JobRecord::Begin);
        log.sync().unwrap();
        let out = JobLog::read(&path, 1).unwrap();
        assert!(out.groups.is_empty());
        assert!(out.torn.unwrap().contains("sequence gap"));
        log.truncate(9).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        log.stage(1, &JobRecord::Commit);
        assert_eq!(log.sync().unwrap(), Some(9));
        let out = JobLog::read(&path, 9).unwrap();
        assert_eq!(out.groups.len(), 1);
    }
}
