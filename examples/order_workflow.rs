//! Instance-oriented composite events on an order-fulfilment workflow,
//! using the programmatic API: the `occurred` and `at` event formulas
//! (§3.3) over the instance-oriented precedence operator.
//!
//! Workflow per order object: `create(order)` then
//! `modify(order.approved_qty)` then `modify(order.shipped_qty)`.
//! A deferred trigger audits, at commit time, every order that was
//! approved and later shipped **within the same transaction**, using
//! `at` to recover the shipping instants.
//!
//! ```sh
//! cargo run --example order_workflow
//! ```

use chimera::calculus::{at_occurrences, occurred_objects, EventExpr};
use chimera::events::{EventType, Window};
use chimera::exec::{Engine, Op};
use chimera::model::{AttrDef, AttrType, SchemaBuilder, Value};
use chimera::rules::condition::{CmpOp, Condition, Formula, Term, VarDecl};
use chimera::rules::{ActionStmt, CouplingMode, TriggerDef};

fn main() {
    // schema: order(approved_qty, shipped_qty, audited)
    let mut b = SchemaBuilder::new();
    b.class(
        "order",
        None,
        vec![
            AttrDef::with_default("approved_qty", AttrType::Integer, Value::Int(0)),
            AttrDef::with_default("shipped_qty", AttrType::Integer, Value::Int(0)),
            AttrDef::with_default("audited", AttrType::Boolean, Value::Bool(false)),
        ],
    )
    .unwrap();
    let schema = b.build();
    let order = schema.class_by_name("order").unwrap();
    let approved = schema.attr_by_name(order, "approved_qty").unwrap();
    let shipped = schema.attr_by_name(order, "shipped_qty").unwrap();

    // instance-oriented: approval then shipping ON THE SAME ORDER
    let approved_then_shipped = EventExpr::prim(EventType::modify(order, approved))
        .iprec(EventExpr::prim(EventType::modify(order, shipped)));

    let mut audit = TriggerDef::new("auditShipment", approved_then_shipped.clone());
    audit.coupling = CouplingMode::Deferred; // §2: suspended until commit
    audit.condition = Condition {
        decls: vec![VarDecl {
            name: "O".into(),
            class: "order".into(),
        }],
        formulas: vec![
            Formula::Occurred {
                expr: approved_then_shipped.clone(),
                var: "O".into(),
            },
            Formula::Compare {
                lhs: Term::attr("O", "shipped_qty"),
                op: CmpOp::Le,
                rhs: Term::attr("O", "approved_qty"),
            },
        ],
    };
    audit.actions = vec![ActionStmt::Modify {
        var: "O".into(),
        attr: "audited".into(),
        value: Term::Const(Value::Bool(true)),
    }];

    let mut engine = Engine::new(schema);
    engine.define_trigger(audit).unwrap();
    engine.begin().unwrap();

    // three orders; only o1 and o2 complete the approve→ship sequence,
    // and o2 over-ships (audit condition rejects it).
    let mk = |engine: &mut Engine| {
        engine
            .exec_block(&[Op::Create {
                class: order,
                inits: vec![],
            }])
            .unwrap()[0]
            .oid
    };
    let o1 = mk(&mut engine);
    let o2 = mk(&mut engine);
    let o3 = mk(&mut engine);

    let set = |engine: &mut Engine, oid, attr, v: i64| {
        engine
            .exec_block(&[Op::Modify {
                oid,
                attr,
                value: Value::Int(v),
            }])
            .unwrap();
    };
    set(&mut engine, o1, approved, 10);
    set(&mut engine, o2, approved, 5);
    set(&mut engine, o3, shipped, 4); // shipped without approval!
    set(&mut engine, o1, shipped, 8); // within approval: will be audited
    set(&mut engine, o2, shipped, 9); // over-ships: sequence matched, condition fails
    set(&mut engine, o1, shipped, 10); // second shipment instant

    // inspect the formulas before commit
    let eb = engine.event_base();
    let w = Window::from_origin(eb.now());
    let matched = occurred_objects(&approved_then_shipped, eb, w).unwrap();
    println!("orders with approve→ship on the same object: {matched:?}");
    assert_eq!(matched, vec![o1, o2]);

    let instants = at_occurrences(&approved_then_shipped, eb, w).unwrap();
    println!("occurrence instants (the §3.3 `at` predicate):");
    for (oid, t) in &instants {
        println!("  order {oid} shipped at {t}");
    }
    // o1 shipped twice after approval → two instants; o2 once.
    assert_eq!(instants.iter().filter(|(o, _)| *o == o1).count(), 2);
    assert_eq!(instants.iter().filter(|(o, _)| *o == o2).count(), 1);

    // nothing audited yet: the trigger is deferred
    assert_eq!(
        engine.read_attr(o1, "audited").unwrap(),
        Value::Bool(false)
    );
    engine.commit().unwrap();

    println!("\nafter commit:");
    for (name, oid) in [("o1", o1), ("o2", o2), ("o3", o3)] {
        println!(
            "  {name}: audited = {}",
            engine.read_attr(oid, "audited").unwrap()
        );
    }
    assert_eq!(engine.read_attr(o1, "audited").unwrap(), Value::Bool(true));
    assert_eq!(engine.read_attr(o2, "audited").unwrap(), Value::Bool(false));
    assert_eq!(engine.read_attr(o3, "audited").unwrap(), Value::Bool(false));
    println!("ok: deferred instance-oriented audit behaved as specified.");
}
