//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so this shim provides the
//! exact subset of the `rand` 0.9-era API the workspace uses: a seedable
//! [`rngs::StdRng`], the [`SeedableRng`] constructor trait, and the
//! [`RngExt`] extension trait with `random_range` / `random_bool`.
//!
//! The generator is SplitMix64 — deterministic, fast, and statistically
//! fine for seeded workload generation and property tests. It is **not**
//! cryptographically secure, which matches how the workspace uses it
//! (every call site takes an explicit `seed_from_u64`).

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the one primitive everything else
/// derives from.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// SplitMix64 behind the `StdRng` name the real crate exports.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// A type that a uniform value can be drawn from, over some range shape.
///
/// Implemented for `Range` and `RangeInclusive` of the integer types the
/// workspace samples, plus `Range<f64>`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )+};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + unit * (self.end - self.start);
        // The affine map can round up to `end` exactly (e.g. huge start,
        // tiny span); clamp back inside the half-open contract.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

/// Extension methods over any [`RngCore`] — the `rand` 0.9 `Rng` surface
/// under the name the workspace imports.
pub trait RngExt: RngCore {
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_range_never_returns_the_exclusive_end() {
        // ulp(1e16) is 2.0, so without clamping, any unit >= 0.5 rounds
        // the affine map up to exactly `end`.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(1e16..1e16 + 2.0);
            assert!(v < 1e16 + 2.0, "sampled the exclusive end: {v}");
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
