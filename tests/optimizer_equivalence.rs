//! Property suite for §5.1: the statically-optimized Trigger Support is
//! observationally equivalent to the unoptimized one and to the formal
//! §4.4 predicate, over random rules and random multi-block histories.

use chimera::calculus::EventExpr;
use chimera::events::{EventBase, EventType, Timestamp};
use chimera::model::{ClassId, Oid};
use chimera::rules::{is_triggered, RuleState, RuleTable, TriggerDef, TriggerSupport};
use chimera::workload::{ExprGenConfig, RandomExprGen};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn et(n: u32) -> EventType {
    EventType::external(ClassId(0), n)
}

/// Random multi-block run: returns per-block event batches.
fn blocks(seed: u64, nblocks: usize) -> Vec<Vec<(u32, u64)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..nblocks)
        .map(|_| {
            let len = rng.random_range(0..4usize);
            (0..len)
                .map(|_| (rng.random_range(0..5u32), rng.random_range(1..4u64)))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After every block, the optimized support's `triggered` flag equals
    /// the unoptimized support's AND the formal predicate's value; both
    /// supports then consider triggered rules so consumption stays in
    /// lock-step.
    #[test]
    fn optimized_equals_unoptimized_equals_formal(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        nblocks in 1usize..10,
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 5,
            max_depth: 4,
            instance_prob: 0.3,
            negation_prob: 0.35,
            seed: expr_seed,
        });
        let expr: EventExpr = g.generate();

        let mut rt_opt = RuleTable::new();
        let mut rt_raw = RuleTable::new();
        rt_opt.define(TriggerDef::new("r", expr.clone()), Timestamp::ZERO).unwrap();
        rt_raw.define(TriggerDef::new("r", expr.clone()), Timestamp::ZERO).unwrap();
        let mut sup_opt = TriggerSupport::optimized();
        let mut sup_raw = TriggerSupport::unoptimized();

        // reference rule state for the from-scratch predicate
        let ref_def = TriggerDef::new("r", expr.clone());
        let mut ref_state = RuleState::new(&ref_def, Timestamp::ZERO);

        let mut eb = EventBase::new();
        for block in blocks(stream_seed, nblocks) {
            for (ty, oid) in block {
                eb.append(et(ty), Oid(oid));
            }
            eb.tick();
            let now = eb.now();
            sup_opt.check(&mut rt_opt, &eb, now);
            sup_raw.check(&mut rt_raw, &eb, now);
            let opt = rt_opt.state("r").unwrap().triggered;
            let raw = rt_raw.state("r").unwrap().triggered;
            let formal = is_triggered(&ref_def, &ref_state, &eb, now);
            prop_assert_eq!(opt, formal, "optimized vs formal on {} at {}", &expr, now);
            prop_assert_eq!(raw, formal, "unoptimized vs formal on {} at {}", &expr, now);
            if formal {
                rt_opt.mark_considered("r", now).unwrap();
                rt_raw.mark_considered("r", now).unwrap();
                ref_state.considered(&ref_def, now);
            }
        }
        // the optimization must actually skip work on irrelevant streams
        prop_assert!(sup_opt.stats.ts_probes <= sup_raw.stats.ts_probes);
    }

    /// Many rules at once: the sets of triggered rules coincide.
    #[test]
    fn rule_sets_coincide(
        expr_seed in any::<u64>(),
        stream_seed in any::<u64>(),
    ) {
        let mut g = RandomExprGen::new(ExprGenConfig {
            event_types: 5,
            max_depth: 3,
            instance_prob: 0.25,
            negation_prob: 0.3,
            seed: expr_seed,
        });
        let mut rt_opt = RuleTable::new();
        let mut rt_raw = RuleTable::new();
        for (i, e) in g.batch(8).into_iter().enumerate() {
            let name = format!("r{i}");
            rt_opt.define(TriggerDef::new(name.clone(), e.clone()), Timestamp::ZERO).unwrap();
            rt_raw.define(TriggerDef::new(name, e), Timestamp::ZERO).unwrap();
        }
        let mut sup_opt = TriggerSupport::optimized();
        let mut sup_raw = TriggerSupport::unoptimized();
        let mut eb = EventBase::new();
        for block in blocks(stream_seed, 6) {
            for (ty, oid) in block {
                eb.append(et(ty), Oid(oid));
            }
            eb.tick();
            let now = eb.now();
            sup_opt.check(&mut rt_opt, &eb, now);
            sup_raw.check(&mut rt_raw, &eb, now);
            let opt: Vec<String> = rt_opt.triggered().iter().map(|s| s.to_string()).collect();
            let raw: Vec<String> = rt_raw.triggered().iter().map(|s| s.to_string()).collect();
            prop_assert_eq!(&opt, &raw);
            for name in opt {
                rt_opt.mark_considered(&name, now).unwrap();
                rt_raw.mark_considered(&name, now).unwrap();
            }
        }
    }
}

/// Deterministic regression: the exact scenario from the paper's §4.4
/// quirk — a `-A` rule, A arriving not-first, fires because an earlier
/// instant in the window witnessed the absence.
#[test]
fn negation_rule_window_semantics() {
    let expr = EventExpr::prim(et(0)).not();
    let mut rt = RuleTable::new();
    rt.define(TriggerDef::new("r", expr.clone()), Timestamp::ZERO)
        .unwrap();
    let mut sup = TriggerSupport::optimized();
    let mut eb = EventBase::new();
    eb.append(et(1), Oid(1)); // t1: B
    eb.append(et(0), Oid(1)); // t2: A
    sup.check(&mut rt, &eb, eb.now());
    let def = TriggerDef::new("r", expr);
    let st = RuleState::new(&def, Timestamp::ZERO);
    assert_eq!(
        rt.state("r").unwrap().triggered,
        is_triggered(&def, &st, &eb, eb.now())
    );
    assert!(rt.state("r").unwrap().triggered, "witnessed at t1");
}
