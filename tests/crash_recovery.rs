//! Crash-injection integration tests for the durability layer.
//!
//! Strategy: drive a `DurableEngine` through a randomized multi-transaction
//! workload (including triggers, deletes and rollbacks), recording the
//! expected object state after every commit. Then simulate a crash at
//! **every byte length** of the resulting WAL: recovery must yield exactly
//! the state of the last fully-logged commit — never a mix, never a torn
//! object, and the torn tail must be cut so a subsequent reopen is clean.

use chimera::calculus::EventExpr;
use chimera::events::EventType;
use chimera::exec::{EngineConfig, Op};
use chimera::model::{AttrDef, AttrType, Object, Oid, Schema, SchemaBuilder, Value};
use chimera::persist::{DurableEngine, Wal};
use chimera::rules::{ActionStmt, CmpOp, Condition, Formula, Term, TriggerDef, VarDecl};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "item",
        None,
        vec![
            AttrDef::new("v", AttrType::Integer),
            AttrDef::with_default("cap", AttrType::Integer, Value::Int(50)),
        ],
    )
    .unwrap();
    b.build()
}

/// Clamp trigger: keeps `v <= cap` — rule effects must be logged too.
fn clamp(schema: &Schema) -> TriggerDef {
    let item = schema.class_by_name("item").unwrap();
    let v = schema.attr_by_name(item, "v").unwrap();
    let mut def = TriggerDef::new(
        "clamp",
        EventExpr::prim(EventType::create(item)).or(EventExpr::prim(EventType::modify(item, v))),
    );
    def.condition = Condition {
        decls: vec![VarDecl {
            name: "I".into(),
            class: "item".into(),
        }],
        formulas: vec![
            Formula::Occurred {
                expr: EventExpr::prim(EventType::create(item))
                    .ior(EventExpr::prim(EventType::modify(item, v))),
                var: "I".into(),
            },
            Formula::Compare {
                lhs: Term::attr("I", "v"),
                op: CmpOp::Gt,
                rhs: Term::attr("I", "cap"),
            },
        ],
    };
    def.actions = vec![ActionStmt::Modify {
        var: "I".into(),
        attr: "v".into(),
        value: Term::attr("I", "cap"),
    }];
    def
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chimera-crash-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

type StateMap = BTreeMap<Oid, Object>;

fn observed_state(db: &DurableEngine) -> StateMap {
    db.engine()
        .store()
        .snapshot_objects()
        .into_iter()
        .map(|o| (o.oid, o.clone()))
        .collect()
}

/// Run `txns` random transactions; return the per-commit expected states
/// (index 0 = empty) and the database directory.
fn run_workload(name: &str, seed: u64, txns: usize) -> (PathBuf, Vec<StateMap>) {
    let dir = tmpdir(name);
    let schema = schema();
    let item = schema.class_by_name("item").unwrap();
    let v = schema.attr_by_name(item, "v").unwrap();
    let (mut db, _) = DurableEngine::open(
        schema.clone(),
        EngineConfig::default(),
        &dir,
        vec![clamp(&schema)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut states: Vec<StateMap> = vec![BTreeMap::new()];
    for t in 0..txns {
        db.begin().unwrap();
        let blocks = 1 + rng.random_range(0..3);
        for _ in 0..blocks {
            let live: Vec<Oid> = db.engine().extent(item);
            let op = match rng.random_range(0..4u32) {
                0 | 1 => Op::Create {
                    class: item,
                    inits: vec![(v, Value::Int(rng.random_range(0..100)))],
                },
                2 if !live.is_empty() => Op::Modify {
                    oid: live[rng.random_range(0..live.len())],
                    attr: v,
                    value: Value::Int(rng.random_range(0..100)),
                },
                3 if !live.is_empty() => Op::Delete {
                    oid: live[rng.random_range(0..live.len())],
                },
                _ => Op::Create {
                    class: item,
                    inits: vec![],
                },
            };
            db.exec_block(&[op]).unwrap();
        }
        // a third of the transactions roll back: nothing must be logged
        if t % 3 == 2 {
            db.rollback().unwrap();
        } else {
            db.commit().unwrap();
            states.push(observed_state(&db));
        }
    }
    (dir, states)
}

#[test]
fn recovery_matches_last_logged_commit_at_every_cut() {
    let (dir, states) = run_workload("cuts", 0xC41A5, 9);
    let schema = schema();
    let wal_path = dir.join("wal.log");
    let full = fs::read(&wal_path).unwrap();
    assert!(!full.is_empty());

    for cut in 0..=full.len() {
        fs::write(&wal_path, &full[..cut]).unwrap();
        // how many batches survive this cut?
        let outcome = Wal::read(&wal_path, 1).unwrap();
        let surviving = outcome.batches.len();
        assert!(surviving < states.len());

        let (db, report) = DurableEngine::open(
            schema.clone(),
            EngineConfig::default(),
            &dir,
            vec![clamp(&schema)],
        )
        .unwrap();
        assert_eq!(report.replayed as usize, surviving, "cut at {cut}");
        assert_eq!(
            observed_state(&db),
            states[surviving],
            "cut at byte {cut}: recovered state must equal commit #{surviving}"
        );
        // the torn tail was cut: a second reopen reports a clean log
        drop(db);
        let (_, second) = DurableEngine::open(
            schema.clone(),
            EngineConfig::default(),
            &dir,
            vec![clamp(&schema)],
        )
        .unwrap();
        assert!(second.torn_tail.is_none(), "cut at {cut} left a torn tail");
        assert_eq!(second.replayed as usize, surviving);
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovery_after_compaction_and_more_commits() {
    let dir = tmpdir("compact-mix");
    let schema = schema();
    let item = schema.class_by_name("item").unwrap();
    let v = schema.attr_by_name(item, "v").unwrap();
    let expected;
    {
        let (mut db, _) = DurableEngine::open(
            schema.clone(),
            EngineConfig::default(),
            &dir,
            vec![clamp(&schema)],
        )
        .unwrap();
        for round in 0..3 {
            db.begin().unwrap();
            db.exec_block(&[Op::Create {
                class: item,
                inits: vec![(v, Value::Int(70 + round))],
            }])
            .unwrap();
            db.commit().unwrap();
            if round == 1 {
                db.compact().unwrap();
            }
        }
        expected = observed_state(&db);
    }
    let (db, report) = DurableEngine::open(
        schema.clone(),
        EngineConfig::default(),
        &dir,
        vec![clamp(&schema)],
    )
    .unwrap();
    assert_eq!(report.snapshot_seq, 2);
    assert_eq!(report.replayed, 1);
    assert_eq!(observed_state(&db), expected);
    // the clamp trigger ran before each commit: v was capped at 50
    for obj in expected.values() {
        assert_eq!(obj.attrs[0], Value::Int(50));
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Several random seeds, full workload, clean reopen equality.
#[test]
fn random_workloads_round_trip() {
    for seed in [1u64, 7, 42, 2026] {
        let (dir, states) = run_workload(&format!("seed{seed}"), seed, 12);
        let schema = schema();
        let (db, report) = DurableEngine::open(
            schema.clone(),
            EngineConfig::default(),
            &dir,
            vec![clamp(&schema)],
        )
        .unwrap();
        assert!(report.torn_tail.is_none());
        assert_eq!(&observed_state(&db), states.last().unwrap(), "seed {seed}");
        let _ = fs::remove_dir_all(&dir);
    }
}
