//! Calculus errors.

use std::fmt;

/// Errors raised by expression validation and the event formulas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CalculusError {
    /// An instance-oriented operator was applied to a sub-expression built
    /// with set-oriented operators (§3.2 forbids this: instance operators
    /// have higher priority and "cannot be applied to event sub-expressions
    /// obtained by means of set-oriented operators").
    SetInsideInstance,
    /// `at` was asked to enumerate occurrences of an expression containing
    /// negation. Negation is active *by absence* and has no discrete
    /// occurrence instants, so enumeration is undefined (see DESIGN.md §7).
    NegationInAt,
    /// `occurred`/`at` require an instance-oriented expression (§3.3: "the
    /// occurred predicate now supports event expressions limited to
    /// instance-oriented operators").
    SetOrientedFormula,
}

impl fmt::Display for CalculusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalculusError::SetInsideInstance => write!(
                f,
                "instance-oriented operators cannot contain set-oriented sub-expressions"
            ),
            CalculusError::NegationInAt => write!(
                f,
                "`at` cannot enumerate occurrences of an expression containing negation"
            ),
            CalculusError::SetOrientedFormula => write!(
                f,
                "event formulas accept instance-oriented expressions only"
            ),
        }
    }
}

impl std::error::Error for CalculusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(CalculusError::SetInsideInstance.to_string().contains("instance"));
        assert!(CalculusError::NegationInAt.to_string().contains("negation"));
        assert!(CalculusError::SetOrientedFormula.to_string().contains("formulas"));
    }
}
