//! Schema: class definitions with single inheritance.
//!
//! Chimera classes form a single-inheritance hierarchy. Attribute slots are
//! laid out so that a subclass extends its superclass's slot vector: an
//! [`AttrId`] valid for a class is valid (same slot, same meaning) for all
//! of its subclasses, which is what makes `generalize` / `specialize`
//! object migrations cheap (truncate / extend the attribute vector).

use crate::error::ModelError;
use crate::ids::{AttrId, ClassId};
use crate::value::{AttrType, Value};
use crate::Result;
use std::collections::HashMap;

/// Declared attribute of a class.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrDef {
    /// Attribute name (unique within the class and its superclasses).
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
    /// Default value used at creation/specialization when none is given.
    pub default: Value,
}

impl AttrDef {
    /// Attribute with a `Null` default.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Self {
        AttrDef {
            name: name.into(),
            ty,
            default: Value::Null,
        }
    }

    /// Attribute with an explicit default value.
    pub fn with_default(name: impl Into<String>, ty: AttrType, default: Value) -> Self {
        AttrDef {
            name: name.into(),
            ty,
            default,
        }
    }
}

/// A class definition after schema resolution.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Direct superclass, if any.
    pub superclass: Option<ClassId>,
    /// *All* attribute slots, superclass slots first (inherited layout).
    pub attrs: Vec<AttrDef>,
    /// Number of slots inherited from the superclass chain.
    pub inherited: usize,
}

impl ClassDef {
    /// Attributes declared by this class itself (excluding inherited).
    pub fn own_attrs(&self) -> &[AttrDef] {
        &self.attrs[self.inherited..]
    }
}

/// A resolved, immutable schema.
///
/// Built through [`SchemaBuilder`]; lookups by name or id, subclass tests
/// and attribute resolution are all O(1) or O(depth).
#[derive(Debug, Clone, Default)]
pub struct Schema {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
    /// `children[c]` = direct subclasses of `c`.
    children: Vec<Vec<ClassId>>,
}

impl Schema {
    /// Empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Iterate over `(ClassId, &ClassDef)` in definition order.
    pub fn classes(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Look a class up by name.
    pub fn class_by_name(&self, name: &str) -> Result<ClassId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| ModelError::UnknownClass(name.to_owned()))
    }

    /// Class definition for an id.
    pub fn class(&self, id: ClassId) -> Result<&ClassDef> {
        self.classes
            .get(id.index())
            .ok_or(ModelError::UnknownClassId(id))
    }

    /// Class name for an id (panics on invalid id only in debug contexts).
    pub fn class_name(&self, id: ClassId) -> &str {
        self.classes
            .get(id.index())
            .map(|c| c.name.as_str())
            .unwrap_or("<invalid-class>")
    }

    /// Resolve an attribute name on a class (searching inherited slots too).
    pub fn attr_by_name(&self, class: ClassId, name: &str) -> Result<AttrId> {
        let def = self.class(class)?;
        def.attrs
            .iter()
            .position(|a| a.name == name)
            .map(|i| AttrId(i as u32))
            .ok_or_else(|| ModelError::UnknownAttribute {
                class: def.name.clone(),
                attr: name.to_owned(),
            })
    }

    /// Attribute definition for a slot of a class.
    pub fn attr(&self, class: ClassId, attr: AttrId) -> Result<&AttrDef> {
        let def = self.class(class)?;
        def.attrs
            .get(attr.index())
            .ok_or(ModelError::UnknownAttributeId { class, attr })
    }

    /// Attribute name for a slot (for diagnostics / printing).
    pub fn attr_name(&self, class: ClassId, attr: AttrId) -> &str {
        self.classes
            .get(class.index())
            .and_then(|c| c.attrs.get(attr.index()))
            .map(|a| a.name.as_str())
            .unwrap_or("<invalid-attr>")
    }

    /// Is `sub` equal to `sup` or a (transitive) subclass of it?
    pub fn is_subclass_or_self(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes.get(c.index()).and_then(|d| d.superclass);
        }
        false
    }

    /// Strict subclass test.
    pub fn is_strict_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        sub != sup && self.is_subclass_or_self(sub, sup)
    }

    /// All classes equal to or below `root` (root first, preorder).
    pub fn descendants(&self, root: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(c) = stack.pop() {
            out.push(c);
            if let Some(kids) = self.children.get(c.index()) {
                stack.extend(kids.iter().copied());
            }
        }
        out
    }

    /// Superclass chain from `class` (exclusive) up to the root.
    pub fn ancestors(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut cur = self.classes.get(class.index()).and_then(|d| d.superclass);
        while let Some(c) = cur {
            out.push(c);
            cur = self.classes.get(c.index()).and_then(|d| d.superclass);
        }
        out
    }
}

/// Incremental schema construction with validation.
///
/// ```
/// use chimera_model::{SchemaBuilder, AttrDef, AttrType, Value};
///
/// let mut b = SchemaBuilder::new();
/// b.class("stock", None, vec![
///     AttrDef::new("quantity", AttrType::Integer),
///     AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
/// ]).unwrap();
/// b.class("perishable_stock", Some("stock"), vec![
///     AttrDef::new("expiry", AttrType::Time),
/// ]).unwrap();
/// let schema = b.build();
/// let stock = schema.class_by_name("stock").unwrap();
/// let sub = schema.class_by_name("perishable_stock").unwrap();
/// assert!(schema.is_strict_subclass(sub, stock));
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    schema: Schema,
}

impl SchemaBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        SchemaBuilder::default()
    }

    /// Define a class. The superclass (if any) must already be defined,
    /// which structurally rules out inheritance cycles.
    pub fn class(
        &mut self,
        name: impl Into<String>,
        superclass: Option<&str>,
        own_attrs: Vec<AttrDef>,
    ) -> Result<ClassId> {
        let name = name.into();
        if self.schema.by_name.contains_key(&name) {
            return Err(ModelError::DuplicateClass(name));
        }
        let (super_id, mut attrs) = match superclass {
            Some(sup_name) => {
                let sup_id = self.schema.by_name.get(sup_name).copied().ok_or_else(|| {
                    ModelError::UnknownSuperclass {
                        class: name.clone(),
                        superclass: sup_name.to_owned(),
                    }
                })?;
                (Some(sup_id), self.schema.classes[sup_id.index()].attrs.clone())
            }
            None => (None, Vec::new()),
        };
        let inherited = attrs.len();
        for a in own_attrs {
            if attrs.iter().any(|ex| ex.name == a.name) {
                return Err(ModelError::DuplicateAttribute {
                    class: name,
                    attr: a.name,
                });
            }
            if !a.default.conforms_to(a.ty) {
                return Err(ModelError::TypeMismatch {
                    class: name,
                    attr: a.name,
                    expected: a.ty,
                });
            }
            attrs.push(a);
        }
        let id = ClassId(self.schema.classes.len() as u32);
        self.schema.classes.push(ClassDef {
            name: name.clone(),
            superclass: super_id,
            attrs,
            inherited,
        });
        self.schema.children.push(Vec::new());
        if let Some(sup) = super_id {
            self.schema.children[sup.index()].push(id);
        }
        self.schema.by_name.insert(name, id);
        Ok(id)
    }

    /// Finish and return the immutable schema.
    pub fn build(self) -> Schema {
        self.schema
    }

    /// The schema built so far (used by parsers that resolve names while
    /// definitions are still being added).
    pub fn current(&self) -> &Schema {
        &self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        let mut b = SchemaBuilder::new();
        b.class(
            "stock",
            None,
            vec![
                AttrDef::new("quantity", AttrType::Integer),
                AttrDef::new("max_quantity", AttrType::Integer),
                AttrDef::new("min_quantity", AttrType::Integer),
            ],
        )
        .unwrap();
        b.class(
            "perishable",
            Some("stock"),
            vec![AttrDef::new("expiry", AttrType::Time)],
        )
        .unwrap();
        b.class(
            "frozen",
            Some("perishable"),
            vec![AttrDef::new("temp", AttrType::Float)],
        )
        .unwrap();
        b.class("show", None, vec![AttrDef::new("quantity", AttrType::Integer)])
            .unwrap();
        b.build()
    }

    #[test]
    fn lookup_by_name_and_id() {
        let s = sample();
        let stock = s.class_by_name("stock").unwrap();
        assert_eq!(s.class(stock).unwrap().name, "stock");
        assert_eq!(s.class_name(stock), "stock");
        assert!(s.class_by_name("nope").is_err());
    }

    #[test]
    fn attr_resolution_follows_inheritance() {
        let s = sample();
        let frozen = s.class_by_name("frozen").unwrap();
        // inherited from stock: slot 0
        assert_eq!(s.attr_by_name(frozen, "quantity").unwrap(), AttrId(0));
        // inherited from perishable: slot 3
        assert_eq!(s.attr_by_name(frozen, "expiry").unwrap(), AttrId(3));
        // own: slot 4
        assert_eq!(s.attr_by_name(frozen, "temp").unwrap(), AttrId(4));
        assert!(s.attr_by_name(frozen, "bogus").is_err());
    }

    #[test]
    fn attr_ids_stable_across_hierarchy() {
        let s = sample();
        let stock = s.class_by_name("stock").unwrap();
        let frozen = s.class_by_name("frozen").unwrap();
        let q_stock = s.attr_by_name(stock, "quantity").unwrap();
        let q_frozen = s.attr_by_name(frozen, "quantity").unwrap();
        assert_eq!(q_stock, q_frozen);
    }

    #[test]
    fn subclass_tests() {
        let s = sample();
        let stock = s.class_by_name("stock").unwrap();
        let perishable = s.class_by_name("perishable").unwrap();
        let frozen = s.class_by_name("frozen").unwrap();
        let show = s.class_by_name("show").unwrap();
        assert!(s.is_subclass_or_self(frozen, stock));
        assert!(s.is_subclass_or_self(stock, stock));
        assert!(s.is_strict_subclass(perishable, stock));
        assert!(!s.is_strict_subclass(stock, stock));
        assert!(!s.is_subclass_or_self(show, stock));
        assert!(!s.is_subclass_or_self(stock, frozen));
    }

    #[test]
    fn descendants_and_ancestors() {
        let s = sample();
        let stock = s.class_by_name("stock").unwrap();
        let perishable = s.class_by_name("perishable").unwrap();
        let frozen = s.class_by_name("frozen").unwrap();
        let mut d = s.descendants(stock);
        d.sort();
        assert_eq!(d, vec![stock, perishable, frozen]);
        assert_eq!(s.ancestors(frozen), vec![perishable, stock]);
        assert_eq!(s.ancestors(stock), vec![]);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut b = SchemaBuilder::new();
        b.class("a", None, vec![]).unwrap();
        assert_eq!(
            b.class("a", None, vec![]),
            Err(ModelError::DuplicateClass("a".into()))
        );
    }

    #[test]
    fn duplicate_attr_rejected_including_inherited() {
        let mut b = SchemaBuilder::new();
        b.class("a", None, vec![AttrDef::new("x", AttrType::Integer)])
            .unwrap();
        let err = b
            .class("b", Some("a"), vec![AttrDef::new("x", AttrType::Float)])
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateAttribute { .. }));
    }

    #[test]
    fn unknown_superclass_rejected() {
        let mut b = SchemaBuilder::new();
        let err = b.class("a", Some("ghost"), vec![]).unwrap_err();
        assert!(matches!(err, ModelError::UnknownSuperclass { .. }));
    }

    #[test]
    fn bad_default_rejected() {
        let mut b = SchemaBuilder::new();
        let err = b
            .class(
                "a",
                None,
                vec![AttrDef::with_default(
                    "x",
                    AttrType::Integer,
                    Value::Str("oops".into()),
                )],
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn own_attrs_slice() {
        let s = sample();
        let perishable = s.class_by_name("perishable").unwrap();
        let def = s.class(perishable).unwrap();
        assert_eq!(def.inherited, 3);
        assert_eq!(def.own_attrs().len(), 1);
        assert_eq!(def.own_attrs()[0].name, "expiry");
    }
}
