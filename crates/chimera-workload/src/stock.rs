//! The paper's running example domain: `stock`, `show`, `stockOrder`.
//!
//! Provides the schema, the §2 `checkStockQty` trigger plus two composite-
//! event triggers built from §3's sample expressions, and a seeded
//! operation generator that drives a full engine (used by the end-to-end
//! benchmark and the integration suite).

use chimera_calculus::EventExpr;
use chimera_events::EventType;
use chimera_exec::{Engine, EngineConfig, Op};
use chimera_model::{AttrDef, AttrType, Oid, Schema, SchemaBuilder, Value};
use chimera_rules::condition::{CmpOp, Condition, Formula, Term, VarDecl};
use chimera_rules::{ActionStmt, TriggerDef};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The stock/show/stockOrder schema.
pub fn stock_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.class(
        "stock",
        None,
        vec![
            AttrDef::new("quantity", AttrType::Integer),
            AttrDef::with_default("max_quantity", AttrType::Integer, Value::Int(100)),
            AttrDef::with_default("min_quantity", AttrType::Integer, Value::Int(10)),
        ],
    )
    .expect("stock schema");
    b.class(
        "show",
        None,
        vec![AttrDef::new("quantity", AttrType::Integer)],
    )
    .expect("stock schema");
    b.class(
        "stockOrder",
        None,
        vec![AttrDef::new("del_quantity", AttrType::Integer)],
    )
    .expect("stock schema");
    b.build()
}

/// The example triggers over the schema:
///
/// 1. `checkStockQty` (§2): on `create(stock) , modify(stock.quantity)`
///    (the disjunction form §2 notes original Chimera already supported),
///    clamp `quantity` to `max_quantity`;
/// 2. `reorder` (preserving): on `modify(stock.quantity)`, bind objects
///    matching the §3.3 composite `create(stock) <= modify(stock.quantity)`
///    over the whole transaction and create a `stockOrder` for those that
///    fell below `min_quantity`;
/// 3. `restockWatch`: on
///    `modify(show.quantity) + (create(stock) += modify(stock.quantity))`
///    (the §3.2 sample), raise `min_quantity` on the affected stock.
pub fn stock_triggers(schema: &Schema) -> Vec<TriggerDef> {
    let stock = schema.class_by_name("stock").expect("stock");
    let show = schema.class_by_name("show").expect("show");
    let q = schema.attr_by_name(stock, "quantity").expect("quantity");
    let shq = schema.attr_by_name(show, "quantity").expect("show qty");

    let mut check = TriggerDef::new(
        "checkStockQty",
        EventExpr::prim(EventType::create(stock))
            .or(EventExpr::prim(EventType::modify(stock, q))),
    );
    check.target = Some(stock);
    check.priority = 10;
    check.condition = Condition {
        decls: vec![VarDecl {
            name: "S".into(),
            class: "stock".into(),
        }],
        formulas: vec![
            Formula::Occurred {
                expr: EventExpr::prim(EventType::create(stock))
                    .ior(EventExpr::prim(EventType::modify(stock, q))),
                var: "S".into(),
            },
            Formula::Compare {
                lhs: Term::attr("S", "quantity"),
                op: CmpOp::Gt,
                rhs: Term::attr("S", "max_quantity"),
            },
        ],
    };
    check.actions = vec![ActionStmt::Modify {
        var: "S".into(),
        attr: "quantity".into(),
        value: Term::attr("S", "max_quantity"),
    }];

    let seq = EventExpr::prim(EventType::create(stock))
        .iprec(EventExpr::prim(EventType::modify(stock, q)));
    let mut reorder = TriggerDef::new(
        "reorder",
        EventExpr::prim(EventType::modify(stock, q)),
    );
    reorder.target = Some(stock);
    reorder.priority = 5;
    reorder.consumption = chimera_rules::ConsumptionMode::Preserving;
    reorder.condition = Condition {
        decls: vec![VarDecl {
            name: "S".into(),
            class: "stock".into(),
        }],
        formulas: vec![
            Formula::Occurred {
                expr: seq,
                var: "S".into(),
            },
            Formula::Compare {
                lhs: Term::attr("S", "quantity"),
                op: CmpOp::Lt,
                rhs: Term::attr("S", "min_quantity"),
            },
        ],
    };
    reorder.actions = vec![ActionStmt::Create {
        class: "stockOrder".into(),
        inits: vec![(
            "del_quantity".into(),
            Term::Sub(
                Box::new(Term::attr("S", "min_quantity")),
                Box::new(Term::attr("S", "quantity")),
            ),
        )],
    }];

    let composite = EventExpr::prim(EventType::modify(show, shq)).and(
        EventExpr::prim(EventType::create(stock))
            .iand(EventExpr::prim(EventType::modify(stock, q))),
    );
    let mut watch = TriggerDef::new("restockWatch", composite);
    watch.condition = Condition {
        decls: vec![VarDecl {
            name: "S".into(),
            class: "stock".into(),
        }],
        formulas: vec![Formula::Occurred {
            expr: EventExpr::prim(EventType::create(stock))
                .iand(EventExpr::prim(EventType::modify(stock, q))),
            var: "S".into(),
        }],
    };
    watch.actions = vec![ActionStmt::Modify {
        var: "S".into(),
        attr: "min_quantity".into(),
        value: Term::Add(
            Box::new(Term::attr("S", "min_quantity")),
            Box::new(Term::int(1)),
        ),
    }];

    vec![check, reorder, watch]
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct StockWorkloadConfig {
    /// Transactions to run.
    pub transactions: usize,
    /// Operation blocks per transaction.
    pub blocks_per_txn: usize,
    /// Operations per block.
    pub ops_per_block: usize,
    /// RNG seed.
    pub seed: u64,
    /// Install the example triggers?
    pub with_triggers: bool,
    /// Engine configuration.
    pub engine: EngineConfig,
}

impl Default for StockWorkloadConfig {
    fn default() -> Self {
        StockWorkloadConfig {
            transactions: 10,
            blocks_per_txn: 5,
            ops_per_block: 4,
            seed: 42,
            with_triggers: true,
            engine: EngineConfig::default(),
        }
    }
}

/// A runnable stock-domain workload.
#[derive(Debug)]
pub struct StockWorkload {
    /// The engine under load.
    pub engine: Engine,
    cfg: StockWorkloadConfig,
    rng: StdRng,
    stocks: Vec<Oid>,
    shows: Vec<Oid>,
}

impl StockWorkload {
    /// Build the engine, schema and (optionally) triggers.
    pub fn new(cfg: StockWorkloadConfig) -> Self {
        let schema = stock_schema();
        let mut engine = Engine::with_config(schema, cfg.engine.clone());
        if cfg.with_triggers {
            for def in stock_triggers(engine.schema()) {
                engine.define_trigger(def).expect("trigger definition");
            }
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        StockWorkload {
            engine,
            cfg,
            rng,
            stocks: Vec::new(),
            shows: Vec::new(),
        }
    }

    fn random_op(&mut self) -> Op {
        let schema = self.engine.schema();
        let stock = schema.class_by_name("stock").unwrap();
        let show = schema.class_by_name("show").unwrap();
        let q = schema.attr_by_name(stock, "quantity").unwrap();
        let shq = schema.attr_by_name(show, "quantity").unwrap();
        match self.rng.random_range(0..10u32) {
            0..=2 => Op::Create {
                class: stock,
                inits: vec![(q, Value::Int(self.rng.random_range(0..200)))],
            },
            3 => Op::Create {
                class: show,
                inits: vec![(shq, Value::Int(self.rng.random_range(0..50)))],
            },
            4..=6 if !self.stocks.is_empty() => {
                let i = self.rng.random_range(0..self.stocks.len());
                Op::Modify {
                    oid: self.stocks[i],
                    attr: q,
                    value: Value::Int(self.rng.random_range(0..200)),
                }
            }
            7..=8 if !self.shows.is_empty() => {
                let i = self.rng.random_range(0..self.shows.len());
                Op::Modify {
                    oid: self.shows[i],
                    attr: shq,
                    value: Value::Int(self.rng.random_range(0..50)),
                }
            }
            9 if self.stocks.len() > 2 => {
                let i = self.rng.random_range(0..self.stocks.len());
                Op::Delete {
                    oid: self.stocks.swap_remove(i),
                }
            }
            _ => Op::Create {
                class: stock,
                inits: vec![(q, Value::Int(self.rng.random_range(0..200)))],
            },
        }
    }

    /// Run the whole workload; panics on engine errors (the generated
    /// operation mix is always valid).
    pub fn run(&mut self) {
        let schema = self.engine.schema();
        let stock = schema.class_by_name("stock").unwrap();
        let show = schema.class_by_name("show").unwrap();
        for _ in 0..self.cfg.transactions {
            self.engine.begin().expect("begin");
            for _ in 0..self.cfg.blocks_per_txn {
                let ops: Vec<Op> = (0..self.cfg.ops_per_block)
                    .map(|_| self.random_op())
                    .collect();
                let occs = self.engine.exec_block(&ops).expect("block");
                for o in occs {
                    if o.ty == EventType::create(stock) {
                        self.stocks.push(o.oid);
                    } else if o.ty == EventType::create(show) {
                        self.shows.push(o.oid);
                    } else if o.ty == EventType::delete(stock) {
                        self.stocks.retain(|&s| s != o.oid);
                    }
                }
            }
            self.engine.commit().expect("commit");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_shape() {
        let s = stock_schema();
        assert_eq!(s.class_count(), 3);
        let stock = s.class_by_name("stock").unwrap();
        assert!(s.attr_by_name(stock, "min_quantity").is_ok());
    }

    #[test]
    fn triggers_install_cleanly() {
        let schema = stock_schema();
        let mut engine = Engine::new(stock_schema());
        for def in stock_triggers(&schema) {
            engine.define_trigger(def).unwrap();
        }
        assert_eq!(engine.rules().len(), 3);
    }

    #[test]
    fn check_stock_qty_fires_in_workload() {
        let mut w = StockWorkload::new(StockWorkloadConfig {
            transactions: 3,
            blocks_per_txn: 4,
            ops_per_block: 4,
            seed: 7,
            with_triggers: true,
            engine: EngineConfig::default(),
        });
        w.run();
        let stats = w.engine.stats();
        assert!(stats.considerations > 0, "triggers should have fired");
        // invariant maintained by checkStockQty: no stock above max
        let schema = w.engine.schema();
        let stock = schema.class_by_name("stock").unwrap();
        for oid in w.engine.extent(stock) {
            let q = w.engine.read_attr(oid, "quantity").unwrap();
            let maxq = w.engine.read_attr(oid, "max_quantity").unwrap();
            if let (Value::Int(q), Value::Int(m)) = (q, maxq) {
                assert!(q <= m, "checkStockQty invariant violated: {q} > {m}");
            }
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let run = |seed| {
            let mut w = StockWorkload::new(StockWorkloadConfig {
                transactions: 2,
                seed,
                ..Default::default()
            });
            w.run();
            (w.engine.stats(), w.engine.event_base().len())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).1, 0);
    }

    #[test]
    fn workload_without_triggers_runs_no_rules() {
        let mut w = StockWorkload::new(StockWorkloadConfig {
            transactions: 2,
            with_triggers: false,
            ..Default::default()
        });
        w.run();
        assert_eq!(w.engine.stats().considerations, 0);
    }
}
