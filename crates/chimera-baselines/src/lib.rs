//! # chimera-baselines
//!
//! Comparator implementations from the paper's related-work section (§1.1),
//! used by the benchmark harness to situate the Chimera calculus:
//!
//! * [`naive`] — a from-scratch evaluator with **no indexes and no §5.1
//!   static optimization**: every check linearly rescans the window. This
//!   is the ablation baseline for PERF-2/PERF-4.
//! * [`graph`] — an **Ode-style detector** ("composite events are checked
//!   by means of a finite state automata"): each operator node keeps a
//!   constant-size acceptance state updated per event, supporting the
//!   regular, negation-free, set-oriented fragment. Detection is
//!   O(nodes) per event but cannot express negation, instance operators
//!   or Chimera's consumption semantics.
//! * [`snoop`] — a **Snoop-style recent-context detector**: operator nodes
//!   keep their most recent constituent occurrences and emit composite
//!   occurrence instants, comparable to the calculus' fresh-activation
//!   instants.
//!
//! Agreement with the calculus on the shared fragments is tested here and
//! in the cross-crate suite; the benches then compare their costs.

pub mod graph;
pub mod naive;
pub mod snoop;

pub use graph::GraphDetector;
pub use naive::{naive_ts, NaiveTriggerChecker};
pub use snoop::SnoopRecentDetector;
