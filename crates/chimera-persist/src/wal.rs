//! The write-ahead (redo) log.
//!
//! One batch per committed transaction:
//!
//! ```text
//! B <seq>
//! P <oid> <class> <v0>,<v1>,…     # full post-state of a touched object
//! D <oid>                         # touched object no longer live
//! N <next-oid-counter>
//! C <seq> <fnv1a-of-batch-body>
//! ```
//!
//! Records are **physical redo**: applying a batch is idempotent, and
//! applying a prefix of batches reproduces exactly the store after that
//! many commits. The `C` terminator carries the sequence number again and
//! a checksum of everything from `B` to `N` inclusive; recovery accepts a
//! batch only when the terminator is present, matches the opener, and the
//! checksum verifies — anything else is treated as a torn tail: the batch
//! and everything after it are discarded ([`ReadOutcome::torn`]).

use crate::codec::{decode_object, encode_object};
use crate::{fnv1a, PersistError, Result};
use chimera_model::{Object, Oid};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// One redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedoRecord {
    /// Object is live with this exact post-state.
    Put(Object),
    /// Object is not live (idempotent delete).
    Delete(Oid),
}

/// One committed transaction's worth of redo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RedoBatch {
    /// Commit sequence number (1-based, dense).
    pub seq: u64,
    /// Redo records, in OID order.
    pub records: Vec<RedoRecord>,
    /// OID allocation counter after the transaction.
    pub next_oid: u64,
}

impl RedoBatch {
    /// Render the batch as its on-disk lines.
    fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(&format!("B {}\n", self.seq));
        for r in &self.records {
            match r {
                RedoRecord::Put(obj) => {
                    body.push_str(&format!("P {}\n", encode_object(obj)));
                }
                RedoRecord::Delete(oid) => {
                    body.push_str(&format!("D {}\n", oid.0));
                }
            }
        }
        body.push_str(&format!("N {}\n", self.next_oid));
        let crc = fnv1a(body.as_bytes());
        format!("{body}C {} {crc:016x}\n", self.seq)
    }

    /// Apply the batch to a recovered object map + counter.
    pub fn apply(&self, objects: &mut BTreeMap<Oid, Object>, next_oid: &mut u64) {
        for r in &self.records {
            match r {
                RedoRecord::Put(obj) => {
                    objects.insert(obj.oid, obj.clone());
                }
                RedoRecord::Delete(oid) => {
                    objects.remove(oid);
                }
            }
        }
        *next_oid = self.next_oid;
    }
}

/// Result of reading a WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadOutcome {
    /// Every fully committed batch, in sequence order.
    pub batches: Vec<RedoBatch>,
    /// Bytes of the valid prefix (where a torn tail, if any, starts).
    pub valid_len: u64,
    /// Human-readable description of the torn tail, when one was cut.
    pub torn: Option<String>,
}

/// The write-ahead log file.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: BufWriter<File>,
    next_seq: u64,
}

impl Wal {
    /// Open (or create) the log at `path` for appending; `next_seq` must
    /// continue the sequence read back by [`Wal::read`].
    pub fn open_append(path: &Path, next_seq: u64) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            next_seq,
        })
    }

    /// The log path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next appended batch will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append a batch built from `records`, flush and fsync it, and
    /// return its sequence number.
    pub fn append(&mut self, records: Vec<RedoRecord>, next_oid: u64) -> Result<u64> {
        let batch = RedoBatch {
            seq: self.next_seq,
            records,
            next_oid,
        };
        self.file.write_all(batch.render().as_bytes())?;
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        self.next_seq += 1;
        Ok(batch.seq)
    }

    /// Truncate the log to empty (after a successful snapshot compaction)
    /// and restart the sequence at `next_seq`.
    pub fn truncate(&mut self, next_seq: u64) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().set_len(0)?;
        self.file.get_ref().sync_data()?;
        self.next_seq = next_seq;
        Ok(())
    }

    /// Read and verify a WAL file. Never fails on a torn tail — the valid
    /// prefix is returned and the tail described in [`ReadOutcome::torn`].
    /// A missing file reads as empty (first start).
    pub fn read(path: &Path, first_seq: u64) -> Result<ReadOutcome> {
        let mut text = String::new();
        match File::open(path) {
            Ok(mut f) => {
                // invalid UTF-8 in the tail is torn-write territory, not an
                // error: keep the valid prefix of bytes that decode.
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                match String::from_utf8(bytes) {
                    Ok(s) => text = s,
                    Err(e) => {
                        let valid = e.utf8_error().valid_up_to();
                        let bytes = e.into_bytes();
                        text = String::from_utf8_lossy(&bytes[..valid]).into_owned();
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }

        let mut batches = Vec::new();
        let mut valid_len = 0u64;
        let mut expected_seq = first_seq;
        let mut pos = 0usize; // byte offset of the current parse point
        let mut torn = None;

        'outer: loop {
            // try to parse one complete batch starting at `pos`
            let rest = &text[pos..];
            if rest.is_empty() {
                break;
            }
            let mut body = String::new();
            let mut cursor = pos;
            let mut lines = rest.lines();
            // opener
            let Some(first) = lines.next() else { break };
            if !line_complete(&text, cursor, first) {
                torn = Some("batch opener without newline".into());
                break;
            }
            let Some(seq) = first.strip_prefix("B ").and_then(|s| s.parse::<u64>().ok())
            else {
                torn = Some(format!("expected batch opener, found `{first}`"));
                break;
            };
            if seq != expected_seq {
                torn = Some(format!("sequence gap: expected {expected_seq}, found {seq}"));
                break;
            }
            body.push_str(first);
            body.push('\n');
            cursor += first.len() + 1;
            // records until N
            let mut records = Vec::new();
            let next_oid;
            loop {
                let Some(line) = lines.next() else {
                    torn = Some("batch truncated before terminator".into());
                    break 'outer;
                };
                if !line_complete(&text, cursor, line) {
                    torn = Some("record line without newline".into());
                    break 'outer;
                }
                if let Some(payload) = line.strip_prefix("P ") {
                    match decode_object(payload) {
                        Ok(obj) => records.push(RedoRecord::Put(obj)),
                        Err(e) => {
                            torn = Some(format!("bad record: {e}"));
                            break 'outer;
                        }
                    }
                } else if let Some(oid) = line.strip_prefix("D ") {
                    match oid.parse::<u64>() {
                        Ok(n) => records.push(RedoRecord::Delete(Oid(n))),
                        Err(_) => {
                            torn = Some(format!("bad delete record `{line}`"));
                            break 'outer;
                        }
                    }
                } else if let Some(n) = line.strip_prefix("N ") {
                    match n.parse::<u64>() {
                        Ok(v) => {
                            body.push_str(line);
                            body.push('\n');
                            cursor += line.len() + 1;
                            next_oid = v;
                            break;
                        }
                        Err(_) => {
                            torn = Some(format!("bad counter record `{line}`"));
                            break 'outer;
                        }
                    }
                } else {
                    torn = Some(format!("unknown record `{line}`"));
                    break 'outer;
                }
                body.push_str(line);
                body.push('\n');
                cursor += line.len() + 1;
            }
            // terminator
            let Some(term) = lines.next() else {
                torn = Some("missing terminator".into());
                break;
            };
            if !line_complete(&text, cursor, term) {
                torn = Some("terminator without newline".into());
                break;
            }
            let ok = (|| {
                let rest = term.strip_prefix("C ")?;
                let (seq_s, crc_s) = rest.split_once(' ')?;
                let term_seq: u64 = seq_s.parse().ok()?;
                let crc = u64::from_str_radix(crc_s, 16).ok()?;
                (term_seq == seq && crc == fnv1a(body.as_bytes())).then_some(())
            })();
            if ok.is_none() {
                torn = Some(format!("terminator mismatch for batch {seq}"));
                break;
            }
            cursor += term.len() + 1;
            batches.push(RedoBatch {
                seq,
                records,
                next_oid,
            });
            expected_seq += 1;
            pos = cursor;
            valid_len = pos as u64;
        }

        Ok(ReadOutcome {
            batches,
            valid_len,
            torn,
        })
    }

    /// Drop the torn tail in place, leaving only the valid prefix.
    pub fn repair(path: &Path, outcome: &ReadOutcome) -> Result<()> {
        if outcome.torn.is_some() {
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(outcome.valid_len)?;
            f.sync_data()?;
        }
        Ok(())
    }
}

/// `str::lines` also yields a final fragment with no trailing newline;
/// a WAL line is only trustworthy when its newline made it to disk.
fn line_complete(text: &str, start: usize, line: &str) -> bool {
    text.as_bytes().get(start + line.len()) == Some(&b'\n')
}

impl PersistError {
    /// Convenience for tests.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, PersistError::Corrupt(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chimera_model::{ClassId, Value};
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("chimera-persist-wal-tests");
        fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.log", std::process::id()));
        let _ = fs::remove_file(&p);
        p
    }

    fn obj(oid: u64, v: i64) -> Object {
        Object {
            oid: Oid(oid),
            class: ClassId(0),
            attrs: vec![Value::Int(v)],
        }
    }

    #[test]
    fn append_read_round_trip() {
        let path = tmp("round");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(vec![RedoRecord::Put(obj(1, 10))], 2).unwrap();
        wal.append(
            vec![RedoRecord::Put(obj(1, 20)), RedoRecord::Delete(Oid(2))],
            3,
        )
        .unwrap();
        let out = Wal::read(&path, 1).unwrap();
        assert!(out.torn.is_none());
        assert_eq!(out.batches.len(), 2);
        assert_eq!(out.batches[0].seq, 1);
        assert_eq!(out.batches[1].records.len(), 2);
        assert_eq!(out.batches[1].next_oid, 3);
        // applying reproduces the state
        let mut objects = BTreeMap::new();
        let mut next = 1;
        for b in &out.batches {
            b.apply(&mut objects, &mut next);
        }
        assert_eq!(objects.len(), 1);
        assert_eq!(objects[&Oid(1)].attrs, vec![Value::Int(20)]);
        assert_eq!(next, 3);
    }

    #[test]
    fn missing_file_reads_empty() {
        let out = Wal::read(Path::new("/nonexistent/chimera.wal"), 1).unwrap();
        assert!(out.batches.is_empty());
        assert!(out.torn.is_none());
        assert_eq!(out.valid_len, 0);
    }

    #[test]
    fn torn_tail_is_cut_at_every_truncation_point() {
        let path = tmp("torn");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(vec![RedoRecord::Put(obj(1, 10))], 2).unwrap();
        wal.append(vec![RedoRecord::Put(obj(2, 20))], 3).unwrap();
        wal.append(vec![RedoRecord::Delete(Oid(1))], 3).unwrap();
        let full = fs::read(&path).unwrap();
        let complete = Wal::read(&path, 1).unwrap();
        assert_eq!(complete.batches.len(), 3);
        // batch boundaries = prefix lengths after which everything is valid
        let boundaries: Vec<u64> = {
            let mut v = vec![0];
            let mut acc = 0;
            for b in &complete.batches {
                acc += b.render().len() as u64;
                v.push(acc);
            }
            v
        };
        assert_eq!(*boundaries.last().unwrap(), full.len() as u64);

        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let out = Wal::read(&path, 1).unwrap();
            // the valid prefix is the largest boundary ≤ cut
            let expect_batches = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(
                out.batches.len(),
                expect_batches,
                "cut at byte {cut}: got {} batches, torn = {:?}",
                out.batches.len(),
                out.torn
            );
            assert_eq!(out.valid_len, boundaries[expect_batches]);
            if (cut as u64) != boundaries[expect_batches] {
                assert!(out.torn.is_some(), "cut at {cut} must report a torn tail");
            }
        }
    }

    #[test]
    fn corrupted_byte_invalidates_batch_and_tail() {
        let path = tmp("flip");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(vec![RedoRecord::Put(obj(1, 10))], 2).unwrap();
        wal.append(vec![RedoRecord::Put(obj(2, 20))], 3).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        // flip a digit inside the FIRST batch's record line
        let flip_at = bytes.iter().position(|&b| b == b'P').unwrap() + 2;
        bytes[flip_at] = if bytes[flip_at] == b'1' { b'9' } else { b'1' };
        fs::write(&path, &bytes).unwrap();
        let out = Wal::read(&path, 1).unwrap();
        // checksum catches it; both batches discarded (no resync past a
        // corrupt batch — physical redo must be a clean prefix)
        assert_eq!(out.batches.len(), 0);
        assert!(out.torn.is_some());
    }

    #[test]
    fn repair_truncates_to_valid_prefix() {
        let path = tmp("repair");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(vec![RedoRecord::Put(obj(1, 10))], 2).unwrap();
        let valid = fs::metadata(&path).unwrap().len();
        // simulate a torn second batch
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"B 2\nP 2 0 i:2").unwrap();
        drop(f);
        let out = Wal::read(&path, 1).unwrap();
        assert_eq!(out.batches.len(), 1);
        assert!(out.torn.is_some());
        Wal::repair(&path, &out).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), valid);
        let again = Wal::read(&path, 1).unwrap();
        assert!(again.torn.is_none());
        assert_eq!(again.batches.len(), 1);
    }

    #[test]
    fn sequence_gap_is_treated_as_torn() {
        let path = tmp("gap");
        let mut wal = Wal::open_append(&path, 5).unwrap();
        wal.append(vec![], 1).unwrap();
        // reading with the wrong first_seq rejects everything
        let out = Wal::read(&path, 1).unwrap();
        assert!(out.batches.is_empty());
        assert!(out.torn.unwrap().contains("sequence gap"));
    }

    #[test]
    fn truncate_restarts_log() {
        let path = tmp("trunc");
        let mut wal = Wal::open_append(&path, 1).unwrap();
        wal.append(vec![RedoRecord::Put(obj(1, 1))], 2).unwrap();
        wal.truncate(1).unwrap();
        assert_eq!(fs::metadata(&path).unwrap().len(), 0);
        wal.append(vec![RedoRecord::Put(obj(1, 2))], 2).unwrap();
        let out = Wal::read(&path, 1).unwrap();
        assert_eq!(out.batches.len(), 1);
        assert_eq!(
            out.batches[0].records,
            vec![RedoRecord::Put(obj(1, 2))]
        );
    }
}
